"""Greedy MAP inference for determinantal point processes.

LTHNet (the long-tail hashing baseline of Tables II/III) builds multiple
prototypes per class by selecting a *diverse* subset of the class's items
with a DPP. We implement the fast greedy MAP algorithm of Chen et al.
(NeurIPS 2018) — incremental Cholesky updates give O(n·k·d) selection.
"""

from __future__ import annotations

import numpy as np


def rbf_kernel(points: np.ndarray, gamma: float | None = None) -> np.ndarray:
    """Gaussian similarity kernel; default bandwidth is 1/median(sq dist)."""
    points = np.asarray(points, dtype=np.float64)
    sq_norms = (points**2).sum(axis=1)
    sq_dists = sq_norms[:, None] + sq_norms[None, :] - 2.0 * points @ points.T
    np.maximum(sq_dists, 0.0, out=sq_dists)
    if gamma is None:
        off_diagonal = sq_dists[~np.eye(len(points), dtype=bool)]
        median = np.median(off_diagonal) if off_diagonal.size else 1.0
        gamma = 1.0 / max(median, 1e-12)
    return np.exp(-gamma * sq_dists)


def greedy_map_dpp(kernel: np.ndarray, max_items: int, epsilon: float = 1e-10) -> list[int]:
    """Select up to ``max_items`` indices greedily maximising log det L_S.

    At each step the item with the largest marginal gain
    ``d_i^2 = L_ii - |c_i|^2`` is added, where ``c_i`` is the item's
    projection on the Cholesky factor of the selected set. Stops early when
    no item improves the determinant.
    """
    kernel = np.asarray(kernel, dtype=np.float64)
    n = kernel.shape[0]
    if kernel.shape != (n, n):
        raise ValueError("kernel must be square")
    if max_items < 1:
        raise ValueError("max_items must be at least 1")
    max_items = min(max_items, n)

    # cis[j, i] holds the j-th Cholesky coefficient of item i.
    cis = np.zeros((max_items, n))
    d2 = kernel.diagonal().copy()
    selected: list[int] = []
    for step in range(max_items):
        best = int(d2.argmax())
        if d2[best] < epsilon:
            break
        selected.append(best)
        if step == max_items - 1:
            break
        # Incremental Cholesky update against the newly selected item.
        e = np.sqrt(d2[best])
        row = (kernel[best] - cis[:step].T @ cis[:step, best]) / e
        cis[step] = row
        d2 = d2 - row**2
        d2[best] = -np.inf  # never reselect
    return selected


def dpp_prototypes(
    points: np.ndarray,
    num_prototypes: int,
    gamma: float | None = None,
) -> np.ndarray:
    """Return up to ``num_prototypes`` diverse rows of ``points``.

    This is the prototype-generation primitive LTHNet applies per class:
    head classes contribute several well-spread prototypes while tail
    classes fall back to however many items they have.
    """
    points = np.asarray(points, dtype=np.float64)
    if len(points) == 0:
        raise ValueError("cannot select prototypes from an empty set")
    if len(points) <= num_prototypes:
        return points.copy()
    kernel = rbf_kernel(points, gamma=gamma)
    indices = greedy_map_dpp(kernel, num_prototypes)
    if not indices:
        indices = [0]
    return points[np.array(indices)]
