"""Cluster-quality scores.

Fig. 8 of the paper argues visually that the full loss yields tighter,
better-separated class clusters; we quantify the same claim with the
silhouette coefficient and the Davies-Bouldin index so the comparison is
assertable in tests and benchmarks.
"""

from __future__ import annotations

import numpy as np


def _pairwise_dists(points: np.ndarray) -> np.ndarray:
    sq_norms = (points**2).sum(axis=1)
    d2 = sq_norms[:, None] + sq_norms[None, :] - 2.0 * points @ points.T
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2)


def silhouette_score(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over all points (range [-1, 1]).

    For each point: ``a`` is the mean distance to its own cluster, ``b`` the
    smallest mean distance to another cluster, and the silhouette is
    ``(b - a) / max(a, b)``. Higher means tighter, better-separated classes.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    classes = np.unique(labels)
    if len(classes) < 2:
        raise ValueError("silhouette requires at least two classes")
    distances = _pairwise_dists(points)
    scores = np.zeros(len(points))
    masks = {c: labels == c for c in classes}
    for i in range(len(points)):
        own = masks[labels[i]].copy()
        own[i] = False
        if not own.any():
            scores[i] = 0.0  # singleton cluster contributes 0 by convention
            continue
        a = distances[i][own].mean()
        b = min(
            distances[i][masks[c]].mean() for c in classes if c != labels[i]
        )
        scores[i] = (b - a) / max(a, b, 1e-12)
    return float(scores.mean())


def davies_bouldin_index(points: np.ndarray, labels: np.ndarray) -> float:
    """Davies-Bouldin index (lower is better clustering)."""
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    classes = np.unique(labels)
    if len(classes) < 2:
        raise ValueError("Davies-Bouldin requires at least two classes")
    centroids = np.stack([points[labels == c].mean(axis=0) for c in classes])
    scatters = np.array(
        [
            np.linalg.norm(points[labels == c] - centroids[k], axis=1).mean()
            for k, c in enumerate(classes)
        ]
    )
    separations = _pairwise_dists(centroids)
    worst_ratios = []
    for i in range(len(classes)):
        ratios = [
            (scatters[i] + scatters[j]) / max(separations[i, j], 1e-12)
            for j in range(len(classes))
            if j != i
        ]
        worst_ratios.append(max(ratios))
    return float(np.mean(worst_ratios))
