"""Lloyd's k-means with k-means++ seeding.

Used by the Product Quantization baselines (PQ/OPQ codebook learning), by
codebook initialisation for the deep quantizers, and by the residual
quantization baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import make_rng


@dataclass
class KMeansResult:
    """Outcome of a k-means run."""

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float
    iterations: int


def kmeans_pp_init(
    points: np.ndarray, num_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D² sampling."""
    n = len(points)
    centroids = np.empty((num_clusters, points.shape[1]))
    first = rng.integers(n)
    centroids[0] = points[first]
    sq_dists = ((points - centroids[0]) ** 2).sum(axis=1)
    for k in range(1, num_clusters):
        total = sq_dists.sum()
        if total <= 0:
            # All remaining points coincide with chosen centroids.
            centroids[k:] = points[rng.integers(n, size=num_clusters - k)]
            break
        probabilities = sq_dists / total
        choice = rng.choice(n, p=probabilities)
        centroids[k] = points[choice]
        new_dists = ((points - centroids[k]) ** 2).sum(axis=1)
        np.minimum(sq_dists, new_dists, out=sq_dists)
    return centroids


def assign_to_centroids(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Index of the nearest centroid for every point (squared Euclidean)."""
    # |x - c|^2 = |x|^2 - 2 x·c + |c|^2 ; |x|^2 is constant per row.
    cross = points @ centroids.T
    c_sq = (centroids**2).sum(axis=1)
    return (c_sq - 2.0 * cross).argmin(axis=1)


def kmeans(
    points: np.ndarray,
    num_clusters: int,
    rng: np.random.Generator | int = 0,
    max_iterations: int = 50,
    tolerance: float = 1e-7,
) -> KMeansResult:
    """Run Lloyd's algorithm until convergence or ``max_iterations``.

    Empty clusters are re-seeded from the points farthest from their current
    centroid, which keeps all ``num_clusters`` codewords in use — important
    for quantizers, where a dead codeword wastes code space.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array")
    if num_clusters < 1:
        raise ValueError("num_clusters must be at least 1")
    if len(points) < num_clusters:
        raise ValueError(
            f"cannot form {num_clusters} clusters from {len(points)} points"
        )
    rng = make_rng(rng)
    centroids = kmeans_pp_init(points, num_clusters, rng)
    assignments = assign_to_centroids(points, centroids)
    previous_inertia = np.inf
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        # Update step: mean of each cluster.
        for k in range(num_clusters):
            members = points[assignments == k]
            if len(members):
                centroids[k] = members.mean(axis=0)
            else:
                # Re-seed dead centroid at the worst-served point.
                residuals = ((points - centroids[assignments]) ** 2).sum(axis=1)
                centroids[k] = points[residuals.argmax()]
        assignments = assign_to_centroids(points, centroids)
        inertia = float(((points - centroids[assignments]) ** 2).sum())
        converged = (
            np.isfinite(previous_inertia)
            and previous_inertia - inertia <= tolerance * max(previous_inertia, 1.0)
        )
        previous_inertia = inertia
        if converged:
            break
    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        inertia=previous_inertia,
        iterations=iteration,
    )
