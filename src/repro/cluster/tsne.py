"""Exact t-SNE (van der Maaten & Hinton, 2008) on NumPy.

Supports the Fig. 8 reproduction: 2-D visualisation of the quantized
representations learned under different loss combinations. Sized for a few
hundred points (exact pairwise affinities, no Barnes-Hut tree), which is
exactly the regime of the paper's 5-class visualisation.
"""

from __future__ import annotations

import numpy as np

from repro.rng import make_rng


def _pairwise_sq_dists(points: np.ndarray) -> np.ndarray:
    sq_norms = (points**2).sum(axis=1)
    d2 = sq_norms[:, None] + sq_norms[None, :] - 2.0 * points @ points.T
    np.maximum(d2, 0.0, out=d2)
    np.fill_diagonal(d2, 0.0)
    return d2


def _binary_search_beta(
    sq_dists_row: np.ndarray, target_entropy: float, max_steps: int = 50
) -> np.ndarray:
    """Find the Gaussian precision giving the target perplexity for one row."""
    beta_low, beta_high = 0.0, np.inf
    beta = 1.0
    probabilities = np.zeros_like(sq_dists_row)
    for _ in range(max_steps):
        exponents = -sq_dists_row * beta
        exponents -= exponents.max()
        probabilities = np.exp(exponents)
        total = probabilities.sum()
        probabilities /= total
        entropy = -(probabilities * np.log(np.maximum(probabilities, 1e-300))).sum()
        difference = entropy - target_entropy
        if abs(difference) < 1e-5:
            break
        if difference > 0:
            beta_low = beta
            beta = beta * 2.0 if beta_high == np.inf else (beta + beta_high) / 2.0
        else:
            beta_high = beta
            beta = beta / 2.0 if beta_low == 0.0 else (beta + beta_low) / 2.0
    return probabilities


def joint_probabilities(points: np.ndarray, perplexity: float) -> np.ndarray:
    """Symmetrised high-dimensional affinities ``P`` with given perplexity."""
    n = len(points)
    if perplexity >= n:
        raise ValueError("perplexity must be smaller than the number of points")
    sq_dists = _pairwise_sq_dists(points)
    target_entropy = np.log(perplexity)
    conditional = np.zeros((n, n))
    mask = ~np.eye(n, dtype=bool)
    for i in range(n):
        row = _binary_search_beta(sq_dists[i][mask[i]], target_entropy)
        conditional[i][mask[i]] = row
    joint = (conditional + conditional.T) / (2.0 * n)
    return np.maximum(joint, 1e-12)


def tsne(
    points: np.ndarray,
    num_components: int = 2,
    perplexity: float = 30.0,
    iterations: int = 400,
    learning_rate: float = 100.0,
    rng: np.random.Generator | int = 0,
    early_exaggeration: float = 4.0,
    exaggeration_steps: int = 100,
) -> np.ndarray:
    """Embed ``points`` into ``num_components`` dimensions with exact t-SNE."""
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    if n < 5:
        raise ValueError("t-SNE needs at least 5 points")
    rng = make_rng(rng)
    p = joint_probabilities(points, min(perplexity, (n - 1) / 3.0))
    embedding = rng.normal(0.0, 1e-4, size=(n, num_components))
    velocity = np.zeros_like(embedding)
    gains = np.ones_like(embedding)

    for step in range(iterations):
        exaggeration = early_exaggeration if step < exaggeration_steps else 1.0
        momentum = 0.5 if step < exaggeration_steps else 0.8

        sq_dists = _pairwise_sq_dists(embedding)
        student = 1.0 / (1.0 + sq_dists)
        np.fill_diagonal(student, 0.0)
        q = np.maximum(student / student.sum(), 1e-12)

        # Gradient of KL(P || Q) under the Student-t kernel.
        pq_diff = (exaggeration * p - q) * student
        gradient = 4.0 * (
            np.diag(pq_diff.sum(axis=1)) - pq_diff
        ) @ embedding

        same_sign = np.sign(gradient) == np.sign(velocity)
        gains = np.where(same_sign, gains * 0.8, gains + 0.2)
        np.maximum(gains, 0.01, out=gains)
        velocity = momentum * velocity - learning_rate * gains * gradient
        embedding = embedding + velocity
        embedding -= embedding.mean(axis=0)
    return embedding


def kl_divergence(points: np.ndarray, embedding: np.ndarray, perplexity: float = 30.0) -> float:
    """KL(P || Q) of a finished embedding; lower is a better fit."""
    p = joint_probabilities(points, min(perplexity, (len(points) - 1) / 3.0))
    sq_dists = _pairwise_sq_dists(embedding)
    student = 1.0 / (1.0 + sq_dists)
    np.fill_diagonal(student, 0.0)
    q = np.maximum(student / student.sum(), 1e-12)
    return float((p * np.log(p / q)).sum())
