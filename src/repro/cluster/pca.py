"""Principal component analysis via singular value decomposition.

Substrate for the PCAH and ITQ baselines and for 2-D projections in the
visualisation experiment (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PCA:
    """Fitted principal-component model.

    Attributes
    ----------
    components:
        ``(d, k)`` projection matrix whose columns are the top-k principal
        directions sorted by explained variance.
    mean:
        ``(d,)`` training mean removed before projection.
    explained_variance:
        Variance captured by each kept component.
    """

    components: np.ndarray
    mean: np.ndarray
    explained_variance: np.ndarray

    @property
    def num_components(self) -> int:
        return self.components.shape[1]

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Project rows onto the principal subspace."""
        return (np.asarray(features, dtype=np.float64) - self.mean) @ self.components

    def inverse_transform(self, projected: np.ndarray) -> np.ndarray:
        """Map projections back to the original space (lossy)."""
        return projected @ self.components.T + self.mean

    def explained_variance_ratio(self) -> np.ndarray:
        """Fraction of total variance captured per component."""
        total = self.explained_variance.sum()
        if total <= 0:
            return np.zeros_like(self.explained_variance)
        return self.explained_variance / total


def fit_pca(features: np.ndarray, num_components: int) -> PCA:
    """Fit PCA on ``features`` keeping ``num_components`` directions."""
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError("features must be a 2-D array")
    n, d = features.shape
    if not 1 <= num_components <= min(n, d):
        raise ValueError(
            f"num_components must be in [1, {min(n, d)}], got {num_components}"
        )
    mean = features.mean(axis=0)
    centered = features - mean
    # Thin SVD: centered = U S Vt ; principal axes are rows of Vt.
    _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
    components = vt[:num_components].T
    explained = (singular_values[:num_components] ** 2) / max(n - 1, 1)
    return PCA(components=components, mean=mean, explained_variance=explained)
