"""``repro.cluster`` — classical ML substrate.

k-means (PQ codebooks), PCA (PCAH/ITQ), greedy DPP MAP inference (LTHNet
prototypes), exact t-SNE and cluster-quality scores (Fig. 8).
"""

from repro.cluster.dpp import dpp_prototypes, greedy_map_dpp, rbf_kernel
from repro.cluster.kmeans import KMeansResult, assign_to_centroids, kmeans, kmeans_pp_init
from repro.cluster.pca import PCA, fit_pca
from repro.cluster.scores import davies_bouldin_index, silhouette_score
from repro.cluster.tsne import joint_probabilities, kl_divergence, tsne

__all__ = [
    "KMeansResult",
    "PCA",
    "assign_to_centroids",
    "davies_bouldin_index",
    "dpp_prototypes",
    "fit_pca",
    "greedy_map_dpp",
    "joint_probabilities",
    "kl_divergence",
    "kmeans",
    "kmeans_pp_init",
    "rbf_kernel",
    "silhouette_score",
    "tsne",
]
