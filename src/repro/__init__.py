"""LightLT reproduction: lightweight representation quantization for long-tail data.

This package reproduces "LightLT: a Lightweight Representation Quantization
Framework for Long-tail Data" (ICDE 2024) end to end:

- :mod:`repro.nn` — NumPy autograd / neural-net substrate (PyTorch stand-in).
- :mod:`repro.data` — long-tail dataset construction per Definition 1 and
  Table I, with synthetic feature profiles standing in for pre-trained
  ResNet-34 / BERT embeddings.
- :mod:`repro.cluster` — k-means, PCA, DPP MAP inference, t-SNE.
- :mod:`repro.retrieval` — MAP metrics, exhaustive and ADC lookup-table kNN
  search, and the space/inference cost model of §IV.
- :mod:`repro.core` — the paper's contribution: the DSQ quantizer, the
  combined long-tail loss, the trainer (Algorithm 1), and the
  weight-averaging ensemble with DSQ fine-tuning.
- :mod:`repro.baselines` — shallow and deep hashing/quantization baselines
  from Tables II and III.
- :mod:`repro.experiments` — one runner per table/figure in the evaluation.
"""

from repro.version import __version__

__all__ = ["__version__"]
