"""Config grids the ``repro tune`` sweep measures.

A grid is a tuple of :class:`GridPoint` — one serving configuration each,
spanning the knobs the calibrated cost model prices: codebook geometry
(``M``, ``K`` — and through ``K`` the compact code dtype), the exhaustive
engine's ``workers``/``num_shards``, the IVF coarse layer
(``num_cells``/``nprobe``) and its LUT dtype, and the query-encoder mode
(full backbone vs the distilled light projection of
:mod:`repro.encoding`, measured with encode time included). Two stock
grids ship: :func:`tiny_grid` (the CI smoke sweep — finishes in seconds
on the ``tiny`` profile) and :func:`default_grid` (wider, includes a
K=512 point whose codes store as uint16, where the ideal and as-stored
byte accountings diverge).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.retrieval.costs import SearchConfig

__all__ = ["GridPoint", "default_grid", "tiny_grid"]


@dataclass(frozen=True)
class GridPoint:
    """One serving configuration of the tune sweep.

    ``num_cells == 0`` (with ``nprobe == 0``) is the exhaustive sharded
    engine; a positive pair routes queries through the IVF coarse layer,
    where ``lut_dtype`` picks the scan lookup-table precision.
    ``query_encoder != "none"`` measures the point with query-side
    encoding included: the sweep embeds the database with a trained
    teacher, encodes each query through the named path (full backbone or
    distilled light projection), and times encode + scan together.
    """

    num_codebooks: int
    num_codewords: int
    workers: int = 1
    num_shards: int = 1
    num_cells: int = 0
    nprobe: int = 0
    lut_dtype: str = "float32"
    query_encoder: str = "none"

    @property
    def uses_ivf(self) -> bool:
        return self.num_cells > 0 and self.nprobe > 0

    def search_config(self, n_db: int, dim: int, k: int) -> SearchConfig:
        """The cost-model view of this point over a concrete corpus."""
        return SearchConfig(
            n_db=n_db,
            dim=dim,
            num_codebooks=self.num_codebooks,
            num_codewords=self.num_codewords,
            k=k,
            workers=self.workers,
            num_shards=self.num_shards,
            num_cells=self.num_cells,
            nprobe=self.nprobe,
            lut_dtype=self.lut_dtype,
            query_encoder=self.query_encoder,
        )

    def as_dict(self) -> dict:
        return asdict(self)


def _expand(pairs, *, cells: int, nprobes: tuple[int, ...],
            uint8_nprobe: int, engine_shapes,
            encoders: tuple[str, ...] = ("full", "light")) -> tuple[GridPoint, ...]:
    """The stock grid shape: per (M, K), exhaustive engine shapes plus an
    IVF ``nprobe`` sweep, one quantized-LUT point, and one encode-inclusive
    point per query-encoder mode (plain single-worker engine, so the
    light-vs-full delta is pure encode cost)."""
    points: list[GridPoint] = []
    for m, k in pairs:
        for workers, shards in engine_shapes:
            points.append(GridPoint(m, k, workers=workers, num_shards=shards))
        for nprobe in nprobes:
            points.append(GridPoint(m, k, num_cells=cells, nprobe=nprobe))
        points.append(
            GridPoint(
                m, k, num_cells=cells, nprobe=uint8_nprobe, lut_dtype="uint8"
            )
        )
        for mode in encoders:
            points.append(GridPoint(m, k, query_encoder=mode))
    return tuple(points)


def tiny_grid() -> tuple[GridPoint, ...]:
    """The 22-point CI sweep (``tiny`` profile; K capped by its corpus).

    Deliberately over-determined — 16 fitted points against the model's 10
    feature columns even after the holdout split — so the CI fit-error
    gate measures the model, not an underdetermined solve.
    """
    return _expand(
        ((2, 8), (4, 16)),
        cells=8,
        nprobes=(1, 2, 3, 4, 6),
        uint8_nprobe=2,
        engine_shapes=((1, 1), (1, 2), (2, 4)),
    )


def default_grid() -> tuple[GridPoint, ...]:
    """The wider sweep for real profiles.

    Includes K=512, whose codes store as uint16 — the point where the
    paper's fractional-bit byte accounting undercounts what the engine
    allocates, so memory budgets must be checked against the as-stored
    figures (:func:`repro.retrieval.costs.serving_memory_bytes`).
    """
    return _expand(
        ((4, 64), (8, 256), (4, 512)),
        cells=16,
        nprobes=(1, 4, 8),
        uint8_nprobe=4,
        engine_shapes=((1, 1), (4, 8)),
    )
