"""The ``repro tune`` sweep: measure a config grid, calibrate the model.

One sweep reuses the bench harness's building blocks — the profile
datasets (:func:`repro.obs.bench.load_profile_dataset`), the residual
k-means codebook trainer shared with the stream phase, and its top-k
overlap recall — to measure every :class:`~repro.tuning.grid.GridPoint`:

- **latency**: mean single-query wall time through the real
  :class:`~repro.retrieval.engine.QueryEngine` (IVF-routed when the point
  has a coarse layer); points with a ``query_encoder`` are timed
  *encode-inclusive* — the query batch runs through the named encoder
  (full trained backbone, or the distilled light projection of
  :mod:`repro.encoding`) inside the timed region;
- **recall@k**: top-k overlap against the exact float oracle over the raw
  database vectors — or, for encoder points, against the exact oracle in
  the teacher's embedding space (the index is built over the
  teacher-embedded database, and both modes are scored against the
  *full*-embedding ground truth, so the light column directly shows its
  recall give-up);
- **memory**: the analytic *as-stored* byte accounting
  (:func:`repro.retrieval.costs.serving_memory_bytes`) — what the process
  actually allocates, not the paper's fractional-bit ideal;
- **train**: per (M, K), one fused-vs-reference training comparison at a
  single epoch, so the tuner can report the training-side speedup of a
  recommended geometry.

The measured ``(config, latency)`` points then calibrate
:class:`~repro.retrieval.costs.CostModel` (seeded holdout split scores
generalisation before the final refit on all points), and everything is
written as a schema-v7 BENCH-style artifact under ``phases.tune`` so
``repro bench --compare`` and :func:`repro.obs.bench.format_summary`
render it like any other phase.
"""

from __future__ import annotations

import platform
import time

import numpy as np

from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    load_profile_dataset,
    overlap_recall,
    train_residual_codebooks,
)
from repro.retrieval.costs import CostModel, serving_memory_bytes
from repro.retrieval.engine import QueryEngine
from repro.retrieval.index import QuantizedIndex
from repro.retrieval.ivf import IVFIndex
from repro.retrieval.search import squared_distances
from repro.tuning.grid import GridPoint, default_grid, tiny_grid

__all__ = ["run_tune_sweep"]

#: Repeat each timed batch scan this many times and keep the best —
#: scheduling noise only ever inflates a wall-clock sample, so the min is
#: the stable estimator (same trick as ``measure_search_times``).
LATENCY_REPEATS = 7
#: Untimed full-batch calls before measuring (page/cache warmth).
WARMUP_CALLS = 2
#: Holdout share of the grid used to score the fitted model's
#: generalisation (the figure the nightly acceptance gate bounds).
HOLDOUT_FRACTION = 0.25


def _exact_topk(queries: np.ndarray, database: np.ndarray, k: int) -> np.ndarray:
    """The recall oracle: exact float squared-distance top-k ids."""
    distances = squared_distances(queries, database)
    return np.argsort(distances, kind="stable", axis=1)[:, :k]


def _measure_point(engine: QueryEngine, queries: np.ndarray, k: int,
                   exact_ids: np.ndarray, encode=None) -> tuple[float, float]:
    """(amortised per-query seconds, recall@k) of one configured engine.

    Latency is measured over the full query *batch* and divided by its
    size: a single vectorised scan amortises the per-call dispatch
    overhead, so the figure is dominated by the op counts the cost model
    prices — a per-call timing at CI scale would be mostly interpreter
    noise. The model is fitted with the matching ``n_queries``, and
    ``docs/tuning.md`` states the convention next to the budget flags.

    ``encode`` (for query-encoder points) maps raw query features to
    embeddings *inside* the timed region, so the measured figure — and
    the ``encode_*`` cost columns fitted from it — include the encode.
    """
    def run():
        embedded = queries if encode is None else encode(queries)
        return engine.search_with_distances(embedded, k=k)

    ids = None
    for _ in range(WARMUP_CALLS):
        ids, _ = run()
    latency_s = float("inf")
    for _ in range(LATENCY_REPEATS):
        start = time.perf_counter()
        run()
        latency_s = min(
            latency_s, (time.perf_counter() - start) / len(queries)
        )
    return latency_s, overlap_recall(ids, exact_ids)


def _measure_train(dataset, num_codebooks: int, num_codewords: int,
                   seed: int) -> dict:
    """Fused-vs-reference training throughput at this (M, K), one epoch."""
    import dataclasses

    from repro.core.trainer import Trainer
    from repro.experiments.config import (
        default_loss_config,
        default_model_config,
        default_training_config,
    )

    model_config = dataclasses.replace(
        default_model_config(dataset),
        num_codebooks=num_codebooks,
        num_codewords=num_codewords,
    )
    loss_config = default_loss_config(dataset)
    training_config = default_training_config(dataset, fast=True)
    timings = {}
    for label, fused in (("reference", False), ("fused", True)):
        trainer = Trainer(
            model_config,
            loss_config,
            dataclasses.replace(training_config, fused=fused),
            seed=seed,
        )
        session = trainer.start_session(dataset, epochs=1)
        start = time.perf_counter()
        while not session.finished:
            session.run_epoch()
        wall = time.perf_counter() - start
        steps = session.steps_completed if hasattr(
            session, "steps_completed") else None
        timings[label] = {"wall_time_s": wall, "steps": steps}
    reference = timings["reference"]["wall_time_s"]
    fused = timings["fused"]["wall_time_s"]
    return {
        "num_codebooks": num_codebooks,
        "num_codewords": num_codewords,
        "reference_wall_s": reference,
        "fused_wall_s": fused,
        "speedup": reference / fused if fused > 0 else None,
    }


def _train_query_encoders(dataset, seed: int, modes) -> tuple:
    """One fast-config teacher (plus distilled student when asked).

    Encoder grid points share a single teacher per sweep: it defines the
    embedding space the encoder-point indexes live in, serves as the
    ``"full"`` query path, and is the distillation source of the
    ``"light"`` student. Returns ``(teacher, {mode: encoder})`` where each
    encoder exposes ``embed(features) -> embeddings``.
    """
    from repro.core.trainer import Trainer
    from repro.encoding import distill_query_encoder
    from repro.experiments.config import (
        default_loss_config,
        default_model_config,
        default_training_config,
    )

    trainer = Trainer(
        default_model_config(dataset),
        default_loss_config(dataset),
        default_training_config(dataset, fast=True),
        seed=seed,
    )
    teacher, _, _ = trainer.fit(dataset)
    teacher.eval()
    encoders = {"full": teacher}
    if "light" in modes:
        encoders["light"], _ = distill_query_encoder(teacher, dataset, seed=seed)
    return teacher, encoders


def run_tune_sweep(
    profile: str = "tiny",
    quick: bool = True,
    seed: int = 0,
    k: int = 10,
    grid: tuple[GridPoint, ...] | None = None,
    train_axis: bool = True,
) -> dict:
    """Measure the grid over one profile; returns the schema-v7 artifact.

    ``quick`` picks :func:`~repro.tuning.grid.tiny_grid` (the CI sweep);
    otherwise :func:`~repro.tuning.grid.default_grid`. An explicit
    ``grid`` overrides both. ``train_axis=False`` skips the per-(M, K)
    fused-vs-reference training comparison (pure search tuning).
    """
    if grid is None:
        grid = tiny_grid() if quick else default_grid()
    if not grid:
        raise ValueError("the tune grid is empty")
    sweep_start = time.perf_counter()
    dataset = load_profile_dataset(profile, seed)
    train_features = np.asarray(dataset.train.features, dtype=np.float64)
    database = np.asarray(dataset.database.features, dtype=np.float64)
    queries = np.asarray(dataset.query.features, dtype=np.float64)
    n_db, dim = database.shape
    k = min(k, n_db)
    exact_ids = _exact_topk(queries, database, k)

    # Query-encoder points live in the teacher's embedding space: one
    # teacher (and optional distilled student) per sweep, one embedded
    # database/oracle shared by every encoder point.
    encoder_modes = sorted(
        {p.query_encoder for p in grid if p.query_encoder != "none"}
    )
    encoders: dict = {}
    emb_train = emb_database = emb_exact_ids = None
    if encoder_modes:
        teacher, encoders = _train_query_encoders(dataset, seed, encoder_modes)
        emb_train = np.asarray(teacher.embed(train_features), dtype=np.float64)
        emb_database = np.asarray(teacher.embed(database), dtype=np.float64)
        emb_exact_ids = _exact_topk(
            np.asarray(teacher.embed(queries), dtype=np.float64),
            emb_database, k,
        )

    # One index per (M, K) and query space, one IVF layer per (M, K,
    # cells, lut, space): grid points sharing geometry share the
    # expensive artefacts.
    indexes: dict[tuple, QuantizedIndex] = {}
    ivfs: dict[tuple, IVFIndex] = {}
    points: list[dict] = []
    configs = []
    latencies = []
    for point in grid:
        geometry = (point.num_codebooks, point.num_codewords)
        encoded = point.query_encoder != "none"
        if encoded:
            space_train, space_db = emb_train, emb_database
            space_dim = emb_database.shape[1]
            oracle = emb_exact_ids
            encode = encoders[point.query_encoder].embed
        else:
            space_train, space_db = train_features, database
            space_dim = dim
            oracle = exact_ids
            encode = None
        index_key = geometry + (encoded,)
        if index_key not in indexes:
            codebooks = train_residual_codebooks(
                space_train,
                point.num_codebooks,
                point.num_codewords,
                np.random.default_rng(seed),
            )
            indexes[index_key] = QuantizedIndex.build(codebooks, space_db)
        index = indexes[index_key]
        config = point.search_config(n_db, space_dim, k)
        if point.uses_ivf:
            ivf_key = index_key + (point.num_cells, point.lut_dtype)
            if ivf_key not in ivfs:
                ivfs[ivf_key] = IVFIndex.build(
                    index,
                    num_cells=point.num_cells,
                    nprobe=point.nprobe,
                    lut_dtype=point.lut_dtype,
                    seed=seed,
                )
            engine = QueryEngine(
                index, ivf=ivfs[ivf_key], nprobe=point.nprobe
            )
        else:
            engine = QueryEngine(
                index, workers=point.workers, num_shards=point.num_shards
            )
        with engine:
            latency_s, recall = _measure_point(
                engine, queries, k, oracle, encode=encode
            )
        configs.append(config)
        latencies.append(latency_s)
        points.append({
            "config": {**point.as_dict(), "n_db": n_db, "dim": space_dim,
                       "code_dtype": config.code_dtype},
            "latency_ms": latency_s * 1e3,
            "recall": recall,
            "memory_mb": serving_memory_bytes(config) / 2**20,
        })

    n_queries = len(queries)
    model, report = CostModel.fit(
        configs, latencies, n_queries=n_queries,
        holdout_fraction=HOLDOUT_FRACTION, seed=seed,
    )
    for entry, config in zip(points, configs):
        entry["latency_model_ms"] = model.predict(config, n_queries) * 1e3

    train_rows = []
    if train_axis:
        for m, kk in sorted({key[:2] for key in indexes}):
            train_rows.append(_measure_train(dataset, m, kk, seed))

    tune = {
        "wall_time_s": time.perf_counter() - sweep_start,
        "k": k,
        "n_queries": n_queries,
        "grid_points": len(points),
        "points": points,
        "train": train_rows,
        "model": report.as_dict(),
    }
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "seed": seed,
        "quick": quick,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "profiles": {profile: {"phases": {"tune": tune}}},
    }
