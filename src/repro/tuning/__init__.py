"""``repro.tuning`` — the calibrated cost-model auto-tuner.

Sweep a config grid over a dataset profile (:func:`run_tune_sweep`),
calibrate the analytic cost model of :mod:`repro.retrieval.costs` to the
measurements, and recommend a concrete serving configuration for a stated
latency/recall/memory budget (:func:`recommend`). The CLI surface is
``repro tune`` (see ``docs/tuning.md``).
"""

from repro.tuning.grid import GridPoint, default_grid, tiny_grid
from repro.tuning.recommend import (
    Recommendation,
    TuneRequest,
    model_from_report,
    recommend,
)
from repro.tuning.sweep import run_tune_sweep

__all__ = [
    "GridPoint",
    "Recommendation",
    "TuneRequest",
    "default_grid",
    "model_from_report",
    "recommend",
    "run_tune_sweep",
    "tiny_grid",
]
