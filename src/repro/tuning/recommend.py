"""Budget-driven config recommendation over a tune artifact.

``repro tune --latency-ms B --recall R --memory-mb M`` answers "which
serving configuration should I deploy?" from a finished sweep: the
candidate pool is every *measured* grid point plus *interpolated* IVF
operating points the grid never ran — intermediate ``nprobe`` values
whose latency comes from the calibrated
:class:`~repro.retrieval.costs.CostModel` and whose recall is
log2-linearly interpolated between the bracketing measurements.

Selection is deterministic for a fixed artifact: among candidates meeting
every stated budget, the highest recall wins; ties break to lower
latency, then lower memory, then the lexicographically smallest config.
When nothing fits, the nearest miss (smallest worst budget overrun) is
returned with ``feasible=False`` so callers — the CLI exits non-zero, the
nightly gate fails — can tell the difference.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from repro.retrieval.costs import (
    COST_FEATURE_NAMES,
    CostModel,
    SearchConfig,
    serving_memory_bytes,
)

__all__ = ["Recommendation", "TuneRequest", "model_from_report", "recommend"]

_EPS = 1e-12


@dataclass(frozen=True)
class TuneRequest:
    """The stated budget: any subset of latency / recall / memory.

    ``latency_ms`` and ``memory_mb`` are ceilings, ``recall`` is a floor;
    ``None`` leaves that axis unconstrained. ``k`` must match the sweep's
    (recall and latency were measured at a specific ``k``).
    """

    latency_ms: float | None = None
    recall: float | None = None
    memory_mb: float | None = None
    k: int = 10

    def __post_init__(self) -> None:
        if self.latency_ms is None and self.recall is None and self.memory_mb is None:
            raise ValueError("state at least one budget (latency/recall/memory)")
        for name in ("latency_ms", "memory_mb"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive")
        if self.recall is not None and not 0.0 < self.recall <= 1.0:
            raise ValueError("recall must be in (0, 1]")
        if self.k < 1:
            raise ValueError("k must be at least 1")


@dataclass(frozen=True)
class Recommendation:
    """The chosen configuration and its (measured or modelled) figures.

    ``source`` is ``"measured"`` for a grid point the sweep actually ran
    and ``"interpolated"`` for a model-priced ``nprobe`` between two
    measured ones. ``feasible`` is False when no candidate met every
    stated budget — the returned config is then the nearest miss and
    ``note`` says which budget broke.
    """

    config: dict = field(compare=False)
    latency_ms: float
    recall: float
    memory_mb: float
    source: str
    feasible: bool
    note: str = ""

    def as_dict(self) -> dict:
        return asdict(self)

    def summary_lines(self) -> list[str]:
        config = self.config
        shape = (
            f"M={config['num_codebooks']} K={config['num_codewords']} "
            f"({config.get('code_dtype', '?')} codes)"
        )
        if config.get("nprobe", 0) > 0 and config.get("num_cells", 0) > 0:
            shape += (
                f", ivf {config['num_cells']} cells nprobe={config['nprobe']} "
                f"{config.get('lut_dtype', 'float32')} LUT"
            )
        else:
            shape += (
                f", exhaustive {config.get('workers', 1)}w/"
                f"{config.get('num_shards', 1)}s"
            )
        if config.get("query_encoder", "none") != "none":
            shape += f", {config['query_encoder']} query encoder"
        lines = [
            f"recommended: {shape} [{self.source}]",
            f"  latency {self.latency_ms:.3f} ms, recall@k {self.recall:.3f}, "
            f"memory {self.memory_mb:.2f} MB",
        ]
        if not self.feasible:
            lines.append(f"  INFEASIBLE: {self.note}")
        return lines


def model_from_report(model_dict: dict) -> CostModel:
    """Rebuild the fitted :class:`CostModel` from an artifact's ``model``.

    Columns the artifact predates (the v7 ``encode_*`` terms) default to
    0.0 — an old sweep priced no query encoders, so the rebuilt model
    prices them as free rather than refusing to load.
    """
    coefficients = model_dict["coefficients"]
    return CostModel(
        np.array([coefficients.get(name, 0.0) for name in COST_FEATURE_NAMES])
    )


def _tune_phase(results: dict, profile: str | None) -> tuple[str, dict]:
    profiles = results.get("profiles") or {}
    names = [profile] if profile is not None else list(profiles)
    for name in names:
        tune = ((profiles.get(name) or {}).get("phases") or {}).get("tune")
        if tune:
            return name, tune
    raise ValueError(
        "no tune phase in the results file — run `repro tune` first"
    )


def _family_key(config: dict) -> tuple:
    """Everything but ``nprobe``: the axis interpolation sweeps along.

    ``query_encoder`` is part of the key (``.get`` for pre-v7 artifacts):
    a light-encoder point and a full-path point at the same IVF shape are
    different serving configurations and must never be interpolated
    between.
    """
    return (
        config["num_codebooks"], config["num_codewords"],
        config["num_cells"], config["lut_dtype"],
        config["workers"], config["num_shards"],
        config.get("query_encoder", "none"),
    )


def _interpolated(points: list[dict], model: CostModel, k: int,
                  n_queries: int = 1) -> list[dict]:
    """Model-priced nprobe candidates between measured IVF grid points."""
    families: dict[tuple, list[dict]] = {}
    for entry in points:
        config = entry["config"]
        if config["nprobe"] > 0 and config["num_cells"] > 0:
            families.setdefault(_family_key(config), []).append(entry)
    extra: list[dict] = []
    for family in families.values():
        family.sort(key=lambda entry: entry["config"]["nprobe"])
        measured = {entry["config"]["nprobe"] for entry in family}
        if len(measured) < 2:
            continue
        low, high = min(measured), max(measured)
        base = dict(family[0]["config"])
        for nprobe in range(low + 1, high):
            if nprobe in measured:
                continue
            config = {**base, "nprobe": nprobe}
            search = SearchConfig(
                n_db=config["n_db"], dim=config["dim"],
                num_codebooks=config["num_codebooks"],
                num_codewords=config["num_codewords"], k=k,
                workers=config["workers"], num_shards=config["num_shards"],
                num_cells=config["num_cells"], nprobe=nprobe,
                lut_dtype=config["lut_dtype"],
                query_encoder=config.get("query_encoder", "none"),
            )
            # Recall rises roughly linearly in log2(nprobe); interpolate
            # between the bracketing measurements on that axis.
            lower = [e for e in family if e["config"]["nprobe"] < nprobe][-1]
            upper = [e for e in family if e["config"]["nprobe"] > nprobe][0]
            x0, x1 = (np.log2(lower["config"]["nprobe"]),
                      np.log2(upper["config"]["nprobe"]))
            weight = (np.log2(nprobe) - x0) / max(x1 - x0, _EPS)
            recall = (1 - weight) * lower["recall"] + weight * upper["recall"]
            extra.append({
                "config": config,
                "latency_ms": model.predict(search, n_queries) * 1e3,
                "recall": float(recall),
                "memory_mb": serving_memory_bytes(search) / 2**20,
                "source": "interpolated",
            })
    return extra


def _violation(candidate: dict, request: TuneRequest) -> float:
    """Worst budget overrun ratio (1.0 = exactly on budget)."""
    ratios = [1.0]
    if request.latency_ms is not None:
        ratios.append(candidate["latency_ms"] / request.latency_ms)
    if request.memory_mb is not None:
        ratios.append(candidate["memory_mb"] / request.memory_mb)
    if request.recall is not None:
        ratios.append(request.recall / max(candidate["recall"], _EPS))
    return max(ratios)


def _sort_key(candidate: dict) -> tuple:
    config = candidate["config"]
    return (
        -candidate["recall"],
        candidate["latency_ms"],
        candidate["memory_mb"],
        tuple(sorted((key, str(value)) for key, value in config.items())),
    )


def recommend(
    results: dict, request: TuneRequest, profile: str | None = None
) -> Recommendation:
    """Pick the best configuration in ``results`` for ``request``.

    Deterministic for a fixed artifact: candidates are the measured grid
    points plus model-interpolated nprobe points, filtered by the stated
    budgets, ranked by (recall desc, latency asc, memory asc, config).
    """
    _, tune = _tune_phase(results, profile)
    if request.k != tune.get("k", request.k):
        raise ValueError(
            f"request k={request.k} but the sweep measured k={tune['k']} — "
            "re-run the sweep with --k"
        )
    model = model_from_report(tune["model"])
    candidates = [
        {**{key: entry[key] for key in ("config", "latency_ms", "recall",
                                        "memory_mb")},
         "source": "measured"}
        for entry in tune["points"]
    ]
    candidates.extend(
        _interpolated(tune["points"], model, tune["k"],
                      tune.get("n_queries", 1))
    )
    feasible = [c for c in candidates if _violation(c, request) <= 1.0]
    if feasible:
        best = min(feasible, key=_sort_key)
        return Recommendation(
            config=dict(best["config"]),
            latency_ms=best["latency_ms"],
            recall=best["recall"],
            memory_mb=best["memory_mb"],
            source=best["source"],
            feasible=True,
        )
    best = min(candidates, key=lambda c: (_violation(c, request),
                                          _sort_key(c)))
    overrun = _violation(best, request)
    return Recommendation(
        config=dict(best["config"]),
        latency_ms=best["latency_ms"],
        recall=best["recall"],
        memory_mb=best["memory_mb"],
        source=best["source"],
        feasible=False,
        note=(
            f"no grid or interpolated point meets every budget; nearest "
            f"miss overruns by x{overrun:.2f}"
        ),
    )
