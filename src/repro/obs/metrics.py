"""Process-local metrics: counters, gauges, and streaming histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments.
Histograms are *streaming*: they never store raw samples, only sparse
log-spaced bucket counts plus exact count/sum/min/max, so p50/p95/p99 come
out of O(buckets) memory with a bounded relative error (the bucket growth
factor, 4% by default) regardless of how many values were observed.

:class:`NullRegistry` is the no-op twin handed out when observability is
disabled — every instrument it returns swallows writes — so instrumented
code pays one attribute check and nothing else.
"""

from __future__ import annotations

import math
from typing import Iterator


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge instead")
        self.value += amount

    def summary(self) -> dict:
        return {"kind": "counter", "value": self.value}


class Gauge:
    """A value that can move both ways; remembers only the latest set."""

    __slots__ = ("value", "updates")

    def __init__(self) -> None:
        self.value = math.nan
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1

    def summary(self) -> dict:
        return {"kind": "gauge", "value": self.value, "updates": self.updates}


class Histogram:
    """Streaming distribution sketch over positive-ish floats.

    Values are assigned to geometric buckets ``[min_value·g^i,
    min_value·g^(i+1))``; a quantile is answered with the geometric
    midpoint of the bucket holding its rank, clamped to the exact observed
    ``[min, max]``. Values at or below ``min_value`` (including zeros and
    negatives, which timings occasionally produce on coarse clocks) share
    the underflow bucket — fine for the latencies/losses this tracks.
    """

    __slots__ = ("min_value", "_log_growth", "growth", "_buckets",
                 "count", "total", "min", "max")

    def __init__(self, min_value: float = 1e-9, growth: float = 1.04) -> None:
        if not min_value > 0:
            raise ValueError("min_value must be positive")
        if not growth > 1.0:
            raise ValueError("growth must exceed 1")
        self.min_value = min_value
        self.growth = growth
        self._log_growth = math.log(growth)
        self._buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        return 1 + int(math.log(value / self.min_value) / self._log_growth)

    def observe(self, value: float) -> None:
        self.observe_many(value, 1)

    def observe_many(self, value: float, times: int) -> None:
        """Record ``times`` identical observations in O(1)."""
        if times <= 0:
            return
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot observe NaN")
        index = self._index(value)
        self._buckets[index] = self._buckets.get(index, 0) + times
        self.count += times
        self.total += value * times
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (``0 <= q <= 100``)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must lie in [0, 100]")
        if self.count == 0:
            return math.nan
        rank = q / 100.0 * (self.count - 1)
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen > rank:
                if index == 0:
                    estimate = self.min_value
                else:
                    lower = self.min_value * self.growth ** (index - 1)
                    estimate = lower * math.sqrt(self.growth)
                return min(max(estimate, self.min), self.max)
        return self.max  # pragma: no cover - rank always falls inside

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def summary(self) -> dict:
        if self.count == 0:
            return {"kind": "histogram", "count": 0}
        return {
            "kind": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class MetricsRegistry:
    """Flat get-or-create namespace of instruments.

    A name is permanently bound to the kind it was first requested as;
    re-requesting it as a different kind raises, which catches typo'd
    instrumentation at the call site instead of corrupting exports.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        instrument = self._metrics.get(name)
        if instrument is None:
            instrument = cls()
            self._metrics[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"requested as {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """``{name: summary}`` for every instrument, sorted by name."""
        return {name: self._metrics[name].summary() for name in self.names()}

    def records(self) -> Iterator[dict]:
        """One export record per instrument (for JSONL)."""
        for name, summary in self.snapshot().items():
            yield {"metric": name, **summary}


class _NullInstrument:
    """Accepts every write, remembers nothing.

    Quacks like all three instrument kinds so disabled call sites never
    branch on type.
    """

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, value: float, times: int) -> None:
        pass

    def summary(self) -> dict:
        return {"kind": "null"}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The disabled registry: hands out shared no-op instruments."""

    def _get(self, name: str, cls):
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict[str, dict]:
        return {}
