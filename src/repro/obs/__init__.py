"""``repro.obs`` — the observability layer: metrics, tracing, exporters.

Everything the system knows about where time and memory go flows through
here: a process-local :class:`~repro.obs.metrics.MetricsRegistry`
(counters, gauges, streaming p50/p95/p99 histograms), nested
:meth:`~repro.obs.tracing.Tracer.span` tracing on monotonic clocks, and
JSONL exporters (:mod:`repro.obs.export`) so runs leave machine-readable
event streams. The metric catalogue lives in :mod:`repro.obs.names`; the
benchmark harness built on top of it in :mod:`repro.obs.bench`.

Observability is **off by default and near-zero-cost when off**: the
process-local context handed out by :func:`get_obs` starts disabled, its
registry and tracer are no-op singletons, and every instrumented hot path
guards its measurement with one ``obs.enabled`` attribute check. Turning
it on is one call::

    from repro import obs

    handle = obs.enable_observability()
    ...  # train, index, search — hot paths now record
    handle.registry.snapshot()            # in-process inspection
    obs.export_metrics(handle.registry, "metrics.jsonl")
    obs.disable_observability()

or scoped, which is what tests and the CLI use::

    with obs.observed() as handle:
        trainer.fit(dataset)
    print(handle.registry.histogram(obs.names.TRAIN_STEP_TIME).p95)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs import names
from repro.obs.export import (
    EXPORT_SCHEMA_VERSION,
    export_metrics,
    export_spans,
    read_jsonl,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.tracing import NullTracer, Span, Tracer, timed


class Observability:
    """One process-local observability context: registry + tracer + switch.

    Instrumented code asks :func:`get_obs` for the current context once
    per operation, checks ``enabled``, and only then touches the clock or
    the registry — so the disabled path costs a function call and an
    attribute read.
    """

    __slots__ = ("registry", "tracer", "enabled")

    def __init__(self, registry: MetricsRegistry, tracer: Tracer, enabled: bool):
        self.registry = registry
        self.tracer = tracer
        self.enabled = enabled

    def span(self, name: str, **attrs):
        """A tracer span when enabled, a shared no-op scope otherwise."""
        return self.tracer.span(name, **attrs)


_DISABLED = Observability(NullRegistry(), NullTracer(), enabled=False)
_current = _DISABLED


def get_obs() -> Observability:
    """The process-local observability context (disabled by default)."""
    return _current


def enable_observability(
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> Observability:
    """Install (and return) a live observability context process-wide."""
    global _current
    _current = Observability(
        registry if registry is not None else MetricsRegistry(),
        tracer if tracer is not None else Tracer(),
        enabled=True,
    )
    return _current


def disable_observability() -> None:
    """Restore the no-op default."""
    global _current
    _current = _DISABLED


@contextmanager
def observed(
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> Iterator[Observability]:
    """Enable observability for a scope, restoring the prior context after."""
    global _current
    previous = _current
    handle = enable_observability(registry=registry, tracer=tracer)
    try:
        yield handle
    finally:
        _current = previous


__all__ = [
    "Counter",
    "EXPORT_SCHEMA_VERSION",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "Observability",
    "Span",
    "Tracer",
    "disable_observability",
    "enable_observability",
    "export_metrics",
    "export_spans",
    "get_obs",
    "names",
    "observed",
    "read_jsonl",
    "timed",
    "write_jsonl",
]
