"""Nested-scope tracing on monotonic clocks.

``Tracer.span("name")`` is a context manager; spans nest, every finished
span records its depth, parent, and duration from ``time.perf_counter()``
(monotonic — wall-clock adjustments can never produce negative
durations), and the whole trace exports as a flat record list ordered by
completion time. :func:`timed` is the histogram-flavoured sibling: a
context manager that observes its elapsed seconds into any object with an
``observe`` method.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Span:
    """One finished (or still-open) traced scope."""

    name: str
    span_id: int
    parent_id: int | None
    depth: int
    start_s: float  # seconds since the tracer's epoch (monotonic)
    end_s: float | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            raise RuntimeError(f"span {self.name!r} has not finished")
        return self.end_s - self.start_s

    def record(self) -> dict:
        return {
            "span": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            **({"attrs": self.attrs} if self.attrs else {}),
        }


class Tracer:
    """Collects spans for one process-local trace.

    All timestamps are offsets from the tracer's construction instant on
    the ``perf_counter`` clock; ``wall_epoch`` anchors that instant in
    wall-clock time for cross-run correlation.
    """

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self.wall_epoch = time.time()
        self._stack: list[Span] = []
        self.finished: list[Span] = []
        self._next_id = 0

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    @property
    def depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a nested scope; the span is finalised on exit, even on error."""
        parent = self._stack[-1] if self._stack else None
        entry = Span(
            name=name,
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            depth=len(self._stack),
            start_s=self._now(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(entry)
        try:
            yield entry
        finally:
            self._stack.pop()
            entry.end_s = self._now()
            self.finished.append(entry)

    def records(self) -> list[dict]:
        """Finished spans as export records, in completion order."""
        return [span.record() for span in self.finished]

    def clear(self) -> None:
        self.finished.clear()


class NullTracer(Tracer):
    """The disabled tracer: spans cost one shared no-op context manager."""

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str, **attrs):
        return _NULL_SPAN

    def records(self) -> list[dict]:
        return []


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


@contextmanager
def timed(sink) -> Iterator[None]:
    """Observe the elapsed seconds of the ``with`` body into ``sink``.

    ``sink`` is anything with ``observe(seconds)`` — typically a
    :class:`~repro.obs.metrics.Histogram`.
    """
    start = time.perf_counter()
    try:
        yield
    finally:
        sink.observe(time.perf_counter() - start)
