"""The benchmark harness: seeded per-phase timing with a stable schema.

This is the baseline every performance PR is judged against. One run
times seven phases per dataset profile — **train-step** (optimisation
steps through the real session loop), **train** (the fused-vs-reference
training comparison), **encode** (DSQ encoding of the
database), **index-build** (the full Fig. 3 indexing pipeline), **query**
(ADC search, measured both one-query-at-a-time for honest latency
percentiles and as one batch for throughput), **serve** (closed-loop
traffic through the resilient serving daemon, recording request-level
p50/p95/p99 latency and sustained QPS), and **stream** (the mutable
index under a streaming long-tail drift scenario: online insert
throughput, recall decay against a periodic full rebuild, compaction
pause percentiles, and the quantization-drift refresh flag) — and writes
``BENCH_results.json`` in the versioned schema documented in
``docs/benchmarks.md``.

The opt-in ``ivf-large`` profile (``--profile ivf-large``) is different in
kind: it builds a memory-mapped long-tail corpus of 1e6+ items, indexes
it, and runs a single **ivf** phase — the recall@10-vs-speedup curve of
the IVF-pruned engine swept across ``--nprobe`` values against the exact
exhaustive oracle (schema v4).

All numbers come from the observability layer itself: each profile runs
under a fresh :func:`repro.obs.observed` context, phase wall times are
read off tracer spans, and latency percentiles off the streaming
histograms the instrumented hot paths feed. Entry points::

    python benchmarks/run_bench.py --profile cifar100-lt --quick
    python -m repro bench --profile cifar100-lt --quick
    python benchmarks/run_bench.py --compare old.json new.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

import numpy as np

from repro import obs
from repro.obs import names as metric_names

#: v2 adds the ``train`` phase (fused-vs-reference training comparison);
#: v3 adds the ``serve`` phase (serving-daemon latency/QPS under closed-loop
#: traffic); v4 adds the ``ivf`` phase (the ``ivf-large`` profile's
#: recall@k-vs-speedup curve for the IVF-pruned engine over a memory-mapped
#: corpus); v5 adds the ``stream`` phase (mutable-index long-tail drift:
#: insert throughput, recall decay vs periodic full rebuild, compaction
#: pauses, quantization-drift flag); v6 adds the ``tune`` phase (the
#: ``repro tune`` config-grid sweep: recall/latency/as-stored-memory per
#: grid point, fused-train measurements, and the fitted cost model with
#: its residuals — see :mod:`repro.tuning`); v7 adds the asymmetric
#: query-encoder block under ``phases.query.encoder`` (light-vs-full
#: encode latency, encode-inclusive end-to-end percentiles, recall@10
#: delta, and the fused-batch-vs-per-query full-encode comparison — see
#: :mod:`repro.encoding`). Older files load fine — the extra phases are
#: simply absent.
BENCH_SCHEMA_VERSION = 7
_READABLE_SCHEMA_VERSIONS = (1, 2, 3, 4, 5, 6, 7)
DEFAULT_RESULTS_PATH = "BENCH_results.json"
#: Dataset profiles a default (no ``--profile``) run covers.
DEFAULT_PROFILES = ("cifar100-lt", "imagenet100-lt", "nc-lt", "qba-lt")
#: The synthetic micro-profile used by the CI smoke run.
TINY_PROFILE = "tiny"
#: The memory-mapped large-scale IVF profile (opt-in: ``--profile ivf-large``).
IVF_LARGE_PROFILE = "ivf-large"

_PHASES = ("train_step", "encode", "index_build", "query")

#: ``nprobe`` sweep of the ``ivf`` phase when ``--nprobe`` is not given.
DEFAULT_NPROBES = (1, 2, 4, 8, 16, 32)
#: Corpus size of the ``ivf-large`` profile (``--quick`` shrinks it).
IVF_LARGE_ITEMS = 1_000_000
IVF_LARGE_QUICK_ITEMS = 50_000
#: Recall@10 floor the tuned ``best`` operating point must clear.
IVF_RECALL_FLOOR = 0.95

#: Streaming long-tail phase (schema v5): total items streamed into the
#: mutable index (``--stream-items``; ``--quick`` shrinks it) and the
#: number of arrival steps (``--stream-steps``).
STREAM_ITEMS = 6_000
STREAM_QUICK_ITEMS = 2_000
STREAM_STEPS = 12
STREAM_QUICK_STEPS = 6
#: Compact the mutable index every this many arrival steps.
STREAM_COMPACT_EVERY = 4
#: Acceptance: recall@10 may trail a from-scratch rebuild (retrained
#: codebooks) by at most this much at any compaction checkpoint.
STREAM_RECALL_DECAY_LIMIT = 0.02
#: Acceptance: sustained insert throughput floor (vectors/s).
STREAM_INSERT_FLOOR = 10_000.0

#: Acceptance (schema v7 ``phases.query.encoder``): the distilled light
#: query encoder must encode at least this many times faster than the
#: full backbone path…
QUERY_LIGHT_SPEEDUP_FLOOR = 3.0
#: …while giving up at most this much recall@10 against the full path
#: (both scored on the same exact embedding-space oracle).
QUERY_RECALL_DELTA_LIMIT = 0.02
#: Timed repeats of each encode measurement (best-of, like the scans).
_ENCODE_REPEATS = 5

#: Relative tolerance for the fused-vs-reference final-loss parity bit.
#: The two paths follow bit-identical loss values but accumulate gradients
#: in different orders, so trajectories drift at float-rounding rate; over
#: a few epochs the final epoch-mean losses agree to well under this.
PARITY_RTOL = 1e-4


def canonical_dataset(profile: str) -> str:
    """Map a profile name (``cifar100-lt`` or ``cifar100``) to its dataset.

    The ``-lt`` suffix is accepted everywhere the paper's long-tail corpora
    are named; ``tiny`` is the harness's own micro-profile.
    """
    name = profile.strip().lower()
    if name == IVF_LARGE_PROFILE:
        return name
    if name.endswith("-lt"):
        name = name[: -len("-lt")]
    if name == TINY_PROFILE:
        return name
    from repro.data.registry import PROFILES

    if name not in PROFILES:
        known = sorted(PROFILES) + [IVF_LARGE_PROFILE, TINY_PROFILE]
        raise ValueError(f"unknown profile {profile!r}; known: {known}")
    return name


def load_profile_dataset(profile: str, seed: int):
    """The dataset behind a bench profile (shared with ``repro tune``)."""
    dataset_name = canonical_dataset(profile)
    if dataset_name == TINY_PROFILE:
        return build_tiny_dataset(seed)
    from repro.data.registry import load_dataset

    return load_dataset(dataset_name, imbalance_factor=50, scale="ci", seed=seed)


def build_tiny_dataset(seed: int):
    """A six-class micro-corpus so the smoke benchmark finishes in seconds."""
    from repro.data.datasets import RetrievalDataset, Split
    from repro.data.longtail import labels_from_sizes, zipf_class_sizes
    from repro.data.synthetic import make_feature_model

    num_classes, dim = 6, 12
    feature_model = make_feature_model(
        num_classes, dim, separation=3.0, intra_sigma=0.6,
        rng=np.random.default_rng(seed),
    )
    train_labels = labels_from_sizes(
        zipf_class_sizes(num_classes, 40, 10.0), rng=seed + 1
    )
    query_labels = np.tile(np.arange(num_classes), 10)
    db_labels = np.tile(np.arange(num_classes), 30)
    return RetrievalDataset(
        name="tiny",
        num_classes=num_classes,
        target_imbalance_factor=10.0,
        train=Split(feature_model.sample(train_labels, seed + 2), train_labels),
        query=Split(feature_model.sample(query_labels, seed + 3), query_labels),
        database=Split(feature_model.sample(db_labels, seed + 4), db_labels),
        metadata={"modality": "image"},
    )


def _span_duration(tracer: obs.Tracer, name: str) -> float:
    for span in tracer.finished:
        if span.name == name:
            return span.duration_s
    raise KeyError(f"no finished span named {name!r}")


def _latency_summary(histogram: obs.Histogram) -> dict:
    summary = histogram.summary()
    summary.pop("kind", None)
    return summary


def _hist_window(histogram: obs.Histogram) -> tuple[int, float]:
    """Snapshot ``(count, total)`` so a later delta isolates one call."""
    return histogram.count, histogram.total


def _window_mean(histogram: obs.Histogram, window: tuple[int, float]) -> float | None:
    """Mean of the observations made since ``window`` was snapshot."""
    count = histogram.count - window[0]
    if count <= 0:
        return None
    return (histogram.total - window[1]) / count


#: Measured calls averaged per scan-throughput figure — single-shot scan
#: timings at CI scale (~10 ms) swing tens of percent run to run.
_ENGINE_REPEATS = 5


def _bench_engine(index, queries, serial_topk, scan_hist, serial_scan_tput,
                  handle, workers: int, shards: int | None) -> dict:
    """Time the sharded engine on the batch query and compare to serial."""
    import numpy as np

    from repro.retrieval import SearchRequest
    from repro.retrieval.engine import QueryEngine

    with handle.span("bench.query.engine", workers=workers, shards=shards or 0):
        with QueryEngine(index, workers=workers, num_shards=shards) as engine:
            engine.search(queries[:1], k=10)  # warm the path (and any pool)
            request = SearchRequest(queries=queries, k=10, engine=engine)
            window = _hist_window(scan_hist)
            start = time.perf_counter()
            for _ in range(_ENGINE_REPEATS):
                engine_topk = index.search(request).indices
            wall = (time.perf_counter() - start) / _ENGINE_REPEATS
            engine_tput = _window_mean(scan_hist, window)
            entry = {
                "workers": workers,
                "shards": engine.num_shards,
                "dispatch": engine.last_dispatch,
                "wall_time_s": wall,
                "qps": len(queries) / wall if wall > 0 else None,
                "scan_codes_per_s": engine_tput,
                "serial_scan_codes_per_s": serial_scan_tput,
                "scan_speedup": (
                    engine_tput / serial_scan_tput
                    if engine_tput and serial_scan_tput
                    else None
                ),
                "topk_identical_serial": bool(
                    np.array_equal(engine_topk, serial_topk)
                ),
            }
    return entry


def _bench_serve(
    index, queries, seed: int, n_requests: int,
    replicas: int = 2, clients: int = 8,
) -> dict:
    """Serve the query set through the resilient daemon (closed loop).

    Requests draw from the profile's real query set under a seeded
    schedule; the returned entry is the :class:`LoadReport` payload
    (request counts, QPS, p50/p95/p99 latency in ms) plus the daemon
    topology and its cache-hit count — with a seeded schedule the hit
    pattern replays, so two runs measure the same request mix.
    """
    import asyncio

    from repro.serving import ServingDaemon, TrafficGenerator

    async def run():
        daemon = ServingDaemon(index, num_replicas=replicas)
        async with daemon:
            generator = TrafficGenerator(daemon, queries, k=10, seed=seed)
            report = await generator.run_closed(n_requests, clients=clients)
        return daemon, report

    daemon, report = asyncio.run(run())
    return {
        "replicas": replicas,
        "clients": clients,
        "cache_hits": int(daemon.counts["cache_hits"]),
        **report.as_dict(),
    }


def _bench_query_encoder(model, dataset, index, quick: bool, seed: int) -> dict:
    """The schema-v7 asymmetric-encoding comparison (``query.encoder``).

    Distills a light query encoder from the profile's trained model, then
    measures both query paths over the same raw query features: batched
    encode wall time (plus, on the full path, the per-query encode loop
    the fused batch path must beat), encode-inclusive end-to-end latency
    percentiles, and each path's retrieval recall@10 against the exact
    embedding-space oracle. The nightly bench gates ``encode_speedup``
    and ``recall_delta`` against :data:`QUERY_LIGHT_SPEEDUP_FLOOR` /
    :data:`QUERY_RECALL_DELTA_LIMIT`.
    """
    import math

    from repro.encoding import distill_query_encoder
    from repro.retrieval.search import squared_distances

    light, _ = distill_query_encoder(model, dataset, seed=seed)
    raw_queries = np.asarray(dataset.query.features, dtype=np.float64)
    n_single = min(32 if quick else 100, len(raw_queries))
    emb_db = np.asarray(model.embed(dataset.database.features), dtype=np.float64)
    full_emb = np.asarray(model.embed(raw_queries), dtype=np.float64)
    exact_ids = np.argsort(
        squared_distances(full_emb, emb_db), kind="stable", axis=1
    )[:, :10]

    def best_of(call) -> float:
        best = math.inf
        for _ in range(_ENCODE_REPEATS):
            start = time.perf_counter()
            call()
            best = min(best, time.perf_counter() - start)
        return best

    def measure(embed) -> dict:
        batch_s = best_of(lambda: embed(raw_queries))
        samples = []
        for row in raw_queries[:n_single]:
            start = time.perf_counter()
            index.search(embed(row[None, :]), k=10)
            samples.append(time.perf_counter() - start)
        recall = overlap_recall(index.search(embed(raw_queries), k=10), exact_ids)
        return {
            "queries": len(raw_queries),
            "batch_encode_s": batch_s,
            "encode_per_query_s": batch_s / len(raw_queries),
            "end_to_end_queries": n_single,
            "end_to_end_p50_ms": float(np.percentile(samples, 50) * 1e3),
            "end_to_end_p95_ms": float(np.percentile(samples, 95) * 1e3),
            "recall_at_10": recall,
        }

    full = measure(model.embed)
    # The fused-batch claim: one batched full encode must beat encoding
    # the same rows one query at a time.
    per_query_total = best_of(
        lambda: [model.embed(row[None, :]) for row in raw_queries[:n_single]]
    )
    full["per_query_encode_s"] = per_query_total / n_single
    light_entry = measure(light.embed)
    encode_speedup = (
        full["batch_encode_s"] / light_entry["batch_encode_s"]
        if light_entry["batch_encode_s"] > 0 else None
    )
    fused_batch_speedup = (
        full["per_query_encode_s"] / full["encode_per_query_s"]
        if full["encode_per_query_s"] > 0 else None
    )
    recall_delta = full["recall_at_10"] - light_entry["recall_at_10"]
    return {
        "full": full,
        "light": light_entry,
        "encode_speedup": encode_speedup,
        "fused_batch_speedup": fused_batch_speedup,
        "recall_delta": recall_delta,
        "speedup_floor": QUERY_LIGHT_SPEEDUP_FLOOR,
        "recall_delta_limit": QUERY_RECALL_DELTA_LIMIT,
        "within_limits": bool(
            encode_speedup is not None
            and encode_speedup >= QUERY_LIGHT_SPEEDUP_FLOOR
            and recall_delta <= QUERY_RECALL_DELTA_LIMIT
        ),
    }


def train_residual_codebooks(features, num_codebooks, num_codewords, rng):
    """Residual k-means codebooks — the serving-side (re)training step
    shared by the stream phase and the ``repro tune`` sweep."""
    from repro.cluster.kmeans import kmeans

    residual = np.asarray(features, dtype=np.float64).copy()
    dim = residual.shape[1]
    codebooks = np.empty((num_codebooks, num_codewords, dim))
    for j in range(num_codebooks):
        result = kmeans(residual, num_codewords, rng=rng, max_iterations=10)
        codebooks[j] = result.centroids
        residual -= result.centroids[result.assignments]
    return codebooks


def overlap_recall(approx_ids, exact_ids) -> float:
    """Mean top-k overlap fraction (the IVF phase's recall definition)."""
    return float(np.mean([
        len(set(approx) & set(exact)) / len(exact)
        for approx, exact in zip(approx_ids, exact_ids)
    ]))


def _bench_stream(
    num_classes: int,
    dim: int,
    quick: bool,
    seed: int,
    handle,
    stream_items: int | None = None,
    stream_steps: int | None = None,
) -> dict:
    """The streaming long-tail drift scenario over the mutable index.

    A Zipf corpus arrives over ``stream_steps`` batches
    (:func:`repro.data.longtail.stream_arrivals`): the head is present from
    the first batch — which also trains the codebooks — while tail classes
    arrive late and grow. Each later batch is inserted online
    (``MutableIndex.add``), a small seeded churn removes old rows, and the
    index compacts every :data:`STREAM_COMPACT_EVERY` steps. At each
    compaction checkpoint recall@10 (against the exact float oracle over
    the live corpus) is measured three ways:

    - the mutable index as it stands (segments + tombstones);
    - a **periodic full rebuild** with the production codebooks — the ops
      strategy the mutable index replaces. Its recall minus the mutable
      recall is the *decay* the acceptance limit bounds (the parity
      contract predicts exactly zero: same codes, same ranking);
    - a rebuild with codebooks **retrained** on the live corpus — its gain
      over the mutable recall is the *refresh headroom* a DSQ fine-tune
      would recover, the quantity the drift gauge exists to flag. It is
      reported, not thresholded: it measures codebook staleness, not the
      mutable layer.

    The final checkpoint also asserts bit parity between the mutable
    search and its own rebuild through the public search path.
    """
    from repro.data.longtail import stream_arrivals, zipf_class_sizes
    from repro.data.synthetic import make_feature_model
    from repro.retrieval import MutableIndex, QuantizedIndex
    from repro.retrieval.search import squared_distances, topk_tie_stable

    n_items = stream_items if stream_items is not None else (
        STREAM_QUICK_ITEMS if quick else STREAM_ITEMS
    )
    n_steps = stream_steps if stream_steps is not None else (
        STREAM_QUICK_STEPS if quick else STREAM_STEPS
    )
    if n_steps < 2:
        raise ValueError("the stream phase needs at least 2 steps")
    num_codebooks, num_codewords = (4, 32) if quick else (4, 64)
    k = 10
    rng = np.random.default_rng(seed + 17)
    model = make_feature_model(
        num_classes, dim, separation=4.0, intra_sigma=0.8, rng=rng
    )
    # Calibrate the Zipf head size so the schedule totals ~n_items.
    reference = zipf_class_sizes(num_classes, 1_000, 50.0)
    head = max(int(round(1_000 * n_items / reference.sum())), 2)
    sizes = zipf_class_sizes(num_classes, head, 50.0)
    schedule = stream_arrivals(sizes, n_steps, rng=seed + 18, stagger=0.75)

    query_labels = np.tile(np.arange(num_classes), 1 if quick else 2)
    queries = model.sample(query_labels, rng)

    # Row id == position in this growing store (ids are auto-assigned and
    # never reused here), so the float oracle can gather live rows by id.
    store = np.empty((int(sizes.sum()), dim))
    initial = model.sample(schedule[0].labels, rng)
    store[: len(initial)] = initial
    with handle.span("bench.stream.train", items=len(initial)):
        codebooks = train_residual_codebooks(
            initial, num_codebooks, num_codewords,
            np.random.default_rng(seed + 19),
        )
        index = MutableIndex.from_index(
            QuantizedIndex.build(codebooks, initial, labels=schedule[0].labels)
        )

    def checkpoint(step: int) -> dict:
        live_ids = index.live_ids()
        live = store[live_ids]
        exact = live_ids[
            topk_tie_stable(squared_distances(queries, live), k)[0]
        ]
        mutable_recall = overlap_recall(index.search(queries, k=k), exact)
        rebuild_rows = QuantizedIndex.build(codebooks, live).search(
            queries, k=k
        )
        rebuild_recall = overlap_recall(live_ids[rebuild_rows], exact)
        retrained = train_residual_codebooks(
            live, num_codebooks, num_codewords,
            np.random.default_rng(seed + 20 + step),
        )
        retrained_rows = QuantizedIndex.build(retrained, live).search(
            queries, k=k
        )
        retrained_recall = overlap_recall(live_ids[retrained_rows], exact)
        return {
            "step": step,
            "live": int(len(live_ids)),
            "recall_mutable": mutable_recall,
            "recall_rebuild": rebuild_recall,
            "recall_retrained": retrained_recall,
            "decay": rebuild_recall - mutable_recall,
            "refresh_headroom": retrained_recall - mutable_recall,
        }

    inserted = removed = 0
    insert_wall = 0.0
    compact_pauses: list[float] = []
    checkpoints: list[dict] = []
    churn_rng = np.random.default_rng(seed + 21)
    for stream_step in schedule[1:]:
        labels = stream_step.labels
        if len(labels):
            vectors = model.sample(labels, rng)
            result = index.add(vectors, labels=labels)
            store[
                index.id_bound - result.added : index.id_bound
            ] = vectors
            inserted += result.added
            insert_wall += result.elapsed_s
        live_ids = index.live_ids()
        n_churn = int(0.02 * len(live_ids))
        if n_churn:
            victims = churn_rng.choice(live_ids, size=n_churn, replace=False)
            removed += index.remove(victims).removed
        if stream_step.step % STREAM_COMPACT_EVERY == 0 or (
            stream_step is schedule[-1]
        ):
            with handle.span("bench.stream.checkpoint", step=stream_step.step):
                checkpoints.append(checkpoint(stream_step.step))
            compact_pauses.append(index.compact().elapsed_s)

    # Bit parity against the index's own from-scratch rebuild (same
    # codebooks): the tentpole's exactness contract, asserted on the final
    # state through the public search path.
    rebuilt, external = index.rebuild()
    parity = bool(
        np.array_equal(index.search(queries, k=k), external[rebuilt.search(queries, k=k)])
    )
    pauses = np.asarray(compact_pauses)
    max_decay = max(point["decay"] for point in checkpoints)
    insert_rate = inserted / insert_wall if insert_wall > 0 else None
    entry = {
        "items": int(n_items),
        "steps": int(n_steps),
        "initial_items": int(len(initial)),
        "inserted": int(inserted),
        "removed": int(removed),
        "live_final": int(len(index)),
        "insert": {
            "wall_time_s": insert_wall,
            "items_per_s": insert_rate,
            "floor_items_per_s": STREAM_INSERT_FLOOR,
            "meets_floor": bool(
                insert_rate is not None and insert_rate >= STREAM_INSERT_FLOOR
            ),
        },
        "compactions": {
            "count": len(compact_pauses),
            "every_steps": STREAM_COMPACT_EVERY,
            "pause_s": {
                "p50": float(np.percentile(pauses, 50)),
                "p95": float(np.percentile(pauses, 95)),
                "p99": float(np.percentile(pauses, 99)),
                "max": float(pauses.max()),
            },
        },
        "recall": {
            "k": k,
            "checkpoints": checkpoints,
            "max_decay": float(max_decay),
            "decay_limit": STREAM_RECALL_DECAY_LIMIT,
            "within_limit": bool(max_decay <= STREAM_RECALL_DECAY_LIMIT),
            "max_refresh_headroom": float(
                max(point["refresh_headroom"] for point in checkpoints)
            ),
        },
        "drift": {
            "ratio": float(index.drift_ratio),
            "threshold": index.drift_threshold,
            "refresh_flagged": bool(index.refresh_recommended),
        },
        "parity_with_rebuild": parity,
    }
    index.close()
    return entry


def _build_ivf_corpus(n_items: int, quick: bool, seed: int, tmpdir: str):
    """Memory-mapped long-tail corpus + a trained quantized index over it.

    Codebooks come from residual k-means on a corpus sample (the indexing
    question the IVF phase answers is a *serving* one — the trained-DSQ
    path is timed by the regular profiles); encoding and norm computation
    then stream the memmap in chunks, so peak memory stays one chunk of
    float64 regardless of corpus size.
    """
    from repro.cluster.kmeans import kmeans
    from repro.data.longtail import zipf_class_sizes
    from repro.data.synthetic import make_feature_model, sample_to_memmap
    from repro.retrieval import QuantizedIndex, encode_nearest, reconstruct

    num_classes, dim = 200, 32
    num_codebooks, num_codewords = (4, 64) if quick else (8, 256)
    rng = np.random.default_rng(seed)
    model = make_feature_model(
        num_classes, dim, separation=4.5, intra_sigma=0.8, rng=rng,
        nuisance_dim=4, nuisance_sigma=0.5,
    )
    # Zipf shape from the long-tail substrate, renormalised to draw exactly
    # n_items labels.
    sizes = zipf_class_sizes(num_classes, 10_000, 50.0)
    probabilities = sizes / sizes.sum()
    db_labels = rng.choice(num_classes, size=n_items, p=probabilities)
    features = sample_to_memmap(
        model, db_labels, os.path.join(tmpdir, "corpus.f32"), rng
    )

    train_rows = rng.choice(n_items, size=min(65_536, n_items), replace=False)
    train_rows.sort()
    sample = np.asarray(features[train_rows], dtype=np.float64)
    residual = sample.copy()
    codebooks = np.empty((num_codebooks, num_codewords, dim))
    for j in range(num_codebooks):
        result = kmeans(residual, num_codewords, rng=rng, max_iterations=15)
        codebooks[j] = result.centroids
        residual -= result.centroids[result.assignments]

    chunk = 65_536
    codes = np.empty((n_items, num_codebooks), dtype=np.int64)
    norms = np.empty(n_items)
    for lo in range(0, n_items, chunk):
        hi = min(lo + chunk, n_items)
        block = np.asarray(features[lo:hi], dtype=np.float64)
        codes[lo:hi] = encode_nearest(block, codebooks, residual=True)
        norms[lo:hi] = (reconstruct(codes[lo:hi], codebooks) ** 2).sum(axis=1)
    index = QuantizedIndex(
        codebooks=codebooks, codes=codes, db_sq_norms=norms, labels=db_labels
    )

    n_query = 32 if quick else 64
    query_labels = rng.integers(num_classes, size=n_query)
    queries = model.sample(query_labels, rng)
    return index, queries, features.nbytes


def bench_ivf_profile(
    quick: bool = False,
    seed: int = 0,
    workers: int | None = None,
    shards: int | None = None,
    nprobes: tuple[int, ...] | None = None,
    ivf_items: int | None = None,
    ivf_cells: int | None = None,
    ivf_lut: str = "float32",
) -> dict:
    """The ``ivf-large`` profile: recall@10-vs-speedup over a memmap corpus.

    Builds a memory-mapped long-tail corpus (1e6 items by default,
    ``--quick`` shrinks it), indexes it, then measures the exhaustive
    :class:`~repro.retrieval.engine.QueryEngine` as the recall oracle and
    sweeps the IVF layer across ``nprobes``. Each sweep point records wall
    time, QPS, recall@10 against the exact oracle, and speedup over the
    exhaustive scan; ``best`` is the fastest point whose recall clears
    :data:`IVF_RECALL_FLOOR`. The result subtree carries a single ``ivf``
    phase (schema v4).
    """
    import shutil
    import tempfile

    from repro.retrieval import IVFIndex, SearchRequest, default_num_cells
    from repro.retrieval.engine import QueryEngine

    nprobes = tuple(sorted(set(nprobes or DEFAULT_NPROBES)))
    n_items = ivf_items if ivf_items is not None else (
        IVF_LARGE_QUICK_ITEMS if quick else IVF_LARGE_ITEMS
    )
    tmpdir = tempfile.mkdtemp(prefix="repro-ivf-bench-")
    try:
        with obs.observed() as handle:
            tracer = handle.tracer
            registry = handle.registry
            with handle.span("bench.profile", profile=IVF_LARGE_PROFILE):
                with handle.span("bench.ivf.corpus", items=n_items):
                    index, queries, corpus_bytes = _build_ivf_corpus(
                        n_items, quick, seed, tmpdir
                    )
                num_cells = (
                    ivf_cells if ivf_cells is not None
                    else default_num_cells(len(index))
                )
                with handle.span("bench.ivf.build", cells=num_cells):
                    ivf = IVFIndex.build(
                        index, num_cells=num_cells, lut_dtype=ivf_lut,
                        seed=seed,
                    )
                with QueryEngine(
                    index, workers=workers or 1, num_shards=shards
                ) as engine:
                    engine.search(queries[:1], k=10)  # warm the scan path
                    with handle.span("bench.ivf.exhaustive"):
                        start = time.perf_counter()
                        exact_topk = engine.search(queries, k=10)
                        exhaustive_wall = time.perf_counter() - start
                curve = []
                cells_hist = registry.histogram(metric_names.IVF_CELLS_PROBED)
                cand_hist = registry.histogram(
                    metric_names.IVF_CANDIDATES_SCANNED
                )
                ivf.search(queries[:1], k=10)  # warm (and build the LUT path)
                for nprobe in nprobes:
                    cells_window = _hist_window(cells_hist)
                    cand_window = _hist_window(cand_hist)
                    with handle.span("bench.ivf.sweep", nprobe=nprobe):
                        request = SearchRequest(
                            queries=queries, k=10, nprobe=nprobe
                        )
                        start = time.perf_counter()
                        topk = ivf.search(request).indices
                        wall = time.perf_counter() - start
                    overlap = [
                        len(set(approx) & set(exact)) / len(exact)
                        for approx, exact in zip(topk, exact_topk)
                    ]
                    curve.append({
                        "nprobe": int(min(nprobe, ivf.num_cells)),
                        "wall_time_s": wall,
                        "qps": len(queries) / wall if wall > 0 else None,
                        "recall_at_10": float(np.mean(overlap)),
                        "speedup": (
                            exhaustive_wall / wall if wall > 0 else None
                        ),
                        "mean_cells_probed": _window_mean(
                            cells_hist, cells_window
                        ),
                        "mean_candidates": _window_mean(cand_hist, cand_window),
                    })
            eligible = [
                point for point in curve
                if point["recall_at_10"] >= IVF_RECALL_FLOOR
                and point["speedup"] is not None
            ]
            best = max(eligible, key=lambda p: p["speedup"]) if eligible else None
            cell_sizes = ivf.cell_sizes()
            build_entry = {
                "wall_time_s": _span_duration(tracer, "bench.ivf.build"),
                "num_cells": ivf.num_cells,
                "lut_dtype": ivf_lut,
                "nbytes": int(ivf.nbytes),
                "empty_cells": int((cell_sizes == 0).sum()),
                "cell_size_min": int(cell_sizes.min()),
                "cell_size_mean": float(cell_sizes.mean()),
                "cell_size_max": int(cell_sizes.max()),
            }
            return {
                "profile": IVF_LARGE_PROFILE,
                "dataset": {
                    "name": IVF_LARGE_PROFILE,
                    "num_classes": 200,
                    "dim": index.dim,
                    "n_train": 0,
                    "n_db": len(index),
                    "n_query": len(queries),
                    "memmap_bytes": int(corpus_bytes),
                },
                "phases": {
                    "ivf": {
                        "wall_time_s": _span_duration(tracer, "bench.profile"),
                        "corpus_wall_time_s": _span_duration(
                            tracer, "bench.ivf.corpus"
                        ),
                        "build": build_entry,
                        "exhaustive": {
                            "wall_time_s": exhaustive_wall,
                            "qps": (
                                len(queries) / exhaustive_wall
                                if exhaustive_wall > 0 else None
                            ),
                            "workers": workers or 1,
                            "shards": shards or 0,
                        },
                        "recall_floor": IVF_RECALL_FLOOR,
                        "curve": curve,
                        "best": best,
                    },
                },
                "metrics": registry.snapshot(),
                "spans": tracer.records(),
            }
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


def bench_profile(
    profile: str,
    quick: bool = False,
    seed: int = 0,
    workers: int | None = None,
    shards: int | None = None,
    stream_items: int | None = None,
    stream_steps: int | None = None,
) -> dict:
    """Run every phase for one profile; returns its result subtree.

    With ``workers`` (and optionally ``shards``) set, the query phase also
    times the sharded :class:`repro.retrieval.engine.QueryEngine` on the
    same batch and records its scan throughput, the serial scan throughput,
    their ratio, and a top-k parity bit under ``phases.query.engine``.

    The ``ivf-large`` profile is special-cased to
    :func:`bench_ivf_profile` (its corpus is memory-mapped and it runs a
    single ``ivf`` phase instead of the six regular ones).
    """
    import dataclasses

    if canonical_dataset(profile) == IVF_LARGE_PROFILE:
        return bench_ivf_profile(
            quick=quick, seed=seed, workers=workers, shards=shards
        )

    from repro.core.trainer import Trainer
    from repro.experiments.config import (
        default_loss_config,
        default_model_config,
        default_training_config,
    )

    dataset = load_profile_dataset(profile, seed)
    epochs = 1 if quick else 3
    model_config = default_model_config(dataset)
    loss_config = default_loss_config(dataset)
    training_config = default_training_config(dataset, fast=True)
    trainer = Trainer(model_config, loss_config, training_config, seed=seed)
    fused_trainer = Trainer(
        model_config,
        loss_config,
        dataclasses.replace(training_config, fused=True),
        seed=seed,
    )
    with obs.observed() as handle:
        tracer = handle.tracer
        registry = handle.registry
        steps_counter = registry.counter(metric_names.TRAIN_STEPS_TOTAL)
        with handle.span("bench.profile", profile=profile):
            with handle.span("bench.setup"):
                session = trainer.start_session(dataset, epochs=epochs)
            with handle.span("bench.train_step"):
                while not session.finished:
                    session.run_epoch()
            # Snapshot reference-run training metrics before the fused run
            # below adds its own steps/times to the same counters.
            reference_steps = int(steps_counter.value)
            reference_step_time = _latency_summary(
                registry.histogram(metric_names.TRAIN_STEP_TIME)
            )
            # Train phase: same seed, same data order, fused fast path. A
            # fresh session (not a continuation) so both runs start from
            # identical initialisation and their final losses compare.
            with handle.span("bench.setup_fused"):
                fused_session = fused_trainer.start_session(dataset, epochs=epochs)
            with handle.span("bench.train_fused"):
                while not fused_session.finished:
                    fused_session.run_epoch()
            fused_steps = int(steps_counter.value) - reference_steps
            model = session.model
            model.eval()
            database = dataset.database.features
            with handle.span("bench.encode"):
                model.encode(database)
            with handle.span("bench.index_build"):
                index = model.build_index(database, labels=dataset.database.labels)
            queries = model.embed(dataset.query.features)
            n_single = min(100 if quick else len(queries), len(queries))
            with handle.span("bench.query", single=n_single, batch=len(queries)):
                # Served one at a time: each call's wall time is one query's
                # true latency, so the histogram percentiles are exact.
                with handle.span("bench.query.single"):
                    for row in queries[:n_single]:
                        index.search(row[None, :], k=10)
                # Snapshot latency percentiles before the batch call below
                # adds its (amortised, much lower) per-query observations.
                single_latency = _latency_summary(
                    handle.registry.histogram(metric_names.QUERY_LATENCY)
                )
                scan_hist = handle.registry.histogram(
                    metric_names.ADC_SCAN_CODES_PER_S
                )
                serial_window = _hist_window(scan_hist)
                with handle.span("bench.query.batch"):
                    serial_topk = index.search(queries, k=10)
                if workers is not None or shards is not None:
                    # Extra serial reps (outside the batch span, inside the
                    # scan window) so the engine comparison averages away
                    # single-shot scan noise on both sides.
                    for _ in range(_ENGINE_REPEATS - 1):
                        index.search(queries, k=10)
                serial_scan_tput = _window_mean(scan_hist, serial_window)
                engine_entry = None
                if workers is not None or shards is not None:
                    engine_entry = _bench_engine(
                        index, queries, serial_topk, scan_hist,
                        serial_scan_tput, handle,
                        workers=workers or 1, shards=shards,
                    )
            with handle.span("bench.query.encoder"):
                encoder_entry = _bench_query_encoder(
                    model, dataset, index, quick, seed
                )
            n_serve = 64 if quick else 256
            with handle.span("bench.serve", requests=n_serve):
                serve_entry = _bench_serve(
                    index, queries, seed=seed, n_requests=n_serve
                )
            with handle.span("bench.stream"):
                stream_entry = _bench_stream(
                    dataset.num_classes, dataset.dim, quick, seed, handle,
                    stream_items=stream_items, stream_steps=stream_steps,
                )
        steps = reference_steps
        stream_wall = _span_duration(tracer, "bench.stream")
        serve_wall = _span_duration(tracer, "bench.serve")
        train_wall = _span_duration(tracer, "bench.train_step")
        fused_wall = _span_duration(tracer, "bench.train_fused")
        encode_wall = _span_duration(tracer, "bench.encode")
        build_wall = _span_duration(tracer, "bench.index_build")
        single_wall = _span_duration(tracer, "bench.query.single")
        batch_wall = _span_duration(tracer, "bench.query.batch")
        encoder_wall = _span_duration(tracer, "bench.query.encoder")

        reference_final = float(session.history.last()["total"])
        fused_final = float(fused_session.history.last()["total"])
        loss_rel_diff = abs(fused_final - reference_final) / max(
            abs(reference_final), 1e-12
        )
        loss_parity = bool(loss_rel_diff <= PARITY_RTOL)
        reference_sps = steps / train_wall if train_wall > 0 else None
        fused_sps = fused_steps / fused_wall if fused_wall > 0 else None
        speedup = (
            fused_sps / reference_sps if fused_sps and reference_sps else None
        )
        if speedup is not None:
            registry.gauge(metric_names.TRAIN_FUSED_SPEEDUP).set(speedup)
        registry.gauge(metric_names.TRAIN_FUSED_LOSS_PARITY).set(
            1.0 if loss_parity else 0.0
        )

        return {
            "profile": profile,
            "dataset": {
                "name": dataset.name,
                "num_classes": dataset.num_classes,
                "dim": dataset.dim,
                "n_train": len(dataset.train),
                "n_db": len(dataset.database),
                "n_query": len(dataset.query),
            },
            "phases": {
                "train_step": {
                    "wall_time_s": train_wall,
                    "epochs": epochs,
                    "steps": int(steps),
                    "steps_per_s": reference_sps,
                    "step_time_s": reference_step_time,
                },
                "train": {
                    "wall_time_s": train_wall + fused_wall,
                    "epochs": epochs,
                    "reference": {
                        "wall_time_s": train_wall,
                        "steps": int(steps),
                        "steps_per_s": reference_sps,
                        "final_loss": reference_final,
                    },
                    "fused": {
                        "wall_time_s": fused_wall,
                        "steps": int(fused_steps),
                        "steps_per_s": fused_sps,
                        "final_loss": fused_final,
                    },
                    "speedup": speedup,
                    "loss_parity": loss_parity,
                    "loss_rel_diff": loss_rel_diff,
                    "parity_rtol": PARITY_RTOL,
                },
                "encode": {
                    "wall_time_s": encode_wall,
                    "items": len(database),
                    "items_per_s": (
                        len(database) / encode_wall if encode_wall > 0 else None
                    ),
                },
                "index_build": {
                    "wall_time_s": build_wall,
                    "items": len(database),
                    "items_per_s": (
                        len(database) / build_wall if build_wall > 0 else None
                    ),
                },
                "query": {
                    "wall_time_s": single_wall + batch_wall,
                    "single": {
                        "queries": n_single,
                        "wall_time_s": single_wall,
                        "latency_s": single_latency,
                    },
                    "batch": {
                        "queries": len(queries),
                        "wall_time_s": batch_wall,
                        "qps": (
                            len(queries) / batch_wall if batch_wall > 0 else None
                        ),
                    },
                    **({"engine": engine_entry} if engine_entry else {}),
                    "encoder": {
                        "wall_time_s": encoder_wall,
                        **encoder_entry,
                    },
                },
                "serve": {
                    "wall_time_s": serve_wall,
                    **serve_entry,
                },
                "stream": {
                    "wall_time_s": stream_wall,
                    **stream_entry,
                },
            },
            "metrics": registry.snapshot(),
            "spans": tracer.records(),
        }


def run_bench(
    profiles: list[str] | tuple[str, ...] = DEFAULT_PROFILES,
    quick: bool = False,
    seed: int = 0,
    workers: int | None = None,
    shards: int | None = None,
    nprobes: tuple[int, ...] | None = None,
    ivf_items: int | None = None,
    ivf_cells: int | None = None,
    ivf_lut: str = "float32",
    stream_items: int | None = None,
    stream_steps: int | None = None,
) -> dict:
    """Run the harness over ``profiles``; returns the full result tree.

    The ``ivf_*``/``nprobes`` knobs shape the ``ivf-large`` profile only,
    and the ``stream_*`` knobs the regular profiles' ``stream`` phase;
    each is ignored by the other kind of profile.
    """
    results = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "created_unix": time.time(),
        "seed": seed,
        "quick": quick,
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "profiles": {},
    }
    for profile in profiles:
        if canonical_dataset(profile) == IVF_LARGE_PROFILE:
            results["profiles"][profile] = bench_ivf_profile(
                quick=quick, seed=seed, workers=workers, shards=shards,
                nprobes=nprobes, ivf_items=ivf_items, ivf_cells=ivf_cells,
                ivf_lut=ivf_lut,
            )
        else:
            results["profiles"][profile] = bench_profile(
                profile, quick=quick, seed=seed, workers=workers,
                shards=shards, stream_items=stream_items,
                stream_steps=stream_steps,
            )
    return results


def write_results(results: dict, path: str = DEFAULT_RESULTS_PATH) -> str:
    """Write the result tree as pretty JSON; returns the absolute path."""
    path = os.path.abspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_results(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        results = json.load(handle)
    version = results.get("schema_version")
    if version not in _READABLE_SCHEMA_VERSIONS:
        raise ValueError(
            f"{path}: unsupported bench schema {version!r} "
            f"(readable: {_READABLE_SCHEMA_VERSIONS})"
        )
    return results


def format_summary(results: dict) -> str:
    """A human-readable per-profile phase table."""
    lines = [
        f"bench seed={results['seed']} quick={results['quick']} "
        f"(schema v{results['schema_version']})",
        f"{'profile':<16} {'phase':<12} {'wall_s':>9} {'throughput':>18} "
        f"{'p50':>9} {'p95':>9} {'p99':>9}",
    ]
    for profile, entry in results["profiles"].items():
        phases = entry["phases"]
        rows = []
        if "train_step" in phases:
            rows.append(
                ("train_step", phases["train_step"]["wall_time_s"],
                 phases["train_step"]["steps_per_s"], "steps/s",
                 phases["train_step"]["step_time_s"]))
        if "encode" in phases:
            rows.append(
                ("encode", phases["encode"]["wall_time_s"],
                 phases["encode"]["items_per_s"], "items/s", None))
        if "index_build" in phases:
            rows.append(
                ("index_build", phases["index_build"]["wall_time_s"],
                 phases["index_build"]["items_per_s"], "items/s", None))
        if "query" in phases:
            rows.append(
                ("query", phases["query"]["wall_time_s"],
                 phases["query"]["batch"]["qps"], "qps",
                 phases["query"]["single"]["latency_s"]))
        for phase, wall, rate, unit, dist in rows:
            rate_text = f"{rate:,.0f} {unit}" if rate else "-"
            if dist and dist.get("count"):
                p50, p95, p99 = (f"{dist[k]:.2e}" for k in ("p50", "p95", "p99"))
            else:
                p50 = p95 = p99 = "-"
            lines.append(
                f"{profile:<16} {phase:<12} {wall:>9.3f} {rate_text:>18} "
                f"{p50:>9} {p95:>9} {p99:>9}"
            )
        train = phases.get("train")
        if train:
            fused = train["fused"]
            sps = fused.get("steps_per_s")
            rate_text = f"{sps:,.0f} steps/s" if sps else "-"
            speedup = train.get("speedup")
            speedup_text = f"x{speedup:.2f}" if speedup else "-"
            parity = "ok" if train.get("loss_parity") else "MISMATCH"
            lines.append(
                f"{profile:<16} {'train.fused':<12} "
                f"{fused['wall_time_s']:>9.3f} {rate_text:>18} "
                f"{speedup_text} vs reference (loss parity {parity})"
            )
        engine = phases.get("query", {}).get("engine")
        if engine:
            qps = engine.get("qps")
            rate_text = f"{qps:,.0f} qps" if qps else "-"
            speedup = engine.get("scan_speedup")
            speedup_text = f"x{speedup:.2f}" if speedup else "-"
            parity = "ok" if engine.get("topk_identical_serial") else "MISMATCH"
            lines.append(
                f"{profile:<16} {'query.engine':<12} "
                f"{engine['wall_time_s']:>9.3f} {rate_text:>18} "
                f"scan {speedup_text} ({engine['dispatch']}, "
                f"{engine['workers']}w/{engine['shards']}s, top-k {parity})"
            )
        encoder = phases.get("query", {}).get("encoder")
        if encoder:
            speedup = encoder.get("encode_speedup")
            speedup_text = f"x{speedup:.2f}" if speedup else "-"
            fused = encoder.get("fused_batch_speedup")
            fused_text = f"x{fused:.2f}" if fused else "-"
            gate = "ok" if encoder.get("within_limits") else "OVER LIMIT"
            lines.append(
                f"{profile:<16} {'query.encoder':<12} "
                f"{encoder.get('wall_time_s', 0.0):>9.3f} "
                f"{'light ' + speedup_text:>18} "
                f"delta {encoder.get('recall_delta', 0.0):+.3f} ({gate}), "
                f"fused batch {fused_text} vs per-query"
            )
        serve = phases.get("serve")
        if serve:
            qps = serve.get("qps")
            rate_text = f"{qps:,.0f} qps" if qps else "-"
            p50, p95, p99 = (
                f"{serve[f'latency_p{q}_ms'] / 1e3:.2e}"
                for q in ("50", "95", "99")
            )
            lines.append(
                f"{profile:<16} {'serve':<12} "
                f"{serve['wall_time_s']:>9.3f} {rate_text:>18} "
                f"{p50:>9} {p95:>9} {p99:>9} "
                f"({serve['replicas']}r/{serve['clients']}c, "
                f"ok {serve['ok']}/{serve['requests']})"
            )
        stream = phases.get("stream")
        if stream:
            rate = stream["insert"].get("items_per_s")
            rate_text = f"{rate:,.0f} items/s" if rate else "-"
            recall = stream["recall"]
            pause = stream["compactions"]["pause_s"]
            decay_flag = "ok" if recall["within_limit"] else "OVER LIMIT"
            parity = "ok" if stream.get("parity_with_rebuild") else "MISMATCH"
            lines.append(
                f"{profile:<16} {'stream':<12} "
                f"{stream['wall_time_s']:>9.3f} {rate_text:>18} "
                f"decay {recall['max_decay']:+.3f} ({decay_flag}), "
                f"compact p95 {pause['p95'] * 1e3:.1f}ms, parity {parity}"
            )
        tune = phases.get("tune")
        if tune:
            model = tune.get("model", {})
            holdout = model.get("holdout") or {}
            fit_text = (
                f"fit err mean {model.get('mean_rel_error', 0.0) * 100:.1f}% "
                f"/ max {model.get('max_rel_error', 0.0) * 100:.1f}%"
            )
            if holdout.get("n"):
                fit_text += (
                    f" (holdout mean "
                    f"{holdout.get('mean_rel_error', 0.0) * 100:.1f}%, "
                    f"n={holdout['n']})"
                )
            lines.append(
                f"{profile:<16} {'tune':<12} "
                f"{tune.get('wall_time_s', 0.0):>9.3f} "
                f"{str(tune.get('grid_points', len(tune.get('points', ())))) + ' pts':>18} "
                f"{fit_text}"
            )
        ivf = phases.get("ivf")
        if ivf:
            build = ivf["build"]
            exhaustive = ivf["exhaustive"]
            exh_qps = exhaustive.get("qps")
            rate_text = f"{exh_qps:,.0f} qps" if exh_qps else "-"
            lines.append(
                f"{profile:<16} {'ivf.exhaustive':<12} "
                f"{exhaustive['wall_time_s']:>8.3f} {rate_text:>18} "
                f"(oracle; {build['num_cells']} cells, {build['lut_dtype']} "
                f"LUT, build {build['wall_time_s']:.1f}s)"
            )
            for point in ivf["curve"]:
                qps = point.get("qps")
                rate_text = f"{qps:,.0f} qps" if qps else "-"
                speedup = point.get("speedup")
                speedup_text = f"x{speedup:.1f}" if speedup else "-"
                lines.append(
                    f"{profile:<16} {'ivf.nprobe=' + str(point['nprobe']):<12} "
                    f"{point['wall_time_s']:>9.3f} {rate_text:>18} "
                    f"recall@10 {point['recall_at_10']:.3f} {speedup_text}"
                )
            best = ivf.get("best")
            if best:
                lines.append(
                    f"{profile:<16} {'ivf.best':<12} nprobe={best['nprobe']} "
                    f"x{best['speedup']:.1f} at recall@10 "
                    f"{best['recall_at_10']:.3f} "
                    f"(floor {ivf['recall_floor']:.2f})"
                )
            else:
                lines.append(
                    f"{profile:<16} {'ivf.best':<12} no sweep point reached "
                    f"recall@10 >= {ivf['recall_floor']:.2f}"
                )
    return "\n".join(lines)


def compare_results(old: dict, new: dict) -> str:
    """Per-phase wall-time deltas between two runs (negative = faster).

    When either run carries a ``phases.query.engine`` entry, an extra
    ``scan Mcodes/s`` row compares ADC scan throughput. A run without an
    engine entry borrows the *other* run's measured serial baseline (the
    engine entry records both sides in one process), so a plain run vs a
    ``--workers`` run reads as a serial-vs-engine before/after.

    The two files may come from different schema versions (an old baseline
    vs a fresh run is the normal case). Phases present on only one side are
    skipped with a trailing note naming the phase and both schema versions
    — never a ``KeyError``.
    """
    lines = [f"{'profile':<16} {'phase':<12} {'old_s':>9} {'new_s':>9} {'delta':>8}"]
    old_profiles = old.get("profiles") or {}
    new_profiles = new.get("profiles") or {}
    shared = [p for p in old_profiles if p in new_profiles]
    if not shared:
        return "no profiles in common between the two runs"
    old_version = old.get("schema_version", "?")
    new_version = new.get("schema_version", "?")
    notes: list[str] = []

    for profile in shared:
        old_phases = old_profiles[profile].get("phases") or {}
        new_phases = new_profiles[profile].get("phases") or {}
        for phase in sorted(set(old_phases) | set(new_phases)):
            if phase in old_phases and phase in new_phases:
                continue
            side = "old" if phase in old_phases else "new"
            notes.append(
                f"note: {profile}: phase {phase!r} only in the {side} run "
                f"(schema v{old_version} vs v{new_version}); skipped"
            )
        for phase in _PHASES:
            # An ivf-large profile carries only the ``ivf`` phase; skip the
            # regular rows it never ran.
            if phase not in old_phases or phase not in new_phases:
                continue
            old_wall = old_phases[phase].get("wall_time_s")
            new_wall = new_phases[phase].get("wall_time_s")
            if old_wall is None or new_wall is None:
                continue
            delta = (new_wall - old_wall) / old_wall * 100 if old_wall else float("nan")
            lines.append(
                f"{profile:<16} {phase:<12} {old_wall:>9.3f} {new_wall:>9.3f} "
                f"{delta:>+7.1f}%"
            )
        # Train throughput: prefer the fused figure of the v2 ``train``
        # phase; a v1 run (or one without it) falls back to the reference
        # loop's steps/s, which every schema records.
        def _train_sps(phases: dict) -> float | None:
            fused = (phases.get("train") or {}).get("fused") or {}
            step = phases.get("train_step") or {}
            return fused.get("steps_per_s") or step.get("steps_per_s")

        old_sps, new_sps = _train_sps(old_phases), _train_sps(new_phases)
        if old_sps and new_sps:
            ratio = new_sps / old_sps
            lines.append(
                f"{profile:<16} {'train steps/s':<12} {old_sps:>9.1f} "
                f"{new_sps:>9.1f} {'x' + format(ratio, '.2f'):>8}"
            )
        old_engine = old_phases.get("query", {}).get("engine")
        new_engine = new_phases.get("query", {}).get("engine")
        old_scan = (old_engine or {}).get("scan_codes_per_s") or (
            new_engine or {}
        ).get("serial_scan_codes_per_s")
        new_scan = (new_engine or {}).get("scan_codes_per_s") or (
            old_engine or {}
        ).get("serial_scan_codes_per_s")
        if old_scan and new_scan:
            ratio = new_scan / old_scan
            lines.append(
                f"{profile:<16} {'scan Mcodes/s':<12} {old_scan / 1e6:>9.0f} "
                f"{new_scan / 1e6:>9.0f} {'x' + format(ratio, '.2f'):>8}"
            )
        # Query-encoder rows (schema v7): light-encode speedup and recall
        # delta. A pre-v7 file has no ``query.encoder`` block — one-sided
        # presence is noted and skipped, like a one-sided phase.
        old_enc = (old_phases.get("query") or {}).get("encoder")
        new_enc = (new_phases.get("query") or {}).get("encoder")
        if old_enc and new_enc:
            old_speed = old_enc.get("encode_speedup")
            new_speed = new_enc.get("encode_speedup")
            if old_speed and new_speed:
                lines.append(
                    f"{profile:<16} {'light encode':<12} "
                    f"{'x' + format(old_speed, '.2f'):>9} "
                    f"{'x' + format(new_speed, '.2f'):>9} "
                    f"(recall delta {old_enc.get('recall_delta', 0.0):+.3f} "
                    f"-> {new_enc.get('recall_delta', 0.0):+.3f})"
                )
        elif old_enc or new_enc:
            side = "old" if old_enc else "new"
            notes.append(
                f"note: {profile}: block 'query.encoder' only in the "
                f"{side} run (schema v{old_version} vs v{new_version}); "
                f"skipped"
            )
        # Serving-daemon rows (schema v3): QPS ratio and tail-latency delta.
        # Absent on either side (a pre-v3 file) the rows are simply skipped.
        old_serve = old_phases.get("serve")
        new_serve = new_phases.get("serve")
        if old_serve and new_serve:
            old_qps, new_qps = old_serve.get("qps"), new_serve.get("qps")
            if old_qps and new_qps:
                ratio = new_qps / old_qps
                lines.append(
                    f"{profile:<16} {'serve qps':<12} {old_qps:>9.0f} "
                    f"{new_qps:>9.0f} {'x' + format(ratio, '.2f'):>8}"
                )
            old_p99 = old_serve.get("latency_p99_ms")
            new_p99 = new_serve.get("latency_p99_ms")
            if old_p99 and new_p99:
                delta = (new_p99 - old_p99) / old_p99 * 100
                lines.append(
                    f"{profile:<16} {'serve p99 ms':<12} {old_p99:>9.3f} "
                    f"{new_p99:>9.3f} {delta:>+7.1f}%"
                )
        # Stream rows (schema v5): insert throughput ratio and recall-decay
        # delta at the compaction checkpoints.
        old_stream = old_phases.get("stream")
        new_stream = new_phases.get("stream")
        if old_stream and new_stream:
            old_rate = (old_stream.get("insert") or {}).get("items_per_s")
            new_rate = (new_stream.get("insert") or {}).get("items_per_s")
            if old_rate and new_rate:
                ratio = new_rate / old_rate
                lines.append(
                    f"{profile:<16} {'insert items/s':<12} {old_rate:>9.0f} "
                    f"{new_rate:>9.0f} {'x' + format(ratio, '.2f'):>8}"
                )
            old_decay = (old_stream.get("recall") or {}).get("max_decay")
            new_recall = new_stream.get("recall") or {}
            new_decay = new_recall.get("max_decay")
            if old_decay is not None and new_decay is not None:
                lines.append(
                    f"{profile:<16} {'stream decay':<12} {old_decay:>9.3f} "
                    f"{new_decay:>9.3f} "
                    f"(limit {new_recall.get('decay_limit', 0.0):.2f})"
                )
        # IVF rows (schema v4): tuned-best speedup and its recall@10.
        old_best = (old_phases.get("ivf") or {}).get("best")
        new_best = (new_phases.get("ivf") or {}).get("best")
        if old_best and new_best:
            lines.append(
                f"{profile:<16} {'ivf speedup':<12} "
                f"{'x' + format(old_best['speedup'], '.1f'):>9} "
                f"{'x' + format(new_best['speedup'], '.1f'):>9} "
                f"(recall@10 {old_best['recall_at_10']:.3f} -> "
                f"{new_best['recall_at_10']:.3f})"
            )
        # Tune rows (schema v6): grid size and cost-model fit quality.
        old_tune = old_phases.get("tune")
        new_tune = new_phases.get("tune")
        if old_tune and new_tune:
            old_model = old_tune.get("model") or {}
            new_model = new_tune.get("model") or {}
            old_err = old_model.get("mean_rel_error")
            new_err = new_model.get("mean_rel_error")
            if old_err is not None and new_err is not None:
                old_pts = old_tune.get("grid_points", old_model.get("n_points"))
                new_pts = new_tune.get("grid_points", new_model.get("n_points"))
                lines.append(
                    f"{profile:<16} {'tune fit err':<12} "
                    f"{format(old_err * 100, '.1f') + '%':>9} "
                    f"{format(new_err * 100, '.1f') + '%':>9} "
                    f"({old_pts} -> {new_pts} grid points)"
                )
    lines.extend(notes)
    return "\n".join(lines)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="run_bench",
        description="Time train-step/encode/index-build/query/serve phases "
        "and write BENCH_results.json",
    )
    parser.add_argument(
        "--profile",
        action="append",
        default=None,
        help="dataset profile (repeatable; accepts the -lt suffix; "
        f"default: all of {', '.join(DEFAULT_PROFILES)})",
    )
    parser.add_argument(
        "--quick", action="store_true", help="1 training epoch, capped query loop"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="also time the sharded query engine with this many workers "
        "(recorded under phases.query.engine)",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="engine shard count (default: 2 x workers; implies --workers 1 "
        "when given alone)",
    )
    parser.add_argument(
        "--nprobe", action="append", type=int, default=None,
        help="nprobe sweep point for the ivf-large profile (repeatable; "
        f"default: {', '.join(str(n) for n in DEFAULT_NPROBES)})",
    )
    parser.add_argument(
        "--ivf-items", type=int, default=None,
        help="corpus size of the ivf-large profile (default: "
        f"{IVF_LARGE_ITEMS:,}; --quick: {IVF_LARGE_QUICK_ITEMS:,})",
    )
    parser.add_argument(
        "--ivf-cells", type=int, default=None,
        help="coarse-quantizer cell count for ivf-large (default: sqrt rule)",
    )
    parser.add_argument(
        "--ivf-lut", choices=("float32", "uint8"), default="float32",
        help="ADC lookup-table dtype for ivf-large (uint8 = quantized "
        "tables, 4x smaller scan working set)",
    )
    parser.add_argument(
        "--stream-items", type=int, default=None,
        help="total items streamed through the mutable index in the stream "
        f"phase (default: {STREAM_ITEMS:,}; --quick: {STREAM_QUICK_ITEMS:,})",
    )
    parser.add_argument(
        "--stream-steps", type=int, default=None,
        help="arrival steps of the stream phase (default: "
        f"{STREAM_STEPS}; --quick: {STREAM_QUICK_STEPS})",
    )
    parser.add_argument(
        "--out", default=DEFAULT_RESULTS_PATH,
        help=f"result file (default: {DEFAULT_RESULTS_PATH})",
    )
    parser.add_argument(
        "--compare", nargs=2, metavar=("OLD", "NEW"), default=None,
        help="compare two existing result files instead of running",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point shared by ``benchmarks/run_bench.py`` and ``repro bench``."""
    args = build_arg_parser().parse_args(argv)
    if args.compare is not None:
        print(compare_results(load_results(args.compare[0]),
                              load_results(args.compare[1])))
        return 0
    profiles = args.profile if args.profile else list(DEFAULT_PROFILES)
    for profile in profiles:
        canonical_dataset(profile)  # fail fast on typos before any training
    results = run_bench(
        profiles, quick=args.quick, seed=args.seed,
        workers=args.workers, shards=args.shards,
        nprobes=tuple(args.nprobe) if args.nprobe else None,
        ivf_items=args.ivf_items, ivf_cells=args.ivf_cells,
        ivf_lut=args.ivf_lut,
        stream_items=args.stream_items, stream_steps=args.stream_steps,
    )
    path = write_results(results, args.out)
    print(format_summary(results))
    print(f"[results written to {path}]")
    return 0
