"""The metric catalogue: every metric the system emits, by constant name.

Instrumented code never passes string literals to the registry — it uses
the constants below, and ``docs/metrics.md`` documents exactly this list
(``scripts/check_docs.py`` enforces the correspondence in both
directions). A few metrics are *families*: their documented name ends in
``.<term>`` and concrete emissions substitute a runtime key (e.g. the
per-loss-term means ``train.epoch.loss.total``, ``train.epoch.loss.ce``).
"""

from __future__ import annotations

from dataclasses import dataclass

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


@dataclass(frozen=True)
class MetricSpec:
    """One entry of the metric catalogue.

    ``name`` ending in ``.<term>`` marks a *family*: emitted names share
    the prefix before ``<term>`` and append a runtime-determined key.
    """

    name: str
    kind: str
    unit: str
    emitted_by: str
    description: str

    @property
    def is_family(self) -> bool:
        return self.name.endswith(".<term>")

    @property
    def prefix(self) -> str:
        """For a family spec, the fixed prefix concrete names start with."""
        return self.name[: -len("<term>")]


# --- training (repro.core.trainer, repro.resilience.guards) -----------------
TRAIN_EPOCH_TIME = "train.epoch.time_s"
TRAIN_EPOCH_LOSS_FAMILY = "train.epoch.loss.<term>"
TRAIN_EPOCH_LOSS_PREFIX = "train.epoch.loss."
TRAIN_STEP_TIME = "train.step.time_s"
TRAIN_STEP_LOSS = "train.step.loss"
TRAIN_STEP_GRAD_NORM = "train.step.grad_norm"
TRAIN_STEPS_TOTAL = "train.steps.total"
TRAIN_STEPS_SKIPPED = "train.steps.skipped"
TRAIN_GUARD_ROLLBACKS = "train.guard.rollbacks"
TRAIN_FUSED_SPEEDUP = "train.fused.speedup"
TRAIN_FUSED_LOSS_PARITY = "train.fused.loss_parity"

# --- data loading (repro.data.loader) ---------------------------------------
DATA_BATCH_FETCH_TIME = "data.batch.fetch_time_s"
DATA_BATCHES_TOTAL = "data.batches.total"

# --- retrieval (repro.retrieval.adc / .search / .index / .engine) -----------
ADC_LUT_BUILD_TIME = "adc.lut.build_time_s"
ADC_SCAN_TIME = "adc.scan.time_s"
ADC_SCAN_CODES_PER_S = "adc.scan.codes_per_s"
ENGINE_SHARD_SCAN_TIME = "engine.shard.scan.time_s"
ENGINE_MERGE_TIME = "engine.merge.time_s"
ENGINE_SHARDS_SCANNED = "engine.shards.scanned"
ENGINE_BATCHES_TOTAL = "engine.batches.total"
ENGINE_PARALLEL_BATCHES = "engine.batches.parallel"
ENGINE_POOL_FALLBACKS = "engine.pool.fallbacks"
IVF_BUILD_TIME = "ivf.build.time_s"
IVF_TRAIN_TIME = "ivf.train.time_s"
IVF_ASSIGN_TIME = "ivf.assign.time_s"
IVF_SCAN_TIME = "ivf.scan.time_s"
IVF_LUT_QUANTIZE_TIME = "ivf.lut.quantize_time_s"
IVF_CELLS_PROBED = "ivf.cells.probed"
IVF_CANDIDATES_SCANNED = "ivf.candidates.scanned"
IVF_BATCHES_TOTAL = "ivf.batches.total"
IVF_PROBES_EXPANDED = "ivf.probes.expanded"
INDEX_ENCODE_TIME = "index.encode.time_s"
INDEX_BUILD_TIME = "index.build.time_s"
QUERY_LATENCY = "query.latency_s"
QUERY_BATCHES_TOTAL = "query.batches.total"
QUERY_ITEMS_TOTAL = "query.items.total"
QUERY_LUT_CACHE_HITS = "query.lut.cache.hits"
QUERY_LUT_CACHE_MISSES = "query.lut.cache.misses"
QUERY_ENCODE_TIME = "query.encode.time_s"
SEARCH_EXHAUSTIVE_TIME = "search.exhaustive.time_s"

# --- mutable index (repro.retrieval.mutable) --------------------------------
MUTABLE_ADD_TIME = "mutable.add.time_s"
MUTABLE_ADDS_TOTAL = "mutable.adds.total"
MUTABLE_REMOVES_TOTAL = "mutable.removes.total"
MUTABLE_COMPACT_TIME = "mutable.compact.time_s"
MUTABLE_COMPACTIONS_TOTAL = "mutable.compactions.total"
MUTABLE_SEGMENTS_LIVE = "mutable.segments.live"
MUTABLE_TOMBSTONES_LIVE = "mutable.tombstones.live"
MUTABLE_DRIFT_RATIO = "mutable.drift.ratio"
MUTABLE_REFRESH_FLAGGED = "mutable.refresh.flagged"

# --- serving daemon (repro.serving.daemon / .batcher / .replica) ------------
SERVE_REQUESTS_TOTAL = "serve.requests.total"
SERVE_REQUESTS_OK = "serve.requests.ok"
SERVE_REQUESTS_FAILED = "serve.requests.failed"
SERVE_REQUESTS_SHED = "serve.requests.shed"
SERVE_REQUEST_LATENCY = "serve.request.latency_s"
SERVE_BATCH_SIZE = "serve.batch.size"
SERVE_BATCHES_TOTAL = "serve.batches.total"
SERVE_QUEUE_DEPTH = "serve.queue.depth"
SERVE_CACHE_HITS = "serve.cache.hits"
SERVE_CACHE_MISSES = "serve.cache.misses"
SERVE_CACHE_STALE_SERVED = "serve.cache.stale_served"
SERVE_RETRIES_TOTAL = "serve.retries.total"
SERVE_HEDGES_TOTAL = "serve.hedges.total"
SERVE_FAILOVERS_TOTAL = "serve.failovers.total"
SERVE_BREAKER_OPENS = "serve.breaker.opens"
SERVE_REPLICAS_HEALTHY = "serve.replicas.healthy"
SERVE_DEGRADED_ACTIVE = "serve.degraded.active"
SERVE_DEGRADED_TRANSITIONS = "serve.degraded.transitions"

SPECS: tuple[MetricSpec, ...] = (
    MetricSpec(
        TRAIN_EPOCH_TIME,
        HISTOGRAM,
        "seconds",
        "repro.core.trainer.TrainingSession.run_epoch",
        "Wall time of one full training epoch.",
    ),
    MetricSpec(
        TRAIN_EPOCH_LOSS_FAMILY,
        GAUGE,
        "loss",
        "repro.core.trainer.TrainingSession.run_epoch",
        "Mean of one loss component over the epoch's non-skipped steps; "
        "one gauge per component recorded in the training history "
        "(e.g. train.epoch.loss.total).",
    ),
    MetricSpec(
        TRAIN_STEP_TIME,
        HISTOGRAM,
        "seconds",
        "repro.core.trainer.TrainingSession.run_epoch",
        "Wall time of one optimisation step (forward, backward, clip, "
        "update).",
    ),
    MetricSpec(
        TRAIN_STEP_LOSS,
        HISTOGRAM,
        "loss",
        "repro.core.trainer.TrainingSession.run_epoch",
        "Total combined loss per step (finite values only).",
    ),
    MetricSpec(
        TRAIN_STEP_GRAD_NORM,
        HISTOGRAM,
        "l2-norm",
        "repro.core.trainer.TrainingSession.run_epoch",
        "Global gradient norm per step, before clipping is applied.",
    ),
    MetricSpec(
        TRAIN_STEPS_TOTAL,
        COUNTER,
        "steps",
        "repro.core.trainer.TrainingSession.run_epoch",
        "Optimisation steps attempted.",
    ),
    MetricSpec(
        TRAIN_STEPS_SKIPPED,
        COUNTER,
        "steps",
        "repro.core.trainer.TrainingSession.run_epoch",
        "Steps skipped on a non-finite loss or gradient norm.",
    ),
    MetricSpec(
        TRAIN_GUARD_ROLLBACKS,
        COUNTER,
        "events",
        "repro.resilience.guards.GuardedTrainer.fit",
        "Guard interventions: epoch rollbacks with LR backoff.",
    ),
    MetricSpec(
        TRAIN_FUSED_SPEEDUP,
        GAUGE,
        "ratio",
        "repro.obs.bench.bench_profile",
        "Fused-over-reference training throughput multiplier "
        "(fused steps/s divided by reference steps/s) measured by the "
        "benchmark's train phase.",
    ),
    MetricSpec(
        TRAIN_FUSED_LOSS_PARITY,
        GAUGE,
        "bool",
        "repro.obs.bench.bench_profile",
        "1 when the fused training run's final epoch-mean loss matches the "
        "reference run within the documented tolerance "
        "(phases.train.parity_rtol), else 0.",
    ),
    MetricSpec(
        DATA_BATCH_FETCH_TIME,
        HISTOGRAM,
        "seconds",
        "repro.data.loader.DataLoader.__iter__",
        "Time to materialise one mini-batch (index + copy) — the loader "
        "stall seen by the training loop.",
    ),
    MetricSpec(
        DATA_BATCHES_TOTAL,
        COUNTER,
        "batches",
        "repro.data.loader.DataLoader.__iter__",
        "Mini-batches yielded.",
    ),
    MetricSpec(
        ADC_LUT_BUILD_TIME,
        HISTOGRAM,
        "seconds",
        "repro.retrieval.adc.adc_distances, "
        "repro.retrieval.engine.QueryEngine.search",
        "Time to build the per-query M x K inner-product lookup tables.",
    ),
    MetricSpec(
        ADC_SCAN_TIME,
        HISTOGRAM,
        "seconds",
        "repro.retrieval.adc.adc_distances, "
        "repro.retrieval.engine.QueryEngine.search",
        "Time to score every database item against the lookup tables "
        "(excludes ranking; the engine counts gather + distance assembly, "
        "summed over shards in-process, phase wall under the pool).",
    ),
    MetricSpec(
        ADC_SCAN_CODES_PER_S,
        HISTOGRAM,
        "codes/second",
        "repro.retrieval.adc.adc_distances, "
        "repro.retrieval.engine.QueryEngine.search",
        "Scan throughput: table lookups performed per second "
        "(n_queries x n_db x M / scan time). Serial and engine scans feed "
        "the same histogram, so speedups read straight off one metric.",
    ),
    MetricSpec(
        ENGINE_SHARD_SCAN_TIME,
        HISTOGRAM,
        "seconds",
        "repro.retrieval.engine.QueryEngine.search",
        "In-kernel scan time of one shard (gather-accumulate, distance "
        "assembly, and per-shard top-k), excluding pool dispatch.",
    ),
    MetricSpec(
        ENGINE_MERGE_TIME,
        HISTOGRAM,
        "seconds",
        "repro.retrieval.engine.QueryEngine.search",
        "Time to merge per-shard candidates into the global tie-stable "
        "top-k, including the exact float64 rerank when enabled.",
    ),
    MetricSpec(
        ENGINE_SHARDS_SCANNED,
        COUNTER,
        "shards",
        "repro.retrieval.engine.QueryEngine.search",
        "Shard scans performed across all engine batches (in-process "
        "dispatch coalesces the shards into one scan).",
    ),
    MetricSpec(
        ENGINE_BATCHES_TOTAL,
        COUNTER,
        "batches",
        "repro.retrieval.engine.QueryEngine.search",
        "Query batches served by the sharded engine.",
    ),
    MetricSpec(
        ENGINE_PARALLEL_BATCHES,
        COUNTER,
        "batches",
        "repro.retrieval.engine.QueryEngine.search",
        "Engine batches dispatched to the multiprocessing pool (the rest "
        "ran in-process because parallelism could not pay).",
    ),
    MetricSpec(
        ENGINE_POOL_FALLBACKS,
        COUNTER,
        "batches",
        "repro.retrieval.engine.QueryEngine.search",
        "Engine batches whose pool dispatch timed out or crashed and were "
        "re-served by the in-process serial scan (the pool is rebuilt on "
        "the next parallel batch).",
    ),
    MetricSpec(
        SERVE_REQUESTS_TOTAL,
        COUNTER,
        "requests",
        "repro.serving.daemon.ServingDaemon.submit",
        "Client requests accepted by the serving daemon.",
    ),
    MetricSpec(
        SERVE_REQUESTS_OK,
        COUNTER,
        "requests",
        "repro.serving.daemon.ServingDaemon.submit",
        "Requests answered successfully (including cached and degraded "
        "answers).",
    ),
    MetricSpec(
        SERVE_REQUESTS_FAILED,
        COUNTER,
        "requests",
        "repro.serving.daemon.ServingDaemon.submit",
        "Requests that exhausted every retry, failover, and degraded "
        "fallback and returned an error to the client.",
    ),
    MetricSpec(
        SERVE_REQUESTS_SHED,
        COUNTER,
        "requests",
        "repro.serving.daemon.ServingDaemon.submit",
        "Requests rejected at admission because the request queue was at "
        "its backpressure limit.",
    ),
    MetricSpec(
        SERVE_REQUEST_LATENCY,
        HISTOGRAM,
        "seconds",
        "repro.serving.daemon.ServingDaemon.submit",
        "End-to-end latency of one served request: enqueue to answer, "
        "including batching delay, retries, and failover.",
    ),
    MetricSpec(
        SERVE_BATCH_SIZE,
        HISTOGRAM,
        "requests",
        "repro.serving.batcher.MicroBatcher",
        "Number of client requests coalesced into one engine scan.",
    ),
    MetricSpec(
        SERVE_BATCHES_TOTAL,
        COUNTER,
        "batches",
        "repro.serving.batcher.MicroBatcher",
        "Micro-batches dispatched to the replica set.",
    ),
    MetricSpec(
        SERVE_QUEUE_DEPTH,
        HISTOGRAM,
        "requests",
        "repro.serving.daemon.ServingDaemon.submit",
        "Request-queue depth observed at each admission — the daemon's "
        "instantaneous backlog.",
    ),
    MetricSpec(
        SERVE_CACHE_HITS,
        COUNTER,
        "requests",
        "repro.serving.daemon.ServingDaemon.submit",
        "Requests answered from a fresh result-cache entry.",
    ),
    MetricSpec(
        SERVE_CACHE_MISSES,
        COUNTER,
        "requests",
        "repro.serving.daemon.ServingDaemon.submit",
        "Requests that missed the result cache and went to the engine.",
    ),
    MetricSpec(
        SERVE_CACHE_STALE_SERVED,
        COUNTER,
        "requests",
        "repro.serving.daemon.ServingDaemon.submit",
        "Requests answered from an expired cache entry while the daemon "
        "was degraded (stale-while-degraded).",
    ),
    MetricSpec(
        SERVE_RETRIES_TOTAL,
        COUNTER,
        "attempts",
        "repro.serving.daemon.ServingDaemon",
        "Scan attempts beyond the first, issued after a failure or "
        "deadline with exponential backoff and jitter.",
    ),
    MetricSpec(
        SERVE_HEDGES_TOTAL,
        COUNTER,
        "attempts",
        "repro.serving.daemon.ServingDaemon",
        "Hedged scans: a duplicate attempt raced against a straggler on a "
        "different replica (first answer wins).",
    ),
    MetricSpec(
        SERVE_FAILOVERS_TOTAL,
        COUNTER,
        "events",
        "repro.serving.daemon.ServingDaemon",
        "Batches whose answer came from a different replica than the one "
        "first attempted.",
    ),
    MetricSpec(
        SERVE_BREAKER_OPENS,
        COUNTER,
        "events",
        "repro.serving.breaker.CircuitBreaker",
        "Circuit-breaker transitions into the open state (a replica "
        "quarantined after consecutive failures).",
    ),
    MetricSpec(
        SERVE_REPLICAS_HEALTHY,
        GAUGE,
        "replicas",
        "repro.serving.replica.ReplicaSet",
        "Replicas currently believed healthy by heartbeats and breakers.",
    ),
    MetricSpec(
        SERVE_DEGRADED_ACTIVE,
        GAUGE,
        "bool",
        "repro.serving.daemon.ServingDaemon",
        "1 while the daemon is serving in a degraded mode (overload or "
        "replica loss), else 0.",
    ),
    MetricSpec(
        SERVE_DEGRADED_TRANSITIONS,
        COUNTER,
        "events",
        "repro.serving.daemon.ServingDaemon",
        "Degraded-mode entries and exits (each direction counts one).",
    ),
    MetricSpec(
        IVF_BUILD_TIME,
        HISTOGRAM,
        "seconds",
        "repro.retrieval.ivf.IVFIndex.build",
        "Total IVF construction time: coarse-quantizer training, cell "
        "assignment, and the inverted-list layout.",
    ),
    MetricSpec(
        IVF_TRAIN_TIME,
        HISTOGRAM,
        "seconds",
        "repro.retrieval.ivf.IVFIndex.build",
        "Coarse-quantizer k-means training time (zero when prebuilt "
        "centroids are supplied).",
    ),
    MetricSpec(
        IVF_ASSIGN_TIME,
        HISTOGRAM,
        "seconds",
        "repro.retrieval.ivf.IVFIndex.build",
        "Time to assign every database item to its nearest cell and lay "
        "out the contiguous inverted lists (streams reconstructions in "
        "chunks).",
    ),
    MetricSpec(
        IVF_SCAN_TIME,
        HISTOGRAM,
        "seconds",
        "repro.retrieval.ivf.IVFIndex.search_with_distances",
        "Wall time of one IVF query batch: centroid probe scan, candidate "
        "gather-scan over the probed cells, and the candidate rerank.",
    ),
    MetricSpec(
        IVF_LUT_QUANTIZE_TIME,
        HISTOGRAM,
        "seconds",
        "repro.retrieval.ivf.IVFIndex.search_with_distances",
        "Time spent quantizing per-query lookup tables to uint8 within a "
        "batch (only observed with lut_dtype='uint8').",
    ),
    MetricSpec(
        IVF_CELLS_PROBED,
        HISTOGRAM,
        "cells",
        "repro.retrieval.ivf.IVFIndex.search_with_distances",
        "Inverted lists probed per query — nprobe, unless probe expansion "
        "had to widen the set to fill k.",
    ),
    MetricSpec(
        IVF_CANDIDATES_SCANNED,
        HISTOGRAM,
        "codes",
        "repro.retrieval.ivf.IVFIndex.search_with_distances",
        "Database items scored per query (the probed cells' total size) — "
        "divide by n_db for the realised pruning fraction.",
    ),
    MetricSpec(
        IVF_BATCHES_TOTAL,
        COUNTER,
        "batches",
        "repro.retrieval.ivf.IVFIndex.search_with_distances",
        "Query batches served through the IVF layer.",
    ),
    MetricSpec(
        IVF_PROBES_EXPANDED,
        COUNTER,
        "queries",
        "repro.retrieval.ivf.IVFIndex.search_with_distances",
        "Queries whose probed cells held fewer than k candidates and had "
        "their probe set widened in centroid-distance order (empty or "
        "tiny cells make this reachable).",
    ),
    MetricSpec(
        INDEX_ENCODE_TIME,
        HISTOGRAM,
        "seconds",
        "repro.retrieval.index.QuantizedIndex.build",
        "Time to encode database items into codeword ids (only observed "
        "when ``build`` actually encodes; supplied codes skip it).",
    ),
    MetricSpec(
        INDEX_BUILD_TIME,
        HISTOGRAM,
        "seconds",
        "repro.retrieval.index.QuantizedIndex.build",
        "Total index construction time (encode + reconstruction norms).",
    ),
    MetricSpec(
        QUERY_LATENCY,
        HISTOGRAM,
        "seconds",
        "repro.retrieval.index.QuantizedIndex.search",
        "Per-query latency of ADC search (batch wall time spread over the "
        "batch's queries; single-query calls give exact per-query "
        "latency).",
    ),
    MetricSpec(
        QUERY_BATCHES_TOTAL,
        COUNTER,
        "batches",
        "repro.retrieval.index.QuantizedIndex.search",
        "Search calls served.",
    ),
    MetricSpec(
        QUERY_ITEMS_TOTAL,
        COUNTER,
        "queries",
        "repro.retrieval.index.QuantizedIndex.search",
        "Individual queries served across all search calls.",
    ),
    MetricSpec(
        QUERY_LUT_CACHE_HITS,
        COUNTER,
        "queries",
        "repro.retrieval.lut_cache.LUTCache.tables",
        "Query rows whose ADC lookup table was served from the cross-query "
        "LUT cache instead of being rebuilt (repeated or near-duplicate "
        "queries inside and across micro-batches).",
    ),
    MetricSpec(
        QUERY_LUT_CACHE_MISSES,
        COUNTER,
        "queries",
        "repro.retrieval.lut_cache.LUTCache.tables",
        "Query rows whose ADC lookup table had to be freshly built and was "
        "inserted into the cross-query LUT cache.",
    ),
    MetricSpec(
        QUERY_ENCODE_TIME,
        HISTOGRAM,
        "seconds",
        "repro.serving.daemon.ServingDaemon.submit",
        "Time to encode one request's raw features into query embeddings "
        "before search — the full backbone+DSQ path or the distilled light "
        "encoder, whichever the request selected.",
    ),
    MetricSpec(
        SEARCH_EXHAUSTIVE_TIME,
        HISTOGRAM,
        "seconds",
        "repro.retrieval.search.exhaustive_search",
        "Wall time of one exhaustive (uncompressed) search call — the "
        "reference point ADC speedups are measured against.",
    ),
    MetricSpec(
        MUTABLE_ADD_TIME,
        HISTOGRAM,
        "seconds",
        "repro.retrieval.mutable.MutableIndex.add",
        "Wall time of one add batch: encode, norm computation, segment "
        "seal, and the generation swap.",
    ),
    MetricSpec(
        MUTABLE_ADDS_TOTAL,
        COUNTER,
        "items",
        "repro.retrieval.mutable.MutableIndex.add",
        "Vectors appended across all add batches.",
    ),
    MetricSpec(
        MUTABLE_REMOVES_TOTAL,
        COUNTER,
        "items",
        "repro.retrieval.mutable.MutableIndex.remove",
        "Rows tombstoned across all remove calls.",
    ),
    MetricSpec(
        MUTABLE_COMPACT_TIME,
        HISTOGRAM,
        "seconds",
        "repro.retrieval.mutable.MutableIndex.compact",
        "Wall time of one compaction: merging live rows of every segment "
        "into a fresh base, rebuilding the attached engine/IVF layout, and "
        "swapping the generation. The bench's compaction pause "
        "percentiles read this distribution.",
    ),
    MetricSpec(
        MUTABLE_COMPACTIONS_TOTAL,
        COUNTER,
        "compactions",
        "repro.retrieval.mutable.MutableIndex.compact",
        "Completed compactions.",
    ),
    MetricSpec(
        MUTABLE_SEGMENTS_LIVE,
        GAUGE,
        "segments",
        "repro.retrieval.mutable.MutableIndex",
        "Sealed segments (base included) in the current generation.",
    ),
    MetricSpec(
        MUTABLE_TOMBSTONES_LIVE,
        GAUGE,
        "items",
        "repro.retrieval.mutable.MutableIndex",
        "Tombstoned rows awaiting compaction in the current generation.",
    ),
    MetricSpec(
        MUTABLE_DRIFT_RATIO,
        GAUGE,
        "ratio",
        "repro.retrieval.mutable.MutableIndex.add",
        "Mean quantization error of the latest add batch relative to the "
        "drift baseline (first batch unless set explicitly) — rises as "
        "the arriving distribution drifts away from what the codebooks "
        "were trained on.",
    ),
    MetricSpec(
        MUTABLE_REFRESH_FLAGGED,
        COUNTER,
        "flags",
        "repro.retrieval.mutable.MutableIndex.add",
        "Times the drift ratio crossed the refresh threshold from below — "
        "each crossing is a signal to fine-tune/refresh the DSQ codebooks "
        "and rebuild.",
    ),
)

METRIC_NAMES = frozenset(spec.name for spec in SPECS)
FAMILY_PREFIXES = tuple(spec.prefix for spec in SPECS if spec.is_family)


def is_known_metric(name: str) -> bool:
    """True when ``name`` is catalogued, exactly or via a family prefix."""
    if name in METRIC_NAMES:
        return True
    return any(name.startswith(prefix) and len(name) > len(prefix)
               for prefix in FAMILY_PREFIXES)
