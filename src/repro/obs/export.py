"""JSONL export/import for metrics snapshots and traces.

One record per line, plain ``json`` module, UTF-8. Exports are
self-describing: the first line is a header record carrying the schema
version and whatever run metadata the caller attaches, so a file can be
interpreted without its producing process.
"""

from __future__ import annotations

import json
import os
from typing import Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

EXPORT_SCHEMA_VERSION = 1


def write_jsonl(path: str, records: Iterable[dict]) -> int:
    """Write records one-per-line; returns how many were written."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    written = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            written += 1
    return written


def read_jsonl(path: str) -> list[dict]:
    """Read a JSONL file back into a record list (blank lines skipped)."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _header(stream: str, run: dict | None) -> dict:
    record = {"schema_version": EXPORT_SCHEMA_VERSION, "stream": stream}
    if run:
        record["run"] = dict(run)
    return record


def export_metrics(registry: MetricsRegistry, path: str, run: dict | None = None) -> int:
    """Write a registry snapshot as JSONL; returns records written."""
    records = [_header("metrics", run)]
    records.extend(registry.records())
    return write_jsonl(path, records)


def export_spans(tracer: Tracer, path: str, run: dict | None = None) -> int:
    """Write a tracer's finished spans as JSONL; returns records written."""
    header = _header("trace", run)
    header["wall_epoch"] = tracer.wall_epoch
    records = [header]
    records.extend(tracer.records())
    return write_jsonl(path, records)
