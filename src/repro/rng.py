"""Seeded random-number-generator management.

Every stochastic component in the repository (data synthesis, weight
initialisation, dropout, sampling baselines) receives an explicit
:class:`numpy.random.Generator`. ``spawn`` derives independent child
generators from a parent seed so that, e.g., the four ensemble members of
§III-E get different initialisations while the experiment as a whole stays
reproducible from one integer.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.Generator) -> np.random.Generator:
    """Return a Generator for ``seed``; pass through existing generators."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(int(seed))


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators."""
    if count < 1:
        raise ValueError("count must be at least 1")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]
