"""Deep quantization baselines: DPQ and KDE (Table III).

Both learn discrete codes end to end with softmax relaxations, but neither
is long-tail aware — they use plain cross-entropy, a single model, and no
skip connections, which is exactly what LightLT improves on.

- **DPQ** (Chen, Li & Sun): differentiable *product* quantization — the
  embedding is split into subspaces, each quantized against its own
  codebook with a straight-through softmax.
- **KDE** (Chen, Min & Sun): K-way D-dimensional discrete codes —
  *additive* composition of codewords selected by dot-product attention
  over independent codebooks.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import QuantizerMixin, RetrievalMethod
from repro.core.quantize import quantize_step
from repro.core.warmstart import residual_kmeans_codebooks
from repro.data.datasets import Split
from repro.data.loader import DataLoader
from repro.nn import (
    AdamW,
    CosineAnnealingLR,
    Linear,
    Module,
    Parameter,
    ResidualMLP,
    Tensor,
    concat,
    cross_entropy,
    no_grad,
)
from repro.nn import init as nn_init
from repro.rng import make_rng, spawn


class _DeepQuantizerBase(QuantizerMixin, RetrievalMethod):
    """Shared trainer for the two deep quantization baselines."""

    supervised = True

    def __init__(
        self,
        num_codebooks: int = 4,
        num_codewords: int = 64,
        hidden: int = 64,
        epochs: int = 15,
        batch_size: int = 64,
        learning_rate: float = 2e-3,
        weight_decay: float = 1e-2,
        temperature: float = 1.0,
        reconstruction_weight: float = 1.0,
        seed: int = 0,
    ):
        self.num_codebooks = num_codebooks
        self.num_codewords = num_codewords
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.temperature = temperature
        self.reconstruction_weight = reconstruction_weight
        self.seed = seed
        self.backbone: ResidualMLP | None = None
        self.classifier: Linear | None = None
        self._codebook_params: list[Parameter] = []

    # Subclass hooks -----------------------------------------------------
    def _init_codebooks(self, train: Split, rng: np.random.Generator) -> None:
        raise NotImplementedError

    def _quantize(self, embeddings: Tensor) -> tuple[np.ndarray, Tensor]:
        """Return (codes, reconstruction) for a batch of embeddings."""
        raise NotImplementedError

    def codebooks(self) -> np.ndarray:
        raise NotImplementedError

    # Training -----------------------------------------------------------
    def fit(self, train: Split, num_classes: int) -> "_DeepQuantizerBase":
        rng = make_rng(self.seed)
        net_rng, head_rng, cb_rng, loader_rng = spawn(rng, 4)
        self.backbone = ResidualMLP(train.dim, [self.hidden], net_rng)
        self.classifier = Linear(train.dim, num_classes, head_rng)
        self._init_codebooks(train, cb_rng)
        params = (
            self.backbone.parameters()
            + self.classifier.parameters()
            + self._codebook_params
        )
        optimizer = AdamW(params, lr=self.learning_rate, weight_decay=self.weight_decay)
        loader = DataLoader(train, batch_size=self.batch_size, rng=loader_rng)
        scheduler = CosineAnnealingLR(optimizer, max(len(loader) * self.epochs, 1))
        self.backbone.train()
        for _ in range(self.epochs):
            for features, labels in loader:
                optimizer.zero_grad()
                embeddings = self.backbone(Tensor(features))
                _, reconstruction = self._quantize(embeddings)
                logits = self.classifier(reconstruction)
                loss = cross_entropy(logits, labels)
                if self.reconstruction_weight > 0:
                    diff = embeddings.detach() - reconstruction
                    loss = loss + (diff * diff).sum(axis=1).mean() * self.reconstruction_weight
                loss.backward()
                optimizer.step()
                scheduler.step()
        self.backbone.eval()
        return self

    # Inference ----------------------------------------------------------
    def embed_queries(self, queries: np.ndarray) -> np.ndarray:
        if self.backbone is None:
            raise RuntimeError("fit must be called before use")
        self.backbone.eval()
        blocks = []
        with no_grad():
            for start in range(0, len(queries), 512):
                batch = Tensor(np.asarray(queries[start : start + 512], dtype=np.float64))
                blocks.append(self.backbone(batch).data)
        return np.concatenate(blocks, axis=0)

    def encode(self, features: np.ndarray) -> np.ndarray:
        embeddings = self.embed_queries(features)
        with no_grad():
            codes, _ = self._quantize(Tensor(embeddings))
        return codes


class DPQ(_DeepQuantizerBase):
    """Differentiable product quantization.

    The embedding splits into ``M`` contiguous subspaces; each has a
    ``(K, d/M)`` codebook selected by straight-through tempered softmax.
    Sub-codebooks are stored zero-padded in the ``(M, K, d)`` layout so the
    shared ADC kernel applies.
    """

    name = "DPQ"

    def _init_codebooks(self, train: Split, rng: np.random.Generator) -> None:
        dim = train.dim
        bounds = np.linspace(0, dim, self.num_codebooks + 1).astype(int)
        self._slices = [slice(a, b) for a, b in zip(bounds[:-1], bounds[1:])]
        self._dim = dim
        child_rngs = spawn(rng, self.num_codebooks)
        self._codebook_params = [
            Parameter(
                nn_init.normal(
                    (self.num_codewords, sub.stop - sub.start), child, std=0.5
                ),
                name=f"codebook{m}",
            )
            for m, (sub, child) in enumerate(zip(self._slices, child_rngs))
        ]

    def _quantize(self, embeddings: Tensor) -> tuple[np.ndarray, Tensor]:
        codes = np.zeros((len(embeddings), self.num_codebooks), dtype=np.int64)
        pieces = []
        for m, sub in enumerate(self._slices):
            block = embeddings[:, sub]
            step = quantize_step(
                block,
                self._codebook_params[m],
                temperature=self.temperature,
                similarity="neg_l2",
            )
            codes[:, m] = step.codes
            pieces.append(step.decoded)
        return codes, concat(pieces, axis=1)

    def codebooks(self) -> np.ndarray:
        stacked = np.zeros((self.num_codebooks, self.num_codewords, self._dim))
        for m, sub in enumerate(self._slices):
            stacked[m, :, sub] = self._codebook_params[m].data
        return stacked


class KDE(_DeepQuantizerBase):
    """K-way D-dimensional discrete codes (additive composition).

    ``M`` independent full-dimensional codebooks; each selects a codeword by
    dot-product similarity with straight-through softmax, and the selected
    codewords are summed. k-means warm-starting mirrors the original's
    embedding-table initialisation.
    """

    name = "KDE"

    def _init_codebooks(self, train: Split, rng: np.random.Generator) -> None:
        # Initialise additively: stage-wise k-means scaled down so the sum
        # of M codewords starts near the data scale.
        initial = residual_kmeans_codebooks(
            train.features - train.features.mean(axis=0),
            self.num_codebooks,
            min(self.num_codewords, len(train)),
            rng=rng,
        )
        padded = np.zeros((self.num_codebooks, self.num_codewords, train.dim))
        padded[:, : initial.shape[1]] = initial
        self._codebook_params = [
            Parameter(padded[m].copy(), name=f"codebook{m}")
            for m in range(self.num_codebooks)
        ]

    def _quantize(self, embeddings: Tensor) -> tuple[np.ndarray, Tensor]:
        codes = np.zeros((len(embeddings), self.num_codebooks), dtype=np.int64)
        reconstruction: Tensor | None = None
        residual = embeddings
        for m, codebook in enumerate(self._codebook_params):
            step = quantize_step(
                residual,
                codebook,
                temperature=self.temperature,
                similarity="neg_l2",
            )
            codes[:, m] = step.codes
            reconstruction = (
                step.decoded if reconstruction is None else reconstruction + step.decoded
            )
            residual = embeddings - reconstruction
        return codes, reconstruction

    def codebooks(self) -> np.ndarray:
        return np.stack([p.data for p in self._codebook_params], axis=0)
