"""Common interface for all retrieval baselines (Tables II and III).

Every method — shallow or deep, hashing or quantization — implements
:class:`RetrievalMethod`: fit on the long-tail training split, then rank a
database for a set of queries. Two mixins supply the ranking machinery:

- :class:`BinaryHashMixin` for binarized-hash methods (±1 codes, symmetric
  Hamming ranking);
- :class:`QuantizerMixin` for quantization methods (codeword ids, ADC
  asymmetric ranking as in §IV).

The paper fixes the code budget at 32 bits for every method (§V-A4);
hashers use ``num_bits`` and quantizers ``M × log2 K`` accordingly.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.data.datasets import RetrievalDataset, Split
from repro.retrieval.adc import adc_distances
from repro.retrieval.metrics import mean_average_precision
from repro.retrieval.search import hamming_distances, rank_by_distance


class RetrievalMethod(abc.ABC):
    """A trainable compact-code retrieval method."""

    #: Short display name used in benchmark tables.
    name: str = "method"
    #: Whether the method uses labels (supervised) during fit.
    supervised: bool = False

    @abc.abstractmethod
    def fit(self, train: Split, num_classes: int) -> "RetrievalMethod":
        """Learn the method's parameters from the long-tail training split."""

    @abc.abstractmethod
    def rank(self, queries: np.ndarray, database: np.ndarray) -> np.ndarray:
        """Ranked database indices ``(n_q, n_db)`` for each query row."""


class BinaryHashMixin:
    """Symmetric Hamming ranking for methods producing ±1 binary codes.

    Subclasses implement :meth:`hash` returning ``(n, num_bits)`` arrays
    with entries in {-1, +1}.
    """

    def hash(self, features: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def rank(self, queries: np.ndarray, database: np.ndarray) -> np.ndarray:
        query_codes = self.hash(queries)
        db_codes = self.hash(database)
        return rank_by_distance(hamming_distances(query_codes, db_codes))


class QuantizerMixin:
    """Asymmetric ADC ranking for methods producing codeword-id codes.

    Subclasses implement :meth:`encode` returning ``(n, M)`` id arrays and
    :meth:`codebooks` returning the ``(M, K, d')`` tables, plus
    :meth:`embed_queries` mapping raw queries into the codebook space
    (identity for shallow quantizers, the backbone for deep ones).
    """

    def encode(self, features: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def codebooks(self) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def embed_queries(self, queries: np.ndarray) -> np.ndarray:
        return np.asarray(queries, dtype=np.float64)

    def rank(self, queries: np.ndarray, database: np.ndarray) -> np.ndarray:
        codes = self.encode(database)
        distances = adc_distances(self.embed_queries(queries), codes, self.codebooks())
        return rank_by_distance(distances)


def sign_codes(projections: np.ndarray) -> np.ndarray:
    """±1 codes from real projections; zeros map to +1 deterministically."""
    return np.where(projections >= 0, 1.0, -1.0)


def evaluate_method(method: RetrievalMethod, dataset: RetrievalDataset) -> float:
    """Fit on the train split and score MAP on the query/database splits."""
    method.fit(dataset.train, dataset.num_classes)
    ranked = method.rank(dataset.query.features, dataset.database.features)
    return mean_average_precision(
        dataset.database.labels[ranked], dataset.query.labels
    )


def pairwise_similarity_labels(labels: np.ndarray) -> np.ndarray:
    """±1 pairwise similarity matrix ``S_ij = 1 iff y_i == y_j``.

    The supervision signal shared by the pairwise-loss methods (SDH,
    COSDISH, DPSH, HashNet, DSDH).
    """
    labels = np.asarray(labels)
    return np.where(labels[:, None] == labels[None, :], 1.0, -1.0)
