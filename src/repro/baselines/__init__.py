"""``repro.baselines`` — the comparison methods of Tables II and III.

Shallow hashes (LSH, PCAH, ITQ, KNNH), shallow supervised hashes (SDH,
COSDISH, FastHash, FSSH), shallow quantizers (PQ, OPQ, RVQ, SCDH), deep
hashes (DPSH, HashNet, DSDH, CSQ), deep quantizers (DPQ, KDE), the
long-tail-aware LTHNet, and adapters exposing LightLT through the same
interface.

``image_baselines`` / ``text_baselines`` return the per-modality method
lists exactly as the paper's tables group them.
"""

from repro.baselines.adapters import LightLTEnsembleMethod, LightLTMethod
from repro.baselines.base import (
    BinaryHashMixin,
    QuantizerMixin,
    RetrievalMethod,
    evaluate_method,
    pairwise_similarity_labels,
    sign_codes,
)
from repro.baselines.deep_base import (
    DeepHashBase,
    HashNetwork,
    pairwise_logistic_loss,
    quantization_penalty,
)
from repro.baselines.deep_hash import CSQ, DPSH, DSDH, HashNet, hadamard_hash_centers
from repro.baselines.deep_quant import DPQ, KDE
from repro.baselines.dtq import DTQ
from repro.baselines.lthnet import LTHNet
from repro.baselines.pq import OPQ, PQ, RVQ, SCDH
from repro.baselines.shallow_hash import ITQ, KNNH, LSH, PCAH
from repro.baselines.supervised_hash import COSDISH, FSSH, SDH, FastHash


def image_baselines(seed: int = 0, fast: bool = False) -> list[RetrievalMethod]:
    """The 14 baselines of Table II in the paper's row order.

    ``fast=True`` trims training epochs for benchmark runs.
    """
    deep_kwargs = {
        "seed": seed,
        "epochs": 10 if fast else 25,
        "learning_rate": 5e-3,
    }
    return [
        LSH(seed=seed),
        PCAH(),
        ITQ(seed=seed),
        KNNH(seed=seed),
        SDH(seed=seed),
        COSDISH(seed=seed),
        FastHash(seed=seed),
        FSSH(seed=seed),
        SCDH(seed=seed),
        DPSH(**deep_kwargs),
        HashNet(**deep_kwargs),
        DSDH(**deep_kwargs),
        CSQ(**deep_kwargs),
        LTHNet(**deep_kwargs),
    ]


def text_baselines(seed: int = 0, fast: bool = False) -> list[RetrievalMethod]:
    """The 5 baselines of Table III in the paper's row order."""
    quant_kwargs = {"seed": seed, "epochs": 8 if fast else 15}
    return [
        LSH(seed=seed),
        PQ(seed=seed),
        DPQ(**quant_kwargs),
        KDE(**quant_kwargs),
        LTHNet(seed=seed, epochs=10 if fast else 25, learning_rate=5e-3),
    ]


__all__ = [
    "BinaryHashMixin",
    "COSDISH",
    "CSQ",
    "DeepHashBase",
    "DPQ",
    "DPSH",
    "DTQ",
    "DSDH",
    "FSSH",
    "FastHash",
    "HashNet",
    "HashNetwork",
    "ITQ",
    "KDE",
    "KNNH",
    "LSH",
    "LTHNet",
    "LightLTEnsembleMethod",
    "LightLTMethod",
    "OPQ",
    "PCAH",
    "PQ",
    "QuantizerMixin",
    "RVQ",
    "RetrievalMethod",
    "SCDH",
    "SDH",
    "evaluate_method",
    "hadamard_hash_centers",
    "image_baselines",
    "pairwise_logistic_loss",
    "pairwise_similarity_labels",
    "quantization_penalty",
    "sign_codes",
    "text_baselines",
]
