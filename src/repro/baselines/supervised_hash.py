"""Shallow *supervised* hashing baselines: SDH, COSDISH, FastHash, FSSH.

Each learns ``num_bits`` binary codes using the class labels of the
long-tail training split and a linear (or boosted-stump) out-of-sample
hash function. The implementations follow each paper's core optimisation
idea at reproduction scale; simplifications are noted per class.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    BinaryHashMixin,
    RetrievalMethod,
    pairwise_similarity_labels,
    sign_codes,
)
from repro.data.datasets import Split
from repro.data.transforms import center
from repro.nn.functional import one_hot
from repro.rng import make_rng


def _ridge_solve(features: np.ndarray, targets: np.ndarray, ridge: float) -> np.ndarray:
    """Closed-form ridge regression weights ``(X'X + λI)^{-1} X'T``."""
    gram = features.T @ features + ridge * np.eye(features.shape[1])
    return np.linalg.solve(gram, features.T @ targets)


class SDH(BinaryHashMixin, RetrievalMethod):
    """Supervised discrete hashing (Shen et al.).

    Alternates three closed-form/discrete steps: a classifier ``W`` from
    codes to labels (ridge), a hash projection ``P`` from features to codes
    (ridge), and the discrete code update
    ``B = sign(Y Wᵀ + ν X P)`` — the G-step of the original DCC solver with
    single-pass coordinate updates.
    """

    name = "SDH"
    supervised = True

    def __init__(self, num_bits: int = 32, iterations: int = 10, ridge: float = 1.0, nu: float = 1e-2, seed: int = 0):
        self.num_bits = num_bits
        self.iterations = iterations
        self.ridge = ridge
        self.nu = nu
        self.seed = seed
        self._projection: np.ndarray | None = None
        self._mean: np.ndarray | None = None

    def fit(self, train: Split, num_classes: int) -> "SDH":
        features, mean = center(train.features)
        self._mean = mean
        labels = one_hot(train.labels, num_classes)
        rng = make_rng(self.seed)
        codes = sign_codes(rng.normal(size=(len(features), self.num_bits)))
        projection = _ridge_solve(features, codes, self.ridge)
        for _ in range(self.iterations):
            classifier = _ridge_solve(codes, labels, self.ridge)
            codes = sign_codes(labels @ classifier.T + self.nu * features @ projection)
            projection = _ridge_solve(features, codes, self.ridge)
        self._projection = projection
        return self

    def hash(self, features: np.ndarray) -> np.ndarray:
        if self._projection is None or self._mean is None:
            raise RuntimeError("fit must be called before hash")
        return sign_codes((features - self._mean) @ self._projection)


class COSDISH(BinaryHashMixin, RetrievalMethod):
    """Column-sampling discrete supervised hashing (Kang et al., simplified).

    Each round samples a column block of the pairwise similarity matrix and
    updates the sampled items' codes to agree with their similar items and
    disagree with dissimilar ones (a discrete majority update), then refits
    the linear out-of-sample projection. This keeps COSDISH's
    column-sampling structure while replacing its BQP solver with the
    sign-majority relaxation.
    """

    name = "COSDISH"
    supervised = True

    def __init__(self, num_bits: int = 32, rounds: int = 20, sample_size: int = 128, ridge: float = 1.0, seed: int = 0):
        self.num_bits = num_bits
        self.rounds = rounds
        self.sample_size = sample_size
        self.ridge = ridge
        self.seed = seed
        self._projection: np.ndarray | None = None
        self._mean: np.ndarray | None = None

    def fit(self, train: Split, num_classes: int) -> "COSDISH":
        features, mean = center(train.features)
        self._mean = mean
        rng = make_rng(self.seed)
        n = len(features)
        similarity = pairwise_similarity_labels(train.labels)
        codes = sign_codes(rng.normal(size=(n, self.num_bits)))
        for _ in range(self.rounds):
            sample = rng.choice(n, size=min(self.sample_size, n), replace=False)
            # Target: bits of sampled items should match S-weighted average
            # of the other items' bits (BQP relaxed to a sign update).
            codes[sample] = sign_codes(similarity[sample] @ codes)
        self._projection = _ridge_solve(features, codes, self.ridge)
        return self

    def hash(self, features: np.ndarray) -> np.ndarray:
        if self._projection is None or self._mean is None:
            raise RuntimeError("fit must be called before hash")
        return sign_codes((features - self._mean) @ self._projection)


class _DecisionStump:
    """A single-feature threshold classifier producing ±1 outputs."""

    __slots__ = ("feature", "threshold", "polarity")

    def __init__(self, feature: int, threshold: float, polarity: float):
        self.feature = feature
        self.threshold = threshold
        self.polarity = polarity

    def predict(self, features: np.ndarray) -> np.ndarray:
        raw = np.where(features[:, self.feature] > self.threshold, 1.0, -1.0)
        return self.polarity * raw


class FastHash(BinaryHashMixin, RetrievalMethod):
    """FastHash (Lin et al., simplified).

    The original alternates graph-cut binary inference with boosted
    decision trees per bit. We keep the two-stage structure: target codes
    come from an SDH-style discrete solve, and each bit's out-of-sample
    hash function is a small ensemble of boosted decision stumps — a depth-1
    instance of the original's decision-tree hash functions, which is what
    gives FastHash its non-linear edge over linear projections.
    """

    name = "FastHash"
    supervised = True

    def __init__(self, num_bits: int = 32, stumps_per_bit: int = 8, candidate_thresholds: int = 8, seed: int = 0):
        self.num_bits = num_bits
        self.stumps_per_bit = stumps_per_bit
        self.candidate_thresholds = candidate_thresholds
        self.seed = seed
        self._ensembles: list[list[tuple[float, _DecisionStump]]] | None = None

    def fit(self, train: Split, num_classes: int) -> "FastHash":
        target_codes = SDH(num_bits=self.num_bits, seed=self.seed).fit(
            train, num_classes
        ).hash(train.features)
        rng = make_rng(self.seed)
        features = train.features
        self._ensembles = [
            self._boost_bit(features, target_codes[:, bit], rng)
            for bit in range(self.num_bits)
        ]
        return self

    def _boost_bit(
        self, features: np.ndarray, targets: np.ndarray, rng: np.random.Generator
    ) -> list[tuple[float, _DecisionStump]]:
        """AdaBoost with decision stumps against one bit's target codes."""
        n = len(features)
        weights = np.full(n, 1.0 / n)
        ensemble: list[tuple[float, _DecisionStump]] = []
        for _ in range(self.stumps_per_bit):
            stump = self._best_stump(features, targets, weights, rng)
            predictions = stump.predict(features)
            error = float(weights[predictions != targets].sum())
            error = min(max(error, 1e-9), 1.0 - 1e-9)
            alpha = 0.5 * np.log((1.0 - error) / error)
            weights *= np.exp(-alpha * targets * predictions)
            weights /= weights.sum()
            ensemble.append((alpha, stump))
        return ensemble

    def _best_stump(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray,
        rng: np.random.Generator,
    ) -> _DecisionStump:
        best_error = np.inf
        best = _DecisionStump(0, 0.0, 1.0)
        dims = rng.choice(
            features.shape[1], size=min(8, features.shape[1]), replace=False
        )
        for dim in dims:
            values = features[:, dim]
            thresholds = np.quantile(
                values, np.linspace(0.1, 0.9, self.candidate_thresholds)
            )
            for threshold in thresholds:
                raw = np.where(values > threshold, 1.0, -1.0)
                for polarity in (1.0, -1.0):
                    error = float(weights[polarity * raw != targets].sum())
                    if error < best_error:
                        best_error = error
                        best = _DecisionStump(int(dim), float(threshold), polarity)
        return best

    def hash(self, features: np.ndarray) -> np.ndarray:
        if self._ensembles is None:
            raise RuntimeError("fit must be called before hash")
        codes = np.zeros((len(features), self.num_bits))
        for bit, ensemble in enumerate(self._ensembles):
            scores = np.zeros(len(features))
            for alpha, stump in ensemble:
                scores += alpha * stump.predict(features)
            codes[:, bit] = np.where(scores >= 0, 1.0, -1.0)
        return codes


class FSSH(BinaryHashMixin, RetrievalMethod):
    """Fast scalable supervised hashing (Luo et al., simplified).

    FSSH avoids the n×n similarity matrix by fusing a semantic (label)
    embedding with a feature embedding in a shared latent space. We learn
    codes ``B = sign(λ · Y G + X P)`` where ``G`` embeds labels and ``P``
    embeds features, alternating closed-form updates of both.
    """

    name = "FSSH"
    supervised = True

    def __init__(self, num_bits: int = 32, iterations: int = 10, weight: float = 1.0, ridge: float = 1.0, seed: int = 0):
        self.num_bits = num_bits
        self.iterations = iterations
        self.weight = weight
        self.ridge = ridge
        self.seed = seed
        self._projection: np.ndarray | None = None
        self._mean: np.ndarray | None = None

    def fit(self, train: Split, num_classes: int) -> "FSSH":
        features, mean = center(train.features)
        self._mean = mean
        labels = one_hot(train.labels, num_classes)
        rng = make_rng(self.seed)
        codes = sign_codes(rng.normal(size=(len(features), self.num_bits)))
        for _ in range(self.iterations):
            label_embed = _ridge_solve(labels, codes, self.ridge)
            feature_embed = _ridge_solve(features, codes, self.ridge)
            codes = sign_codes(
                self.weight * labels @ label_embed + features @ feature_embed
            )
        self._projection = _ridge_solve(features, codes, self.ridge)
        return self

    def hash(self, features: np.ndarray) -> np.ndarray:
        if self._projection is None or self._mean is None:
            raise RuntimeError("fit must be called before hash")
        return sign_codes((features - self._mean) @ self._projection)
