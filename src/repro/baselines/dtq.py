"""DTQ — deep triplet quantization (Liu et al., cited as [50]).

A deep quantization baseline trained with the *direct* triplet loss the
paper's Proposition 1 upper-bounds. Included both as an extra comparison
point and as the empirical half of the §III-D complexity argument: its
per-batch cost grows cubically with batch size, whereas LightLT's
center+ranking surrogate stays linear (see
``benchmarks/test_bench_proposition1.py``).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.deep_quant import KDE
from repro.core.losses import triplet_loss
from repro.data.datasets import Split
from repro.data.loader import DataLoader
from repro.nn import AdamW, CosineAnnealingLR, Tensor
from repro.rng import make_rng, spawn


class DTQ(KDE):
    """Deep additive quantization trained with the direct triplet loss.

    Shares KDE's architecture (backbone + M additive codebooks with
    straight-through selection) but replaces the pointwise CE objective
    with the margin-based triplet loss over all in-batch triplets, plus the
    reconstruction anchor. Batch sizes must stay small — the loss
    enumerates O(B³) triplets.
    """

    name = "DTQ"

    def __init__(self, margin: float = 1.0, **kwargs):
        kwargs.setdefault("batch_size", 32)
        super().__init__(**kwargs)
        self.margin = margin

    def fit(self, train: Split, num_classes: int) -> "DTQ":
        rng = make_rng(self.seed)
        net_rng, head_rng, cb_rng, loader_rng = spawn(rng, 4)
        from repro.nn import Linear, ResidualMLP

        self.backbone = ResidualMLP(train.dim, [self.hidden], net_rng)
        self.classifier = Linear(train.dim, num_classes, head_rng)  # unused head kept for parity
        self._init_codebooks(train, cb_rng)
        params = self.backbone.parameters() + self._codebook_params
        optimizer = AdamW(params, lr=self.learning_rate, weight_decay=self.weight_decay)
        loader = DataLoader(train, batch_size=self.batch_size, rng=loader_rng)
        scheduler = CosineAnnealingLR(optimizer, max(len(loader) * self.epochs, 1))
        self.backbone.train()
        for _ in range(self.epochs):
            for features, labels in loader:
                optimizer.zero_grad()
                embeddings = self.backbone(Tensor(features))
                _, reconstruction = self._quantize(embeddings)
                loss = triplet_loss(reconstruction, labels, margin=self.margin)
                if self.reconstruction_weight > 0:
                    diff = embeddings.detach() - reconstruction
                    loss = loss + (diff * diff).sum(axis=1).mean() * self.reconstruction_weight
                loss.backward()
                optimizer.step()
                scheduler.step()
        self.backbone.eval()
        return self
