"""Shared machinery for the deep baselines of Tables II and III.

Every deep method uses the same substrate LightLT uses — a gated residual
MLP over the (simulated) pre-trained features — so comparisons isolate the
*objective and code structure* rather than backbone capacity. Subclasses
define a loss over the continuous code outputs; this base handles batching,
optimisation, and the Hamming ranking.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BinaryHashMixin, RetrievalMethod, sign_codes
from repro.data.datasets import Split
from repro.data.loader import DataLoader
from repro.nn import AdamW, CosineAnnealingLR, Linear, Module, ResidualMLP, Tensor, no_grad
from repro.rng import make_rng, spawn


class HashNetwork(Module):
    """Residual backbone + linear hashing head producing ``num_bits`` scores."""

    def __init__(self, dim: int, num_bits: int, hidden: int, rng: np.random.Generator):
        super().__init__()
        backbone_rng, head_rng = spawn(rng, 2)
        self.backbone = ResidualMLP(dim, [hidden], backbone_rng)
        self.head = Linear(dim, num_bits, head_rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.backbone(x))


class DeepHashBase(BinaryHashMixin, RetrievalMethod):
    """Minibatch-trained deep hashing method.

    Subclasses implement :meth:`loss` mapping a batch's continuous code
    outputs and labels to a scalar tensor. ``on_epoch`` is an optional hook
    (HashNet uses it for its continuation schedule; LTHNet for prototype
    refreshes).
    """

    supervised = True

    def __init__(
        self,
        num_bits: int = 32,
        hidden: int = 64,
        epochs: int = 15,
        batch_size: int = 64,
        learning_rate: float = 2e-3,
        weight_decay: float = 1e-2,
        seed: int = 0,
    ):
        self.num_bits = num_bits
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.seed = seed
        self.network: HashNetwork | None = None

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def loss(self, outputs: Tensor, labels: np.ndarray) -> Tensor:
        raise NotImplementedError

    def prepare(self, train: Split, num_classes: int, rng: np.random.Generator) -> None:
        """Called once before training (build targets, centers, ...)."""

    def on_epoch(self, epoch: int) -> None:
        """Called at the start of every epoch."""

    def extra_parameters(self) -> list:
        """Additional trainable parameters owned by the subclass."""
        return []

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, train: Split, num_classes: int) -> "DeepHashBase":
        rng = make_rng(self.seed)
        net_rng, loader_rng, prep_rng = spawn(rng, 3)
        self.network = HashNetwork(train.dim, self.num_bits, self.hidden, net_rng)
        self.num_classes = num_classes
        self.prepare(train, num_classes, prep_rng)
        params = self.network.parameters() + self.extra_parameters()
        optimizer = AdamW(params, lr=self.learning_rate, weight_decay=self.weight_decay)
        loader = DataLoader(train, batch_size=self.batch_size, rng=loader_rng)
        scheduler = CosineAnnealingLR(optimizer, max(len(loader) * self.epochs, 1))
        self.network.train()
        for epoch in range(self.epochs):
            self.on_epoch(epoch)
            for features, labels in loader:
                optimizer.zero_grad()
                outputs = self.network(Tensor(features))
                batch_loss = self.loss(outputs, labels)
                batch_loss.backward()
                optimizer.step()
                scheduler.step()
        self.network.eval()
        return self

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def continuous_codes(self, features: np.ndarray, batch_size: int = 512) -> np.ndarray:
        if self.network is None:
            raise RuntimeError("fit must be called before use")
        self.network.eval()
        blocks = []
        with no_grad():
            for start in range(0, len(features), batch_size):
                batch = Tensor(np.asarray(features[start : start + batch_size], dtype=np.float64))
                blocks.append(self.network(batch).data)
        return np.concatenate(blocks, axis=0)

    def hash(self, features: np.ndarray) -> np.ndarray:
        return sign_codes(self.continuous_codes(features))


def pairwise_logistic_loss(
    outputs: Tensor, labels: np.ndarray, scale: float = 0.5, weighted: bool = False
) -> Tensor:
    """The pairwise likelihood loss shared by DPSH / HashNet / DSDH.

    ``L = mean_ij [ log(1 + exp(θ_ij)) − s_ij θ_ij ]`` with
    ``θ_ij = scale · u_iᵀ u_j`` and ``s_ij = 1[y_i = y_j]``. With
    ``weighted=True`` (HashNet) similar pairs are up-weighted by the
    dissimilar/similar ratio to counteract pair imbalance.
    """
    labels = np.asarray(labels)
    similar = (labels[:, None] == labels[None, :]).astype(np.float64)
    np.fill_diagonal(similar, 0.0)
    valid = np.ones_like(similar)
    np.fill_diagonal(valid, 0.0)

    theta = (outputs @ outputs.T) * scale
    # Numerically stable softplus: log(1+e^θ) = θ/2 + |θ|/2 + log(1+e^{−|θ|}).
    abs_theta = theta.abs()
    softplus = theta * 0.5 + abs_theta * 0.5 + ((abs_theta * -1.0).exp() + 1.0).log()
    pair_losses = softplus - theta * Tensor(similar)

    if weighted:
        num_similar = max(similar.sum(), 1.0)
        num_dissimilar = max(valid.sum() - similar.sum(), 1.0)
        weights = np.where(similar > 0, num_dissimilar / num_similar, 1.0) * valid
    else:
        weights = valid
    total_weight = max(weights.sum(), 1.0)
    return (pair_losses * Tensor(weights)).sum() / total_weight


def quantization_penalty(outputs: Tensor) -> Tensor:
    """``mean ‖|u| − 1‖²`` pushing continuous codes toward ±1."""
    diff = outputs.abs() - 1.0
    return (diff * diff).mean()
