"""Shallow binarized-hash baselines: LSH, PCAH, ITQ, KNNH.

These are the unsupervised shallow methods of Table II. Each maps the
(simulated pre-trained) features to ``num_bits`` binary codes; retrieval is
symmetric Hamming ranking.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BinaryHashMixin, RetrievalMethod, sign_codes
from repro.cluster.pca import fit_pca
from repro.data.datasets import Split
from repro.data.transforms import center
from repro.rng import make_rng


class LSH(BinaryHashMixin, RetrievalMethod):
    """Locality-sensitive hashing via random hyperplanes (Gionis et al.).

    Data-independent: codes are signs of random Gaussian projections, so
    ``fit`` only samples the projection matrix.
    """

    name = "LSH"
    supervised = False

    def __init__(self, num_bits: int = 32, seed: int = 0):
        self.num_bits = num_bits
        self.seed = seed
        self._projection: np.ndarray | None = None
        self._mean: np.ndarray | None = None

    def fit(self, train: Split, num_classes: int) -> "LSH":
        rng = make_rng(self.seed)
        self._projection = rng.normal(size=(train.dim, self.num_bits))
        self._mean = train.features.mean(axis=0)
        return self

    def hash(self, features: np.ndarray) -> np.ndarray:
        if self._projection is None or self._mean is None:
            raise RuntimeError("fit must be called before hash")
        return sign_codes((features - self._mean) @ self._projection)


class PCAH(BinaryHashMixin, RetrievalMethod):
    """PCA hashing: sign of the top-``num_bits`` principal projections."""

    name = "PCAH"
    supervised = False

    def __init__(self, num_bits: int = 32):
        self.num_bits = num_bits
        self._pca = None

    def fit(self, train: Split, num_classes: int) -> "PCAH":
        components = min(self.num_bits, train.dim, len(train) - 1)
        self._pca = fit_pca(train.features, components)
        return self

    def hash(self, features: np.ndarray) -> np.ndarray:
        if self._pca is None:
            raise RuntimeError("fit must be called before hash")
        return sign_codes(self._pca.transform(features))


class ITQ(BinaryHashMixin, RetrievalMethod):
    """Iterative quantization (Gong et al.).

    PCA-projects to ``num_bits`` dimensions, then alternates between the
    optimal binary codes for a fixed rotation and the Procrustes-optimal
    rotation for fixed codes, minimising the binarisation error
    ``‖B − V R‖_F``.
    """

    name = "ITQ"
    supervised = False

    def __init__(self, num_bits: int = 32, iterations: int = 30, seed: int = 0):
        self.num_bits = num_bits
        self.iterations = iterations
        self.seed = seed
        self._pca = None
        self._rotation: np.ndarray | None = None

    def fit(self, train: Split, num_classes: int) -> "ITQ":
        components = min(self.num_bits, train.dim, len(train) - 1)
        self._pca = fit_pca(train.features, components)
        projected = self._pca.transform(train.features)
        rng = make_rng(self.seed)
        random_matrix = rng.normal(size=(components, components))
        rotation, _ = np.linalg.qr(random_matrix)
        for _ in range(self.iterations):
            codes = sign_codes(projected @ rotation)
            # Procrustes: R = S Ŝᵀ from the SVD of Bᵀ V.
            u, _, vt = np.linalg.svd(codes.T @ projected)
            rotation = (u @ vt).T
        self._rotation = rotation
        return self

    def hash(self, features: np.ndarray) -> np.ndarray:
        if self._pca is None or self._rotation is None:
            raise RuntimeError("fit must be called before hash")
        return sign_codes(self._pca.transform(features) @ self._rotation)


class KNNH(BinaryHashMixin, RetrievalMethod):
    """k-nearest-neighbour hashing (He et al., simplified).

    Starts from ITQ-style codes and iteratively smooths each training
    item's relaxed code toward the mean code of its feature-space k nearest
    neighbours, preserving local neighbourhood structure in Hamming space.
    The out-of-sample extension is a ridge regression from features to the
    final relaxed codes. This captures KNNH's core idea (kNN-consistent
    codes) without the original's full alternating solver.
    """

    name = "KNNH"
    supervised = False

    def __init__(
        self,
        num_bits: int = 32,
        num_neighbors: int = 10,
        smoothing_rounds: int = 5,
        blend: float = 0.5,
        ridge: float = 1e-3,
        seed: int = 0,
    ):
        self.num_bits = num_bits
        self.num_neighbors = num_neighbors
        self.smoothing_rounds = smoothing_rounds
        self.blend = blend
        self.ridge = ridge
        self.seed = seed
        self._weights: np.ndarray | None = None
        self._mean: np.ndarray | None = None

    def fit(self, train: Split, num_classes: int) -> "KNNH":
        features, mean = center(train.features)
        self._mean = mean
        base = ITQ(num_bits=self.num_bits, seed=self.seed).fit(train, num_classes)
        relaxed = base.hash(train.features).astype(np.float64)

        neighbors = self._knn_indices(features)
        for _ in range(self.smoothing_rounds):
            neighbor_mean = relaxed[neighbors].mean(axis=1)
            relaxed = (1.0 - self.blend) * relaxed + self.blend * neighbor_mean
        targets = sign_codes(relaxed)

        gram = features.T @ features + self.ridge * np.eye(features.shape[1])
        self._weights = np.linalg.solve(gram, features.T @ targets)
        return self

    def _knn_indices(self, features: np.ndarray) -> np.ndarray:
        sq = (features**2).sum(axis=1)
        distances = sq[:, None] + sq[None, :] - 2.0 * features @ features.T
        np.fill_diagonal(distances, np.inf)
        k = min(self.num_neighbors, len(features) - 1)
        return np.argpartition(distances, k, axis=1)[:, :k]

    def hash(self, features: np.ndarray) -> np.ndarray:
        if self._weights is None or self._mean is None:
            raise RuntimeError("fit must be called before hash")
        return sign_codes((features - self._mean) @ self._weights)
