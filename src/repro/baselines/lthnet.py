"""LTHNet — Long-Tail Hashing Network (Chen et al., SIGIR 2021).

The strongest published baseline in Tables II/III and the only prior
method designed for long-tail retrieval. Core ideas reproduced here:

1. A deep hashing network (tanh-relaxed binary codes).
2. A *dynamic meta-embedding* memory: every class contributes multiple
   prototypes selected by determinantal-point-process MAP inference, so
   head-class knowledge is shared with visually-similar tail classes.
3. Classification over prototype similarities with class-balanced
   weighting, plus a quantization penalty.

Prototypes are refreshed from the current codes every few epochs; tail
classes with fewer items than the prototype budget contribute all their
items, which is how knowledge transfer from head to tail arises.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.deep_base import DeepHashBase, quantization_penalty
from repro.cluster.dpp import dpp_prototypes
from repro.data.datasets import Split
from repro.data.longtail import class_counts, class_weights
from repro.nn import Tensor, log_softmax
from repro.nn.functional import softmax


class LTHNet(DeepHashBase):
    """Long-tail hashing with DPP prototypes and a class-balanced loss."""

    name = "LTHNet"

    def __init__(
        self,
        prototypes_per_class: int = 4,
        refresh_every: int = 3,
        gamma: float = 0.999,
        quantization_weight: float = 0.1,
        similarity_scale: float = 0.5,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.prototypes_per_class = prototypes_per_class
        self.refresh_every = refresh_every
        self.gamma = gamma
        self.quantization_weight = quantization_weight
        self.similarity_scale = similarity_scale
        self._train: Split | None = None
        self._class_weights: np.ndarray | None = None
        self._prototypes: np.ndarray | None = None  # (P_total, num_bits)
        self._prototype_labels: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Memory construction
    # ------------------------------------------------------------------
    def prepare(self, train: Split, num_classes: int, rng: np.random.Generator) -> None:
        self._train = train
        counts = class_counts(train.labels, num_classes)
        self._class_weights = class_weights(counts, self.gamma)
        self._refresh_prototypes()

    def _refresh_prototypes(self) -> None:
        """Rebuild the prototype memory from current (tanh) codes via DPP."""
        assert self._train is not None
        codes = np.tanh(self.continuous_codes(self._train.features))
        prototypes = []
        labels = []
        for class_id in np.unique(self._train.labels):
            class_codes = codes[self._train.labels == class_id]
            selected = dpp_prototypes(class_codes, self.prototypes_per_class)
            prototypes.append(selected)
            labels.extend([class_id] * len(selected))
        self._prototypes = np.concatenate(prototypes, axis=0)
        self._prototype_labels = np.asarray(labels)
        self.network.train()

    def on_epoch(self, epoch: int) -> None:
        if epoch > 0 and epoch % self.refresh_every == 0:
            self._refresh_prototypes()

    # ------------------------------------------------------------------
    # Loss
    # ------------------------------------------------------------------
    def loss(self, outputs: Tensor, labels: np.ndarray) -> Tensor:
        assert self._prototypes is not None and self._class_weights is not None
        labels = np.asarray(labels)
        squashed = outputs.tanh()
        # Similarity to every prototype; per-class logit = soft max-pooling
        # over the class's prototypes (the dynamic meta-embedding readout).
        similarities = (squashed @ Tensor(self._prototypes.T)) * self.similarity_scale
        class_logits = self._pool_by_class(similarities)
        log_probs = log_softmax(class_logits, axis=1)
        picked = log_probs[np.arange(len(labels)), labels]
        sample_weights = self._class_weights[labels]
        classification = -(picked * Tensor(sample_weights)).sum() / float(len(labels))
        return classification + quantization_penalty(outputs) * self.quantization_weight

    def _pool_by_class(self, similarities: Tensor) -> Tensor:
        """Log-sum-exp pooling of prototype similarities per class."""
        assert self._prototype_labels is not None
        num_classes = self.num_classes
        pooled_columns = []
        for class_id in range(num_classes):
            mask = np.flatnonzero(self._prototype_labels == class_id)
            if len(mask) == 0:
                pooled_columns.append(None)
                continue
            block = similarities[:, mask]
            # logsumexp over this class's prototypes (soft max-pooling).
            shifted = block - Tensor(block.data.max(axis=1, keepdims=True))
            pooled = (
                shifted.exp().sum(axis=1, keepdims=True).log()
                + Tensor(block.data.max(axis=1, keepdims=True))
            )
            pooled_columns.append(pooled)
        # Classes absent from training get a very low constant logit.
        n = similarities.shape[0]
        filler = Tensor(np.full((n, 1), -30.0))
        from repro.nn import concat

        columns = [c if c is not None else filler for c in pooled_columns]
        return concat(columns, axis=1)
