"""Adapters exposing LightLT through the baseline-comparison interface.

Lets the Table II/III harness treat LightLT (with and without the model
ensemble) exactly like every baseline: ``fit`` on the train split, ``rank``
the database for queries.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import RetrievalMethod
from repro.core.ensemble import EnsembleConfig, train_ensemble
from repro.core.losses import LossConfig
from repro.core.model import LightLT, LightLTConfig
from repro.core.trainer import Trainer, TrainingConfig
from repro.data.datasets import RetrievalDataset, Split
from repro.retrieval.index import QuantizedIndex


class LightLTMethod(RetrievalMethod):
    """LightLT without the ensemble step ("LightLT w/o ensemble")."""

    name = "LightLT w/o ensemble"
    supervised = True

    def __init__(
        self,
        model_config: LightLTConfig | None = None,
        loss_config: LossConfig = LossConfig(),
        training_config: TrainingConfig = TrainingConfig(),
        seed: int = 0,
    ):
        self.model_config = model_config
        self.loss_config = loss_config
        self.training_config = training_config
        self.seed = seed
        self.model: LightLT | None = None

    def _resolve_config(self, train: Split, num_classes: int) -> LightLTConfig:
        if self.model_config is not None:
            return self.model_config
        return LightLTConfig(input_dim=train.dim, num_classes=num_classes)

    def fit(self, train: Split, num_classes: int) -> "LightLTMethod":
        config = self._resolve_config(train, num_classes)
        dataset = _as_dataset(train, num_classes)
        trainer = Trainer(config, self.loss_config, self.training_config, seed=self.seed)
        self.model, _, _ = trainer.fit(dataset)
        return self

    def rank(self, queries: np.ndarray, database: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("fit must be called before rank")
        index = QuantizedIndex.build(
            codebooks=self.model.dsq.materialized_codebooks(),
            database=database,
            codes=self.model.encode(database),
        )
        return index.search(self.model.embed(queries))


class LightLTEnsembleMethod(LightLTMethod):
    """Full LightLT: model ensemble + DSQ fine-tuning (§III-E)."""

    name = "LightLT"

    def __init__(
        self,
        model_config: LightLTConfig | None = None,
        loss_config: LossConfig = LossConfig(),
        training_config: TrainingConfig = TrainingConfig(),
        ensemble_config: EnsembleConfig = EnsembleConfig(),
        seed: int = 0,
    ):
        super().__init__(model_config, loss_config, training_config, seed=seed)
        self.ensemble_config = ensemble_config

    def fit(self, train: Split, num_classes: int) -> "LightLTEnsembleMethod":
        config = self._resolve_config(train, num_classes)
        dataset = _as_dataset(train, num_classes)
        result = train_ensemble(
            dataset,
            config,
            self.loss_config,
            self.training_config,
            self.ensemble_config,
            seed=self.seed,
        )
        self.model = result.model
        return self


def _as_dataset(train: Split, num_classes: int) -> RetrievalDataset:
    """Wrap a bare training split in the dataset container the trainer wants.

    Query/database splits are never touched during fit, so the train split
    doubles for them here.
    """
    return RetrievalDataset(
        name="adapter",
        num_classes=num_classes,
        target_imbalance_factor=1.0,
        train=train,
        query=train,
        database=train,
    )
