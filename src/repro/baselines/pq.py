"""Shallow quantization baselines: PQ, OPQ, RVQ, and SCDH.

Product quantization splits the feature space into ``M`` subspaces and
k-means-quantizes each independently; OPQ first learns a rotation that
balances variance across subspaces; RVQ quantizes residuals additively
(the unsupervised ancestor of the DSQ topology); SCDH adds label
supervision through a discriminative projection before quantizing.

All use the asymmetric ADC ranking of §IV. Codebooks are stored in the
``(M, K, d)`` full-dimensional layout — PQ subspace codewords are padded
with zeros outside their subspace so that additive reconstruction and the
shared ADC kernel apply uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import QuantizerMixin, RetrievalMethod
from repro.cluster.kmeans import assign_to_centroids, kmeans
from repro.data.datasets import Split
from repro.data.transforms import center
from repro.nn.functional import one_hot
from repro.rng import make_rng, spawn


class PQ(QuantizerMixin, RetrievalMethod):
    """Product quantization (Jégou et al.).

    The feature vector is split into ``num_codebooks`` contiguous
    subvectors; each subspace gets its own k-means codebook of
    ``num_codewords`` centroids.
    """

    name = "PQ"
    supervised = False

    def __init__(self, num_codebooks: int = 4, num_codewords: int = 64, seed: int = 0, kmeans_iterations: int = 25):
        self.num_codebooks = num_codebooks
        self.num_codewords = num_codewords
        self.seed = seed
        self.kmeans_iterations = kmeans_iterations
        self._codebooks: np.ndarray | None = None
        self._splits: list[slice] | None = None
        self._mean: np.ndarray | None = None

    def _subspace_slices(self, dim: int) -> list[slice]:
        if dim < self.num_codebooks:
            raise ValueError(
                f"need dim >= num_codebooks ({self.num_codebooks}), got {dim}"
            )
        bounds = np.linspace(0, dim, self.num_codebooks + 1).astype(int)
        return [slice(a, b) for a, b in zip(bounds[:-1], bounds[1:])]

    def _prepare(self, features: np.ndarray) -> np.ndarray:
        """Hook for subclasses that transform features before splitting."""
        return features - self._mean

    def fit(self, train: Split, num_classes: int) -> "PQ":
        self._mean = train.features.mean(axis=0)
        features = self._prepare(train.features)
        dim = features.shape[1]
        self._splits = self._subspace_slices(dim)
        rngs = spawn(make_rng(self.seed), self.num_codebooks)
        self._codebooks = np.zeros((self.num_codebooks, self.num_codewords, dim))
        for m, (sub, rng) in enumerate(zip(self._splits, rngs)):
            block = features[:, sub]
            k = min(self.num_codewords, len(block))
            result = kmeans(block, k, rng=rng, max_iterations=self.kmeans_iterations)
            self._codebooks[m, :k, sub] = result.centroids
        return self

    def encode(self, features: np.ndarray) -> np.ndarray:
        if self._codebooks is None or self._splits is None:
            raise RuntimeError("fit must be called before encode")
        features = self._prepare(np.asarray(features, dtype=np.float64))
        codes = np.zeros((len(features), self.num_codebooks), dtype=np.int64)
        for m, sub in enumerate(self._splits):
            codes[:, m] = assign_to_centroids(
                features[:, sub], self._codebooks[m][:, sub]
            )
        return codes

    def codebooks(self) -> np.ndarray:
        if self._codebooks is None:
            raise RuntimeError("fit must be called before codebooks")
        return self._codebooks

    def embed_queries(self, queries: np.ndarray) -> np.ndarray:
        return self._prepare(np.asarray(queries, dtype=np.float64))


class OPQ(PQ):
    """Optimized product quantization (Ge et al.).

    Alternates PQ codebook fitting with a Procrustes-optimal rotation that
    minimises the total quantization error, then applies PQ in the rotated
    space.
    """

    name = "OPQ"
    supervised = False

    def __init__(self, num_codebooks: int = 4, num_codewords: int = 64, seed: int = 0, outer_iterations: int = 5, kmeans_iterations: int = 15):
        super().__init__(num_codebooks, num_codewords, seed, kmeans_iterations)
        self.outer_iterations = outer_iterations
        self._rotation: np.ndarray | None = None

    def _prepare(self, features: np.ndarray) -> np.ndarray:
        centered = features - self._mean
        if self._rotation is None:
            return centered
        return centered @ self._rotation

    def fit(self, train: Split, num_classes: int) -> "OPQ":
        self._mean = train.features.mean(axis=0)
        dim = train.dim
        self._rotation = np.eye(dim)
        for _ in range(self.outer_iterations):
            super().fit(train, num_classes)
            reconstructions = self._reconstruct_train(train.features)
            centered = train.features - self._mean
            # Procrustes: rotation aligning data with reconstructions.
            u, _, vt = np.linalg.svd(centered.T @ reconstructions)
            self._rotation = u @ vt
        super().fit(train, num_classes)
        return self

    def _reconstruct_train(self, features: np.ndarray) -> np.ndarray:
        codes = self.encode(features)
        gathered = self._codebooks[
            np.arange(self.num_codebooks)[None, :], codes
        ]
        return gathered.sum(axis=1)


class RVQ(QuantizerMixin, RetrievalMethod):
    """Residual vector quantization (Chen et al. 2010).

    Stage-wise k-means over residuals — the unsupervised counterpart of the
    DSQ topology, and the strongest shallow quantizer in this suite.
    """

    name = "RVQ"
    supervised = False

    def __init__(self, num_codebooks: int = 4, num_codewords: int = 64, seed: int = 0, kmeans_iterations: int = 25):
        self.num_codebooks = num_codebooks
        self.num_codewords = num_codewords
        self.seed = seed
        self.kmeans_iterations = kmeans_iterations
        self._codebooks: np.ndarray | None = None
        self._mean: np.ndarray | None = None

    def fit(self, train: Split, num_classes: int) -> "RVQ":
        self._mean = train.features.mean(axis=0)
        residual = train.features - self._mean
        rngs = spawn(make_rng(self.seed), self.num_codebooks)
        self._codebooks = np.zeros(
            (self.num_codebooks, self.num_codewords, train.dim)
        )
        for m, rng in enumerate(rngs):
            k = min(self.num_codewords, len(residual))
            result = kmeans(residual, k, rng=rng, max_iterations=self.kmeans_iterations)
            self._codebooks[m, :k] = result.centroids
            residual = residual - result.centroids[result.assignments]
        return self

    def encode(self, features: np.ndarray) -> np.ndarray:
        if self._codebooks is None:
            raise RuntimeError("fit must be called before encode")
        residual = np.asarray(features, dtype=np.float64) - self._mean
        codes = np.zeros((len(residual), self.num_codebooks), dtype=np.int64)
        for m in range(self.num_codebooks):
            codes[:, m] = assign_to_centroids(residual, self._codebooks[m])
            residual = residual - self._codebooks[m][codes[:, m]]
        return codes

    def codebooks(self) -> np.ndarray:
        if self._codebooks is None:
            raise RuntimeError("fit must be called before codebooks")
        return self._codebooks

    def embed_queries(self, queries: np.ndarray) -> np.ndarray:
        return np.asarray(queries, dtype=np.float64) - self._mean


class SCDH(RetrievalMethod):
    """Supervised discrete hashing with a discriminative transform (SCDH).

    Grouped with the shallow *hash* baselines in Table II: learns an
    LDA-like linear transform by ridge-regressing features onto class
    means, mixes it with the identity, and binarises the transformed
    features with ITQ. The supervision makes it the strongest shallow hash
    in the suite, as in the paper's table.
    """

    name = "SCDH"
    supervised = True

    def __init__(
        self,
        num_bits: int = 32,
        seed: int = 0,
        supervision_weight: float = 0.5,
        ridge: float = 1.0,
    ):
        self.num_bits = num_bits
        self.seed = seed
        self.supervision_weight = supervision_weight
        self.ridge = ridge
        self._transform: np.ndarray | None = None
        self._raw_mean: np.ndarray | None = None
        self._itq = None

    def fit(self, train: Split, num_classes: int) -> "SCDH":
        from repro.baselines.shallow_hash import ITQ

        features, mean = center(train.features)
        self._raw_mean = mean
        labels = one_hot(train.labels, num_classes)
        gram = features.T @ features + self.ridge * np.eye(features.shape[1])
        # Regress features onto labels, then back through the class means so
        # the transform is (d, d).
        to_labels = np.linalg.solve(gram, features.T @ labels)
        class_means = labels.T @ features / np.maximum(
            labels.sum(axis=0)[:, None], 1.0
        )
        discriminative = to_labels @ class_means
        identity = np.eye(features.shape[1])
        self._transform = (
            (1.0 - self.supervision_weight) * identity
            + self.supervision_weight * discriminative
        )
        self._itq = ITQ(num_bits=self.num_bits, seed=self.seed)
        self._itq.fit(Split(features @ self._transform, train.labels), num_classes)
        return self

    def _apply(self, features: np.ndarray) -> np.ndarray:
        if self._transform is None or self._raw_mean is None:
            raise RuntimeError("fit must be called before use")
        return (np.asarray(features, dtype=np.float64) - self._raw_mean) @ self._transform

    def hash(self, features: np.ndarray) -> np.ndarray:
        return self._itq.hash(self._apply(features))

    def rank(self, queries: np.ndarray, database: np.ndarray) -> np.ndarray:
        from repro.retrieval.search import hamming_distances, rank_by_distance

        return rank_by_distance(
            hamming_distances(self.hash(queries), self.hash(database))
        )
