"""Deep binarized-hash baselines: DPSH, HashNet, DSDH, CSQ.

Four supervised deep hashing objectives over the shared
:class:`repro.baselines.deep_base.HashNetwork` substrate, matching the deep
rows of Table II.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.deep_base import (
    DeepHashBase,
    pairwise_logistic_loss,
    quantization_penalty,
)
from repro.data.datasets import Split
from repro.nn import Linear, Tensor, cross_entropy
from repro.rng import make_rng


class DPSH(DeepHashBase):
    """Deep pairwise supervised hashing (Li et al.).

    Pairwise likelihood over in-batch pairs plus a quantization penalty
    pushing the relaxed codes toward ±1.
    """

    name = "DPSH"

    def __init__(self, eta: float = 0.1, **kwargs):
        super().__init__(**kwargs)
        self.eta = eta

    def loss(self, outputs: Tensor, labels: np.ndarray) -> Tensor:
        pairwise = pairwise_logistic_loss(outputs, labels, scale=0.5)
        return pairwise + quantization_penalty(outputs) * self.eta


class HashNet(DeepHashBase):
    """HashNet (Cao et al.): learning to hash by continuation.

    The relaxed codes pass through ``tanh(β u)`` with β growing over
    training, annealing the relaxation toward the sign function; similar
    pairs are up-weighted to counter the pair imbalance of a 100-class
    batch.
    """

    name = "HashNet"

    def __init__(self, beta_start: float = 1.0, beta_growth: float = 1.3, **kwargs):
        super().__init__(**kwargs)
        self.beta_start = beta_start
        self.beta_growth = beta_growth
        self._beta = beta_start

    def on_epoch(self, epoch: int) -> None:
        self._beta = self.beta_start * self.beta_growth**epoch

    def loss(self, outputs: Tensor, labels: np.ndarray) -> Tensor:
        squashed = (outputs * self._beta).tanh()
        return pairwise_logistic_loss(squashed, labels, scale=0.5, weighted=True)


class DSDH(DeepHashBase):
    """Deep supervised discrete hashing (Li et al.).

    Combines the pairwise likelihood with a linear classifier over the
    (relaxed) codes, so the binary codes are simultaneously similarity-
    preserving and linearly classifiable.
    """

    name = "DSDH"

    def __init__(self, classifier_weight: float = 1.0, eta: float = 0.1, **kwargs):
        super().__init__(**kwargs)
        self.classifier_weight = classifier_weight
        self.eta = eta
        self._classifier: Linear | None = None

    def prepare(self, train: Split, num_classes: int, rng: np.random.Generator) -> None:
        self._classifier = Linear(self.num_bits, num_classes, make_rng(rng))

    def extra_parameters(self) -> list:
        return self._classifier.parameters() if self._classifier else []

    def loss(self, outputs: Tensor, labels: np.ndarray) -> Tensor:
        squashed = outputs.tanh()
        pairwise = pairwise_logistic_loss(squashed, labels, scale=0.5)
        classification = cross_entropy(self._classifier(squashed), labels)
        return (
            pairwise
            + classification * self.classifier_weight
            + quantization_penalty(outputs) * self.eta
        )


def hadamard_hash_centers(
    num_classes: int, num_bits: int, rng: np.random.Generator
) -> np.ndarray:
    """±1 class centers for CSQ.

    Uses the rows of a Sylvester-construction Hadamard matrix (and their
    negations) while they last — these are mutually at Hamming distance
    ``num_bits/2`` — then falls back to Bernoulli(½) rows for any
    remaining classes, exactly as prescribed by Yuan et al.
    """
    size = 1
    while size < num_bits:
        size *= 2
    hadamard = np.ones((1, 1))
    while hadamard.shape[0] < size:
        hadamard = np.block([[hadamard, hadamard], [hadamard, -hadamard]])
    candidates = np.concatenate([hadamard, -hadamard], axis=0)[:, :num_bits]
    centers = np.zeros((num_classes, num_bits))
    available = min(num_classes, len(candidates))
    centers[:available] = candidates[:available]
    if num_classes > available:
        random_rows = rng.choice([-1.0, 1.0], size=(num_classes - available, num_bits))
        centers[available:] = random_rows
    return centers


class CSQ(DeepHashBase):
    """Central similarity quantization (Yuan et al.).

    Each class gets a fixed binary hash center; training minimises bitwise
    binary cross-entropy between the (sigmoid-relaxed) code and the class
    center plus a quantization penalty. Global central similarity is far
    more batch-efficient than pairwise losses, which is why CSQ is the
    strongest deep hash baseline in Table II.
    """

    name = "CSQ"

    def __init__(self, quantization_weight: float = 1e-4, **kwargs):
        super().__init__(**kwargs)
        self.quantization_weight = quantization_weight
        self._centers: np.ndarray | None = None

    def prepare(self, train: Split, num_classes: int, rng: np.random.Generator) -> None:
        self._centers = hadamard_hash_centers(num_classes, self.num_bits, rng)

    def loss(self, outputs: Tensor, labels: np.ndarray) -> Tensor:
        targets = (self._centers[np.asarray(labels)] + 1.0) / 2.0  # {0, 1}
        probabilities = outputs.sigmoid().clip(1e-7, 1.0 - 1e-7)
        bce = -(
            Tensor(targets) * probabilities.log()
            + Tensor(1.0 - targets) * (1.0 - probabilities).log()
        ).mean()
        return bce + quantization_penalty(outputs.tanh()) * self.quantization_weight
