"""``repro.core`` — the LightLT contribution.

DSQ quantizer (Eqns. 2-11), combined long-tail loss (Eqns. 12-16), the
end-to-end model (Fig. 1), the trainer (Algorithm 1), and the
weight-averaging ensemble with DSQ re-alignment (§III-E).
"""

from repro.core.codebook import CodebookChain
from repro.core.dsq import DSQ, DSQOutput, TOPOLOGIES
from repro.core.ensemble import (
    EnsembleConfig,
    EnsembleResult,
    average_members,
    fine_tune_dsq,
    greedy_soup_selection,
    train_ensemble,
)
from repro.core.losses import (
    LightLTCriterion,
    LossBreakdown,
    LossConfig,
    center_loss,
    ranking_loss,
    triplet_loss,
)
from repro.core.model import LightLT, LightLTConfig, LightLTOutput
from repro.core.warmstart import residual_kmeans_codebooks, warm_start_codebooks
from repro.core.quantize import (
    QuantizeStepOutput,
    codebook_usage,
    codeword_similarities,
    quantize_step,
    usage_entropy,
)
from repro.core.trainer import (
    Trainer,
    TrainingConfig,
    TrainingHistory,
    clip_gradients,
    evaluate_map,
    train_lightlt,
    warm_start_prototypes,
)

__all__ = [
    "CodebookChain",
    "DSQ",
    "DSQOutput",
    "EnsembleConfig",
    "EnsembleResult",
    "LightLT",
    "LightLTConfig",
    "LightLTCriterion",
    "LightLTOutput",
    "LossBreakdown",
    "LossConfig",
    "QuantizeStepOutput",
    "TOPOLOGIES",
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "average_members",
    "center_loss",
    "clip_gradients",
    "codebook_usage",
    "codeword_similarities",
    "evaluate_map",
    "fine_tune_dsq",
    "greedy_soup_selection",
    "quantize_step",
    "ranking_loss",
    "train_ensemble",
    "train_lightlt",
    "warm_start_prototypes",
    "triplet_loss",
    "usage_entropy",
    "residual_kmeans_codebooks",
    "warm_start_codebooks",
]
