"""Training loop for LightLT (Algorithm 1, lines 2-6).

One :class:`Trainer` owns a model, its criterion (which carries the class
prototypes), an AdamW optimiser over both, and a learning-rate schedule —
cosine annealing for the image profiles, linear-with-warmup for text, as in
§V-A4. :func:`evaluate_map` implements the retrieval evaluation protocol:
index the database with the model's codes, rank it for each query with ADC
lookups, and score MAP.

The loop itself is factored into a :class:`TrainingSession` — the mutable
state of one fit — so the fault-tolerant runtime can drive it epoch by
epoch: ``run_epoch`` advances one epoch (skipping any step whose loss or
gradient norm is non-finite), ``capture``/``restore`` round-trip the entire
session through :mod:`repro.resilience.checkpoint` bit-exactly, and
``Trainer.fit(checkpoint_dir=..., resume=True)`` continues an interrupted
run from the newest valid checkpoint.

The loop is instrumented through :mod:`repro.obs` (off by default): with
observability enabled, every epoch runs inside a ``train.epoch`` span and
emits per-step wall time, total loss, and pre-clip gradient norm
histograms, per-epoch loss-component gauges, and attempted/skipped step
counters — see ``docs/metrics.md`` for the catalogue. Disabled, the only
cost is one flag check per step; the recorded :class:`TrainingHistory` is
identical either way.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.losses import LightLTCriterion, LossConfig
from repro.core.model import LightLT, LightLTConfig
from repro.core.warmstart import warm_start_codebooks
from repro.data.datasets import RetrievalDataset
from repro.data.loader import DataLoader
from repro.data.longtail import class_counts
from repro.nn import AdamW, ConstantLR, CosineAnnealingLR, LinearWarmupLR, Module, Tensor
from repro.obs import get_obs
from repro.obs import names as metric_names
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.errors import IncompatibleStateError
from repro.retrieval.metrics import mean_average_precision
from repro.rng import make_rng, spawn

SCHEDULES = ("cosine", "linear_warmup", "constant")

SESSION_FORMAT_VERSION = 1


@dataclass(frozen=True)
class TrainingConfig:
    """Optimisation hyper-parameters."""

    epochs: int = 20
    batch_size: int = 64
    learning_rate: float = 2e-3
    weight_decay: float = 1e-2
    schedule: str = "cosine"
    warmup_fraction: float = 0.1
    max_grad_norm: float | None = 5.0
    warm_start: bool = True  # residual k-means codebook initialisation
    # The paper fine-tunes its pre-trained backbone at LR 5e-5 while the
    # quantization module adapts far faster; this scale reproduces that
    # two-speed optimisation (backbone LR = learning_rate × scale).
    backbone_lr_scale: float = 0.3
    # Run the training fast path: batched single-node DSQ kernel, fused
    # loss ops, and the flat-buffer AdamW. Same trajectory as the
    # reference path up to documented float tolerance (see
    # docs/architecture.md, "training fast path").
    fused: bool = False

    def __post_init__(self) -> None:
        if self.schedule not in SCHEDULES:
            raise ValueError(f"schedule must be one of {SCHEDULES}, got {self.schedule!r}")
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be positive")


@dataclass
class TrainingHistory:
    """Per-epoch mean loss terms recorded during a fit.

    ``events`` records runtime interventions — guard rollbacks, learning
    rate backoffs, skipped steps — so a training run's failure/recovery
    story is inspectable after the fact and survives checkpointing.
    """

    epochs: list[dict[str, float]] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)

    def last(self) -> dict[str, float]:
        if not self.epochs:
            raise RuntimeError("history is empty; call fit first")
        return self.epochs[-1]

    def series(self, key: str) -> list[float]:
        return [epoch[key] for epoch in self.epochs if key in epoch]


@dataclass
class TrainerHooks:
    """Optional instrumentation points in the epoch loop.

    ``transform_loss(epoch, step, value)`` may replace the scalar loss seen
    by the non-finite guard — the fault-injection harness uses it to poison
    chosen steps. ``after_epoch(epoch, session)`` runs after an epoch's
    checkpoint is written; raising from it simulates a crash between
    epochs.
    """

    transform_loss: Callable[[int, int, float], float] | None = None
    after_epoch: Callable[[int, "TrainingSession"], None] | None = None


@dataclass
class EpochReport:
    """What :meth:`TrainingSession.run_epoch` observed in one epoch."""

    terms: dict[str, float]
    skipped_steps: int
    grad_norm_max: float

    @property
    def healthy(self) -> bool:
        """True when every step updated and every recorded term is finite."""
        return self.skipped_steps == 0 and all(
            math.isfinite(v) for v in self.terms.values()
        )


def clip_gradients(params, max_norm: float, flat_grad: np.ndarray | None = None) -> float:
    """Scale gradients so their global ℓ2 norm is at most ``max_norm``.

    A non-finite global norm (a NaN or Inf anywhere in the gradients) would
    propagate a NaN scale into *every* gradient; instead the step is zeroed
    — all gradients set to 0 so a subsequent optimiser step is harmless —
    and the non-finite norm is returned so the caller can surface the event.

    ``flat_grad`` (the fused optimiser's gradient arena, of which every
    ``param.grad`` is a view) lets both the norm and the scale run as one
    whole-arena op instead of a per-parameter loop; the result differs from
    the loop only in floating-point summation order.
    """
    if flat_grad is not None:
        norm = float(np.sqrt(float((flat_grad * flat_grad).sum())))
        if not math.isfinite(norm):
            flat_grad[...] = 0.0
            return norm
        if norm > max_norm > 0:
            flat_grad *= max_norm / norm
        return norm
    total_sq = 0.0
    for param in params:
        if param.grad is not None:
            total_sq += float((param.grad**2).sum())
    norm = float(np.sqrt(total_sq))
    if not math.isfinite(norm):
        for param in params:
            if param.grad is not None:
                param.grad[...] = 0.0
        return norm
    if norm > max_norm > 0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm


def _module_rng_states(module: Module) -> dict[str, dict]:
    """Snapshot every forward-time generator in a module tree (dropout).

    Keyed by traversal position, which is deterministic for a fixed
    architecture — sufficient for restoring into an identically-built model.
    """
    states = {}
    for i, sub in enumerate(module.modules()):
        rng = getattr(sub, "_rng", None)
        if isinstance(rng, np.random.Generator):
            states[str(i)] = rng.bit_generator.state
    return states


def _restore_module_rng_states(module: Module, states: dict[str, dict]) -> None:
    own = {}
    for i, sub in enumerate(module.modules()):
        rng = getattr(sub, "_rng", None)
        if isinstance(rng, np.random.Generator):
            own[str(i)] = rng
    if set(own) != set(states):
        raise IncompatibleStateError(
            f"module RNG layout mismatch: checkpoint has generators at "
            f"{sorted(states)}, model has them at {sorted(own)}"
        )
    for key, rng in own.items():
        rng.bit_generator.state = states[key]


class TrainingSession:
    """The complete mutable state of one training run.

    Everything that changes during ``fit`` lives here — model, criterion,
    optimiser moments, scheduler position, data-loader and dropout RNGs,
    and the recorded history — so a session can be advanced one epoch at a
    time, serialised after any epoch, and reconstructed bit-exactly.
    """

    def __init__(
        self,
        trainer: "Trainer",
        model: LightLT,
        criterion: LightLTCriterion,
        optimizer: AdamW,
        scheduler,
        loader: DataLoader,
        flat_params: list,
        num_epochs: int,
    ):
        self.trainer = trainer
        self.model = model
        self.criterion = criterion
        self.optimizer = optimizer
        self.scheduler = scheduler
        self.loader = loader
        self.flat_params = flat_params
        self.num_epochs = num_epochs
        self.history = TrainingHistory()

    @property
    def epochs_completed(self) -> int:
        return len(self.history.epochs)

    @property
    def finished(self) -> bool:
        return self.epochs_completed >= self.num_epochs

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def run_epoch(self, hooks: TrainerHooks | None = None) -> EpochReport:
        """Advance one epoch; returns what happened.

        Each step's loss is checked *before* backprop: a non-finite loss
        (or a non-finite gradient norm caught by :func:`clip_gradients`)
        skips the parameter update for that batch instead of poisoning the
        weights. The scheduler still advances on skipped steps so the LR
        trajectory stays deterministic. Skipped steps are excluded from the
        epoch's recorded means and counted in the report.
        """
        config = self.trainer.training_config
        epoch = self.epochs_completed
        epoch_terms: dict[str, list[float]] = {}
        skipped = 0
        grad_norm_max = 0.0
        obs = get_obs()
        epoch_start = time.perf_counter() if obs.enabled else 0.0
        if obs.enabled:
            # Resolved once per epoch; the per-step loop only calls
            # observe()/inc() on the instruments.
            registry = obs.registry
            step_time_hist = registry.histogram(metric_names.TRAIN_STEP_TIME)
            step_loss_hist = registry.histogram(metric_names.TRAIN_STEP_LOSS)
            grad_norm_hist = registry.histogram(metric_names.TRAIN_STEP_GRAD_NORM)
            steps_counter = registry.counter(metric_names.TRAIN_STEPS_TOTAL)
            skipped_counter = registry.counter(metric_names.TRAIN_STEPS_SKIPPED)
        with obs.span("train.epoch", epoch=epoch):
            for step, (features, labels) in enumerate(self.loader):
                step_start = time.perf_counter() if obs.enabled else 0.0
                self.optimizer.zero_grad()
                output = self.model(Tensor(features))
                breakdown = self.criterion(
                    output.logits, output.quantized, labels, embedding=output.embedding
                )
                total_value = float(breakdown.total.data)
                if hooks is not None and hooks.transform_loss is not None:
                    total_value = float(hooks.transform_loss(epoch, step, total_value))
                step_ok = math.isfinite(total_value)
                norm = math.nan
                if step_ok:
                    breakdown.total.backward()
                    if config.max_grad_norm is not None:
                        # The fused optimiser's arena holds every managed
                        # gradient contiguously; zero_grad() at the top of
                        # the step re-synced the views, so the whole-arena
                        # clip sees exactly flat_params' gradients.
                        flat_grad = (
                            self.optimizer._flat_grad
                            if getattr(self.optimizer, "fused", False)
                            else None
                        )
                        norm = clip_gradients(
                            self.flat_params,
                            config.max_grad_norm,
                            flat_grad=flat_grad,
                        )
                        if math.isfinite(norm):
                            grad_norm_max = max(grad_norm_max, norm)
                        else:
                            step_ok = False  # clip_gradients zeroed the gradients
                if step_ok:
                    self.optimizer.step()
                else:
                    skipped += 1
                    self.optimizer.zero_grad()
                self.scheduler.step()
                if step_ok:
                    for key, value in breakdown.to_floats().items():
                        epoch_terms.setdefault(key, []).append(value)
                if obs.enabled:
                    step_time_hist.observe(time.perf_counter() - step_start)
                    steps_counter.inc()
                    if not step_ok:
                        skipped_counter.inc()
                    if math.isfinite(total_value):
                        step_loss_hist.observe(total_value)
                    if math.isfinite(norm):
                        grad_norm_hist.observe(norm)
        if epoch_terms:
            terms = {key: float(np.mean(values)) for key, values in epoch_terms.items()}
        else:
            terms = {"total": float("nan")}  # every step was skipped
        self.history.epochs.append(terms)
        if obs.enabled:
            obs.registry.histogram(metric_names.TRAIN_EPOCH_TIME).observe(
                time.perf_counter() - epoch_start
            )
            for key, value in terms.items():
                obs.registry.gauge(
                    metric_names.TRAIN_EPOCH_LOSS_PREFIX + key
                ).set(value)
        return EpochReport(
            terms=terms, skipped_steps=skipped, grad_norm_max=grad_norm_max
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def capture(self) -> dict:
        """Serialise the session into a checkpointable state tree."""
        return {
            "format": SESSION_FORMAT_VERSION,
            "epoch": self.epochs_completed,
            "seed": self.trainer.seed,
            "num_epochs": self.num_epochs,
            "model": self.model.state_dict(),
            "criterion": self.criterion.state_dict(),
            "optimizer": self.optimizer.state_dict(),
            "scheduler": self.scheduler.state_dict(),
            "rng": {
                "loader": self.loader.rng_state(),
                "model": _module_rng_states(self.model),
                "criterion": _module_rng_states(self.criterion),
            },
            "history": {
                "epochs": [dict(e) for e in self.history.epochs],
                "events": [dict(e) for e in self.history.events],
            },
        }

    def restore(self, state: dict) -> None:
        """Load a state tree produced by :meth:`capture`.

        Raises :class:`IncompatibleStateError` when the checkpoint belongs
        to a differently-configured run (other seed, horizon, architecture,
        or parameter shapes) — resuming across such a change could not be
        bit-exact, so it is refused loudly.
        """
        try:
            fmt = int(state.get("format", SESSION_FORMAT_VERSION))
            if fmt != SESSION_FORMAT_VERSION:
                raise IncompatibleStateError(
                    f"unsupported session format {fmt} "
                    f"(expected {SESSION_FORMAT_VERSION})"
                )
            if int(state["seed"]) != self.trainer.seed:
                raise IncompatibleStateError(
                    f"checkpoint was written by a run with seed "
                    f"{int(state['seed'])}, this run uses seed "
                    f"{self.trainer.seed}; resuming would not be reproducible"
                )
            if int(state["num_epochs"]) != self.num_epochs:
                raise IncompatibleStateError(
                    f"checkpoint expects a {int(state['num_epochs'])}-epoch "
                    f"run, this run has {self.num_epochs} epochs"
                )
            self.model.load_state_dict(state["model"])
            self.criterion.load_state_dict(state["criterion"])
            self.optimizer.load_state_dict(state["optimizer"])
            self.scheduler.load_state_dict(state["scheduler"])
            self.loader.set_rng_state(state["rng"]["loader"])
            _restore_module_rng_states(self.model, state["rng"]["model"])
            _restore_module_rng_states(self.criterion, state["rng"]["criterion"])
            history = state["history"]
            self.history.epochs = [dict(e) for e in history["epochs"]]
            self.history.events = [dict(e) for e in history["events"]]
        except IncompatibleStateError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise IncompatibleStateError(
                f"checkpoint does not fit this training session: {exc}"
            ) from exc


class Trainer:
    """Trains one LightLT model end to end on a long-tail dataset."""

    def __init__(
        self,
        model_config: LightLTConfig,
        loss_config: LossConfig = LossConfig(),
        training_config: TrainingConfig = TrainingConfig(),
        seed: int = 0,
    ):
        self.model_config = model_config
        self.loss_config = loss_config
        self.training_config = training_config
        self.seed = seed

    def build(self, dataset: RetrievalDataset) -> tuple[LightLT, LightLTCriterion]:
        """Instantiate a fresh model + criterion for ``dataset``."""
        rng = make_rng(self.seed)
        model_rng, criterion_rng, _ = spawn(rng, 3)
        model = LightLT(self.model_config, rng=model_rng)
        criterion = LightLTCriterion(
            num_classes=dataset.num_classes,
            dim=self.model_config.embed_dim,
            train_class_counts=class_counts(dataset.train.labels, dataset.num_classes),
            config=self.loss_config,
            rng=criterion_rng,
        )
        return model, criterion

    def start_session(
        self,
        dataset: RetrievalDataset,
        model: LightLT | None = None,
        criterion: LightLTCriterion | None = None,
        trainable_params: list | None = None,
        epochs: int | None = None,
        run_warm_start: bool | None = None,
    ) -> TrainingSession:
        """Build model/criterion/optimiser/loader and return a fresh session.

        This is ``fit`` minus the epoch loop: the fault-tolerant runtime
        (checkpoint resume, guarded training) drives the returned session
        itself.
        """
        config = self.training_config
        built_here = model is None or criterion is None
        if built_here:
            model, criterion = self.build(dataset)
        if config.fused:
            # One switch turns on the whole fast path; an externally-built
            # model/criterion is adopted rather than rebuilt, so the flags
            # are set directly (never force-disabled for a caller that
            # enabled them independently).
            model.dsq.fused = True
            criterion.fused = True
            if hasattr(model.backbone, "fused"):
                model.backbone.fused = True
        if run_warm_start is None:
            run_warm_start = built_here and config.warm_start
        if run_warm_start:
            warm_start_codebooks(
                model, dataset.train.features, rng=spawn(make_rng(self.seed), 3)[2]
            )
            warm_start_prototypes(model, criterion, dataset)
        model.train()
        if trainable_params is not None:
            flat_params = list(trainable_params)
            groups = flat_params
        else:
            backbone_params = model.backbone.parameters()
            other_params = (
                model.dsq.parameters()
                + model.classifier.parameters()
                + criterion.parameters()
            )
            flat_params = backbone_params + other_params
            groups = [
                {"params": backbone_params, "lr_scale": config.backbone_lr_scale},
                {"params": other_params, "lr_scale": 1.0},
            ]
        optimizer = AdamW(
            groups,
            lr=config.learning_rate,
            weight_decay=config.weight_decay,
            fused=config.fused,
        )
        num_epochs = epochs if epochs is not None else config.epochs
        loader = DataLoader(
            dataset.train,
            batch_size=config.batch_size,
            rng=spawn(make_rng(self.seed), 2)[1],
        )
        total_steps = max(len(loader) * num_epochs, 1)
        scheduler = self._make_scheduler(optimizer, total_steps)
        return TrainingSession(
            trainer=self,
            model=model,
            criterion=criterion,
            optimizer=optimizer,
            scheduler=scheduler,
            loader=loader,
            flat_params=flat_params,
            num_epochs=num_epochs,
        )

    def fit(
        self,
        dataset: RetrievalDataset,
        model: LightLT | None = None,
        criterion: LightLTCriterion | None = None,
        trainable_params: list | None = None,
        epochs: int | None = None,
        run_warm_start: bool | None = None,
        checkpoint_dir: str | None = None,
        resume: bool = False,
        keep_checkpoints: int = 3,
        hooks: TrainerHooks | None = None,
    ) -> tuple[LightLT, LightLTCriterion, TrainingHistory]:
        """Run the optimisation loop; returns (model, criterion, history).

        ``trainable_params`` restricts optimisation to a parameter subset —
        the hook the ensemble fine-tuning step uses to update only the DSQ
        module (§III-E). ``run_warm_start`` forces or suppresses the
        codebook/prototype warm start; by default it runs only for
        freshly-built models.

        With ``checkpoint_dir`` set, the full session state is written
        atomically after every epoch (keeping the newest
        ``keep_checkpoints`` files); ``resume=True`` then continues an
        interrupted run bit-exactly from the newest valid checkpoint,
        falling back past corrupt ones.
        """
        if resume and checkpoint_dir is None:
            raise ValueError("resume=True requires checkpoint_dir")
        session = self.start_session(
            dataset,
            model=model,
            criterion=criterion,
            trainable_params=trainable_params,
            epochs=epochs,
            run_warm_start=run_warm_start,
        )
        manager = None
        if checkpoint_dir is not None:
            manager = CheckpointManager(checkpoint_dir, keep=keep_checkpoints)
            if resume:
                state = manager.load_latest_valid()
                if state is not None:
                    session.restore(state)
        while not session.finished:
            session.run_epoch(hooks=hooks)
            if manager is not None:
                manager.save(session.capture())
            if hooks is not None and hooks.after_epoch is not None:
                hooks.after_epoch(session.epochs_completed - 1, session)
        session.model.eval()
        return session.model, session.criterion, session.history

    def _make_scheduler(self, optimizer: AdamW, total_steps: int):
        config = self.training_config
        warmup = int(config.warmup_fraction * total_steps)
        if config.schedule == "cosine":
            return CosineAnnealingLR(optimizer, total_steps)
        if config.schedule == "linear_warmup":
            return LinearWarmupLR(optimizer, total_steps, warmup_steps=warmup)
        return ConstantLR(optimizer, total_steps)


def warm_start_prototypes(
    model: LightLT,
    criterion: LightLTCriterion,
    dataset: RetrievalDataset,
) -> None:
    """Initialise the class prototypes ``z_c`` at the embedding class means.

    Random prototypes start near the origin while embeddings live at the
    class-separation radius, so the center/ranking losses would initially
    drag the whole representation toward zero. Class-mean initialisation
    makes both losses pull in the intended direction from step one.
    """
    embeddings = model.embed(dataset.train.features)
    for class_id in range(dataset.num_classes):
        mask = dataset.train.labels == class_id
        if mask.any():
            criterion.prototypes.data[class_id] = embeddings[mask].mean(axis=0)
    model.train()


def evaluate_map(
    model: LightLT,
    dataset: RetrievalDataset,
    cutoff: int | None = None,
) -> float:
    """Retrieval MAP of a trained model on a dataset (§V-A3 protocol).

    The database split is quantized and indexed; queries are embedded (kept
    continuous) and ranked against it with ADC lookup tables; relevance is
    label equality over the full database ranking.
    """
    index = model.build_index(dataset.database.features, labels=dataset.database.labels)
    ranked_labels = model.search_ranked_labels(dataset.query.features, index)
    return mean_average_precision(ranked_labels, dataset.query.labels, cutoff=cutoff)


def train_lightlt(
    dataset: RetrievalDataset,
    model_config: LightLTConfig | None = None,
    loss_config: LossConfig = LossConfig(),
    training_config: TrainingConfig = TrainingConfig(),
    seed: int = 0,
    checkpoint_dir: str | None = None,
    resume: bool = False,
) -> tuple[LightLT, TrainingHistory]:
    """Convenience one-call training entry point used by examples/benches."""
    if model_config is None:
        model_config = LightLTConfig(
            input_dim=dataset.dim, num_classes=dataset.num_classes
        )
    trainer = Trainer(model_config, loss_config, training_config, seed=seed)
    model, _, history = trainer.fit(
        dataset, checkpoint_dir=checkpoint_dir, resume=resume
    )
    return model, history
