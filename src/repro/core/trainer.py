"""Training loop for LightLT (Algorithm 1, lines 2-6).

One :class:`Trainer` owns a model, its criterion (which carries the class
prototypes), an AdamW optimiser over both, and a learning-rate schedule —
cosine annealing for the image profiles, linear-with-warmup for text, as in
§V-A4. :func:`evaluate_map` implements the retrieval evaluation protocol:
index the database with the model's codes, rank it for each query with ADC
lookups, and score MAP.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.losses import LightLTCriterion, LossConfig
from repro.core.model import LightLT, LightLTConfig
from repro.core.warmstart import warm_start_codebooks
from repro.data.datasets import RetrievalDataset
from repro.data.loader import DataLoader
from repro.data.longtail import class_counts
from repro.nn import AdamW, ConstantLR, CosineAnnealingLR, LinearWarmupLR, Tensor
from repro.retrieval.metrics import mean_average_precision
from repro.rng import make_rng, spawn

SCHEDULES = ("cosine", "linear_warmup", "constant")


@dataclass(frozen=True)
class TrainingConfig:
    """Optimisation hyper-parameters."""

    epochs: int = 20
    batch_size: int = 64
    learning_rate: float = 2e-3
    weight_decay: float = 1e-2
    schedule: str = "cosine"
    warmup_fraction: float = 0.1
    max_grad_norm: float | None = 5.0
    warm_start: bool = True  # residual k-means codebook initialisation
    # The paper fine-tunes its pre-trained backbone at LR 5e-5 while the
    # quantization module adapts far faster; this scale reproduces that
    # two-speed optimisation (backbone LR = learning_rate × scale).
    backbone_lr_scale: float = 0.3

    def __post_init__(self) -> None:
        if self.schedule not in SCHEDULES:
            raise ValueError(f"schedule must be one of {SCHEDULES}, got {self.schedule!r}")
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be positive")


@dataclass
class TrainingHistory:
    """Per-epoch mean loss terms recorded during a fit."""

    epochs: list[dict[str, float]] = field(default_factory=list)

    def last(self) -> dict[str, float]:
        if not self.epochs:
            raise RuntimeError("history is empty; call fit first")
        return self.epochs[-1]

    def series(self, key: str) -> list[float]:
        return [epoch[key] for epoch in self.epochs if key in epoch]


def clip_gradients(params, max_norm: float) -> float:
    """Scale gradients so their global ℓ2 norm is at most ``max_norm``."""
    total_sq = 0.0
    for param in params:
        if param.grad is not None:
            total_sq += float((param.grad**2).sum())
    norm = float(np.sqrt(total_sq))
    if norm > max_norm > 0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm


class Trainer:
    """Trains one LightLT model end to end on a long-tail dataset."""

    def __init__(
        self,
        model_config: LightLTConfig,
        loss_config: LossConfig = LossConfig(),
        training_config: TrainingConfig = TrainingConfig(),
        seed: int = 0,
    ):
        self.model_config = model_config
        self.loss_config = loss_config
        self.training_config = training_config
        self.seed = seed

    def build(self, dataset: RetrievalDataset) -> tuple[LightLT, LightLTCriterion]:
        """Instantiate a fresh model + criterion for ``dataset``."""
        rng = make_rng(self.seed)
        model_rng, criterion_rng, _ = spawn(rng, 3)
        model = LightLT(self.model_config, rng=model_rng)
        criterion = LightLTCriterion(
            num_classes=dataset.num_classes,
            dim=self.model_config.embed_dim,
            train_class_counts=class_counts(dataset.train.labels, dataset.num_classes),
            config=self.loss_config,
            rng=criterion_rng,
        )
        return model, criterion

    def fit(
        self,
        dataset: RetrievalDataset,
        model: LightLT | None = None,
        criterion: LightLTCriterion | None = None,
        trainable_params: list | None = None,
        epochs: int | None = None,
        run_warm_start: bool | None = None,
    ) -> tuple[LightLT, LightLTCriterion, TrainingHistory]:
        """Run the optimisation loop; returns (model, criterion, history).

        ``trainable_params`` restricts optimisation to a parameter subset —
        the hook the ensemble fine-tuning step uses to update only the DSQ
        module (§III-E). ``run_warm_start`` forces or suppresses the
        codebook/prototype warm start; by default it runs only for
        freshly-built models.
        """
        config = self.training_config
        built_here = model is None or criterion is None
        if built_here:
            model, criterion = self.build(dataset)
        if run_warm_start is None:
            run_warm_start = built_here and config.warm_start
        if run_warm_start:
            warm_start_codebooks(
                model, dataset.train.features, rng=spawn(make_rng(self.seed), 3)[2]
            )
            warm_start_prototypes(model, criterion, dataset)
        model.train()
        if trainable_params is not None:
            flat_params = list(trainable_params)
            groups = flat_params
        else:
            backbone_params = model.backbone.parameters()
            other_params = (
                model.dsq.parameters()
                + model.classifier.parameters()
                + criterion.parameters()
            )
            flat_params = backbone_params + other_params
            groups = [
                {"params": backbone_params, "lr_scale": config.backbone_lr_scale},
                {"params": other_params, "lr_scale": 1.0},
            ]
        optimizer = AdamW(
            groups, lr=config.learning_rate, weight_decay=config.weight_decay
        )
        num_epochs = epochs if epochs is not None else config.epochs
        loader = DataLoader(
            dataset.train,
            batch_size=config.batch_size,
            rng=spawn(make_rng(self.seed), 2)[1],
        )
        total_steps = max(len(loader) * num_epochs, 1)
        scheduler = self._make_scheduler(optimizer, total_steps)

        history = TrainingHistory()
        for _ in range(num_epochs):
            epoch_terms: dict[str, list[float]] = {}
            for features, labels in loader:
                optimizer.zero_grad()
                output = model(Tensor(features))
                breakdown = criterion(
                    output.logits, output.quantized, labels, embedding=output.embedding
                )
                breakdown.total.backward()
                if config.max_grad_norm is not None:
                    clip_gradients(flat_params, config.max_grad_norm)
                optimizer.step()
                scheduler.step()
                for key, value in breakdown.to_floats().items():
                    epoch_terms.setdefault(key, []).append(value)
            history.epochs.append(
                {key: float(np.mean(values)) for key, values in epoch_terms.items()}
            )
        model.eval()
        return model, criterion, history

    def _make_scheduler(self, optimizer: AdamW, total_steps: int):
        config = self.training_config
        warmup = int(config.warmup_fraction * total_steps)
        if config.schedule == "cosine":
            return CosineAnnealingLR(optimizer, total_steps)
        if config.schedule == "linear_warmup":
            return LinearWarmupLR(optimizer, total_steps, warmup_steps=warmup)
        return ConstantLR(optimizer, total_steps)


def warm_start_prototypes(
    model: LightLT,
    criterion: LightLTCriterion,
    dataset: RetrievalDataset,
) -> None:
    """Initialise the class prototypes ``z_c`` at the embedding class means.

    Random prototypes start near the origin while embeddings live at the
    class-separation radius, so the center/ranking losses would initially
    drag the whole representation toward zero. Class-mean initialisation
    makes both losses pull in the intended direction from step one.
    """
    embeddings = model.embed(dataset.train.features)
    for class_id in range(dataset.num_classes):
        mask = dataset.train.labels == class_id
        if mask.any():
            criterion.prototypes.data[class_id] = embeddings[mask].mean(axis=0)
    model.train()


def evaluate_map(
    model: LightLT,
    dataset: RetrievalDataset,
    cutoff: int | None = None,
) -> float:
    """Retrieval MAP of a trained model on a dataset (§V-A3 protocol).

    The database split is quantized and indexed; queries are embedded (kept
    continuous) and ranked against it with ADC lookup tables; relevance is
    label equality over the full database ranking.
    """
    index = model.build_index(dataset.database.features, labels=dataset.database.labels)
    ranked_labels = model.search_ranked_labels(dataset.query.features, index)
    return mean_average_precision(ranked_labels, dataset.query.labels, cutoff=cutoff)


def train_lightlt(
    dataset: RetrievalDataset,
    model_config: LightLTConfig | None = None,
    loss_config: LossConfig = LossConfig(),
    training_config: TrainingConfig = TrainingConfig(),
    seed: int = 0,
) -> tuple[LightLT, TrainingHistory]:
    """Convenience one-call training entry point used by examples/benches."""
    if model_config is None:
        model_config = LightLTConfig(
            input_dim=dataset.dim, num_classes=dataset.num_classes
        )
    trainer = Trainer(model_config, loss_config, training_config, seed=seed)
    model, _, history = trainer.fit(dataset)
    return model, history
