"""Double Skip Quantization (§III-C).

The DSQ module composes ``M`` encoder-decoder pairs with two skip
connections:

1. *Residual skip between pairs* (Eqn. 2): encoder ``k`` quantizes the
   residual ``f(x) - Σ_{j<k} o^j`` rather than the raw input, forcing the
   pairs to capture complementary information.
2. *Codebook skip* (Eqn. 10, in :mod:`repro.core.codebook`): codebook ``k``
   is a gated transform of codebook ``k-1`` plus its own table, which keeps
   gradients alive across many levels (Eqn. 11).

Ablation switches reproduce the paper's comparisons: ``use_codebook_skip``
off gives the "vanilla residual mechanism" of Table IV; ``topology`` set to
``"independent"`` removes the first skip entirely (every encoder sees the
raw input), matching the redundant design the paper criticises after
Eqn. (2)'s introduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.codebook import CodebookChain
from repro.core.quantize import quantize_step
from repro.nn import Module, Tensor, no_grad, stable_softmax_array
from repro.nn.autograd import accumulate_grad

TOPOLOGIES = ("residual", "independent")

# Similarities the fused kernel implements; ``cosine`` falls back to the
# per-codebook reference loop (it is not used by any training profile).
FUSED_SIMILARITIES = ("neg_l2", "dot")


@dataclass
class DSQOutput:
    """Forward result of the DSQ module for a batch.

    Attributes
    ----------
    codes:
        ``(n, M)`` hard codeword ids ``b_i`` (Eqn. 1).
    reconstruction:
        ``(n, d)`` additive reconstruction ``o_i = Σ_k o_i^k``.
    level_outputs:
        Per-level decoded tensors ``o^k`` (list of ``(n, d)``).
    soft_assignments:
        Per-level tempered-softmax matrices (list of ``(n, K)``).
    """

    codes: np.ndarray
    reconstruction: Tensor
    level_outputs: list[Tensor]
    soft_assignments: list[Tensor]
    # Note: with the fused kernel, ``level_outputs`` and ``soft_assignments``
    # are detached diagnostic tensors — only ``reconstruction`` carries
    # gradients (as one node covering all M levels).


class DSQ(Module):
    """The Double Skip Quantization module.

    Parameters
    ----------
    num_codebooks, num_codewords, dim:
        ``M``, ``K``, ``d`` of the paper.
    temperature:
        Softmax temperature ``t`` of Eqn. (5).
    similarity:
        Codeword similarity function ``s`` of Eqn. (3).
    use_codebook_skip:
        Toggle for the second skip (Eqn. 10). Off = vanilla residual.
    topology:
        ``"residual"`` applies the first skip (Eqn. 2); ``"independent"``
        feeds the raw input to every encoder.
    fused:
        When ``True``, :meth:`forward` runs the batched single-node kernel
        (all ``M`` levels stacked into ``(M, B, ·)`` arrays with one fused
        tempered-softmax + straight-through backward) instead of the
        per-codebook tensor-op loop. Values agree with the reference path
        up to the ~1e-16 residue the tape's quasi-one-hot assignment
        carries into its decode matmul; ``cosine`` similarity always uses
        the reference loop.
    """

    def __init__(
        self,
        num_codebooks: int,
        num_codewords: int,
        dim: int,
        rng: np.random.Generator | int = 0,
        temperature: float = 1.0,
        similarity: str = "neg_l2",
        use_codebook_skip: bool = True,
        topology: str = "residual",
        ffn_hidden: int | None = None,
        init_std: float = 0.1,
        fused: bool = False,
    ):
        super().__init__()
        if topology not in TOPOLOGIES:
            raise ValueError(f"topology must be one of {TOPOLOGIES}, got {topology!r}")
        self.temperature = temperature
        self.similarity = similarity
        self.topology = topology
        self.fused = bool(fused)
        # Dict-wrapped so Module's attribute scan does not re-register the
        # chain's parameters under this module a second time.
        self._fused_cache: dict[str, tuple] = {}
        self.codebooks = CodebookChain(
            num_codebooks,
            num_codewords,
            dim,
            rng=rng,
            use_skip=use_codebook_skip,
            ffn_hidden=ffn_hidden,
            init_std=init_std,
        )

    @property
    def num_codebooks(self) -> int:
        return self.codebooks.num_codebooks

    @property
    def num_codewords(self) -> int:
        return self.codebooks.num_codewords

    @property
    def dim(self) -> int:
        return self.codebooks.dim

    def forward(self, embeddings: Tensor) -> DSQOutput:
        """Quantize a batch of continuous embeddings (Eqns. 2-7)."""
        if self.fused and self.similarity in FUSED_SIMILARITIES:
            return self._forward_fused(embeddings)
        materialized = self.codebooks.materialize()
        level_outputs: list[Tensor] = []
        soft_assignments: list[Tensor] = []
        codes = np.zeros((len(embeddings), self.num_codebooks), dtype=np.int64)

        reconstruction: Tensor | None = None
        for k, codebook in enumerate(materialized):
            if self.topology == "residual" and reconstruction is not None:
                encoder_input = embeddings - reconstruction
            else:
                encoder_input = embeddings
            step = quantize_step(
                encoder_input,
                codebook,
                temperature=self.temperature,
                similarity=self.similarity,
            )
            codes[:, k] = step.codes
            level_outputs.append(step.decoded)
            soft_assignments.append(step.soft_assignment)
            reconstruction = (
                step.decoded if reconstruction is None else reconstruction + step.decoded
            )

        assert reconstruction is not None  # M >= 1 guaranteed by CodebookChain
        return DSQOutput(
            codes=codes,
            reconstruction=reconstruction,
            level_outputs=level_outputs,
            soft_assignments=soft_assignments,
        )

    def _forward_fused(self, embeddings: Tensor) -> DSQOutput:
        """All ``M`` encoder-decoder passes as one autograd node.

        The forward runs in plain NumPy over the stacked ``(M, K, d)``
        codebook array — fully batched ``(M, B, K)`` einsums for the
        ``independent`` topology, a thin per-level loop over batched
        kernels for ``residual`` (whose inputs are sequentially dependent
        through Eqn. 2). The codebook chain itself is folded into the same
        node: :meth:`CodebookChain.materialize_stacked` runs Eqn. (10)
        without tape nodes and the backward closure routes the per-level
        codebook gradients straight into ``P_k`` / FFN / gate parameters
        via :meth:`CodebookChain.accumulate_stacked_grad`. The closure
        replays the straight-through convention level by level: the decode
        gradient scatters into the argmax rows of each codebook (as a
        one-hot matmul — faster than ``np.add.at``), while the encoder
        gradient flows through the tempered-softmax Jacobian exactly as the
        reference tape's ``soft + Sg(hard - soft)`` construction does.
        """
        chain = self.codebooks
        emb = embeddings.data
        n = len(emb)
        num_books, num_words = self.num_codebooks, self.num_codewords
        stacked, chain_cache = chain.materialize_stacked()  # (M, K, d)
        temperature = self.temperature
        inv_t = 1.0 / temperature
        use_dot = self.similarity == "dot"
        if not use_dot:
            # (C*C).sum, not einsum: mirrors the reference's pairwise
            # summation so scores (and argmax tie-breaks) match bit for bit.
            code_sq = (stacked * stacked).sum(axis=2)

        if self.topology == "residual":
            codes = np.empty((n, num_books), dtype=np.int64)
            inputs = np.empty((num_books, n, self.dim))
            soft = np.empty((num_books, n, num_words))
            levels = np.empty((num_books, n, self.dim))
            recon = np.zeros((n, self.dim))
            scores = np.empty((n, num_words))
            for k in range(num_books):
                # In-place score assembly keeps the reference op order per
                # element (cross·2 − ‖x‖² − ‖c‖²) while reusing one buffer.
                if k:
                    x = np.subtract(emb, recon, out=inputs[k])
                else:
                    x = inputs[0]
                    x[...] = emb
                np.matmul(x, stacked[k].T, out=scores)
                if not use_dot:
                    scores *= 2.0
                    scores -= (x * x).sum(axis=1, keepdims=True)
                    scores -= code_sq[k]
                stable_softmax_array(scores, temperature=temperature, out=soft[k])
                codes[:, k] = scores.argmax(axis=1)
                np.take(stacked[k], codes[:, k], axis=0, out=levels[k])
                recon += levels[k]
        else:  # independent: every level sees the raw input — batched arrays
            # Per-level GEMMs into one (M, B, K) buffer: same BLAS calls as
            # the reference loop, so scores stay bit-identical (einsum's
            # contraction order would drift by an ulp).
            scores = np.empty((num_books, n, num_words))
            for k in range(num_books):
                np.matmul(emb, stacked[k].T, out=scores[k])
            if not use_dot:
                scores *= 2.0
                scores -= (emb * emb).sum(axis=1)[None, :, None]
                scores -= code_sq[:, None, :]
            soft = stable_softmax_array(scores, temperature=temperature)
            codes_mb = scores.argmax(axis=-1)  # (M, B)
            codes = np.ascontiguousarray(codes_mb.T)
            inputs = None
            levels = stacked[np.arange(num_books)[:, None], codes_mb]  # (M, B, d)
            recon = levels.sum(axis=0)

        def backward(grad: np.ndarray) -> None:
            grad_books = np.zeros_like(stacked)
            rows = np.arange(n)
            if self.topology == "residual":
                # Walk levels in reverse, carrying the gradient that later
                # levels' residual inputs (x_j = e - Σ_{m<j} o_m) push back
                # onto earlier decodes. Scratch buffers are reused across
                # levels; gradients are tolerance-checked against the tape,
                # so reductions here are free to use einsum.
                grad_embedding = np.zeros_like(emb)
                onehot = np.empty((n, num_words))
                g_level = np.empty_like(emb)
                g_scores = np.empty((n, num_words))
                g_x = np.empty_like(emb)
                book_scratch = np.empty((num_words, self.dim))
                for k in range(num_books - 1, -1, -1):
                    np.subtract(grad, grad_embedding, out=g_level)
                    onehot[:] = 0.0
                    onehot[rows, codes[:, k]] = 1.0
                    np.matmul(onehot.T, g_level, out=book_scratch)
                    grad_books[k] += book_scratch
                    np.matmul(g_level, stacked[k].T, out=g_scores)
                    soft_k = soft[k]
                    inner = np.einsum("bk,bk->b", g_scores, soft_k)
                    g_scores -= inner[:, None]
                    g_scores *= soft_k
                    g_scores *= inv_t
                    if use_dot:
                        np.matmul(g_scores, stacked[k], out=g_x)
                        np.matmul(g_scores.T, inputs[k], out=book_scratch)
                        grad_books[k] += book_scratch
                    else:
                        np.matmul(g_scores, stacked[k], out=g_x)
                        g_x *= 2.0
                        g_x -= (2.0 * g_scores.sum(axis=1, keepdims=True)) * inputs[k]
                        np.matmul(g_scores.T, inputs[k], out=book_scratch)
                        book_scratch *= 2.0
                        book_scratch -= (2.0 * g_scores.sum(axis=0)[:, None]) * stacked[k]
                        grad_books[k] += book_scratch
                    grad_embedding += g_x
            else:
                onehot = np.zeros((num_books, n, num_words))
                onehot[np.arange(num_books)[:, None], rows[None, :], codes_mb] = 1.0
                grad_books += np.einsum("mbk,bd->mkd", onehot, grad)
                g_assign = np.einsum("bd,mkd->mbk", grad, stacked)
                g_scores = soft * (g_assign - (g_assign * soft).sum(axis=-1, keepdims=True))
                g_scores *= inv_t
                if use_dot:
                    grad_embedding = np.einsum("mbk,mkd->bd", g_scores, stacked)
                    grad_books += np.einsum("mbk,bd->mkd", g_scores, emb)
                else:
                    grad_embedding = 2.0 * np.einsum(
                        "mbk,mkd->bd", g_scores, stacked
                    ) - 2.0 * emb * g_scores.sum(axis=(0, 2))[:, None]
                    grad_books += 2.0 * np.einsum(
                        "mbk,bd->mkd", g_scores, emb
                    ) - 2.0 * stacked * g_scores.sum(axis=1)[:, :, None]
            if embeddings.requires_grad:
                accumulate_grad(embeddings, grad_embedding)
            chain.accumulate_stacked_grad(grad_books, chain_cache)

        params = self._fused_cache.get("chain")
        if params is None:
            params = self._fused_cache["chain"] = tuple(chain.parameters())
        reconstruction = Tensor._from_op(recon, (embeddings, *params), backward)
        return DSQOutput(
            codes=codes,
            reconstruction=reconstruction,
            level_outputs=[Tensor(levels[k]) for k in range(num_books)],
            soft_assignments=[Tensor(soft[k]) for k in range(num_books)],
        )

    def encode(self, embeddings: np.ndarray) -> np.ndarray:
        """Hard codes for raw feature rows, without building a graph.

        For the fused-eligible similarities this runs a dedicated batched
        inference kernel — the score assembly of :meth:`_forward_fused`
        minus the tempered softmax and the tape, over persistent scratch
        buffers and the version-cached stacked codebooks — so batch encode
        costs ``M`` GEMMs plus argmaxes and nothing else. Codes match
        :meth:`forward` under the same fused-vs-reference contract (exact
        op-order mirroring; ties agree up to the documented ~1e-16 STE
        residue of the reference decode).
        """
        emb = np.asarray(embeddings, dtype=np.float64)
        if self.similarity in FUSED_SIMILARITIES:
            return self._encode_fused(emb)
        with no_grad():
            output = self.forward(Tensor(emb))
        return output.codes

    def assignment_scores(self, embeddings: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-level pre-softmax scores ``(n, M, K)`` plus hard codes.

        The teacher side of query-encoder distillation: softmaxing the
        returned scores gives the codeword posteriors of Eqn. (5).
        Inference-only (no tape) and limited to the fused-eligible
        similarities.
        """
        emb = np.asarray(embeddings, dtype=np.float64)
        if self.similarity not in FUSED_SIMILARITIES:
            raise ValueError(
                f"assignment_scores supports similarities {FUSED_SIMILARITIES}, "
                f"got {self.similarity!r}"
            )
        scores = np.empty((len(emb), self.num_codebooks, self.num_codewords))
        codes = self._encode_fused(emb, scores_out=scores)
        return scores, codes

    def _encode_fused(
        self, emb: np.ndarray, scores_out: np.ndarray | None = None
    ) -> np.ndarray:
        """No-tape batched encode over cached stacked codebooks."""
        if emb.ndim != 2:
            raise ValueError(f"embeddings must be (n, d), got shape {emb.shape}")
        chain = self.codebooks
        n = len(emb)
        num_books, num_words, dim = self.num_codebooks, self.num_codewords, self.dim
        stacked = chain.materialize_cached()
        use_dot = self.similarity == "dot"
        cache = self._fused_cache
        code_sq = None
        if not use_dot:
            # ``code_sq`` is tied to the cached stack by identity: a chain
            # parameter update swaps the stack object, invalidating it.
            if cache.get("code_sq_for") is not stacked:
                cache["code_sq"] = (stacked * stacked).sum(axis=2)
                cache["code_sq_for"] = stacked
            code_sq = cache["code_sq"]
        scratch = cache.get("encode")
        if scratch is None or scratch["scores"].shape[0] != n:
            scratch = cache["encode"] = {
                "scores": np.empty((n, num_words)),
                "x": np.empty((n, dim)),
                "recon": np.empty((n, dim)),
                "level": np.empty((n, dim)),
            }
        codes = np.empty((n, num_books), dtype=np.int64)
        scores = scratch["scores"]
        if self.topology == "residual":
            x, recon, level = scratch["x"], scratch["recon"], scratch["level"]
            recon[...] = 0.0
            for k in range(num_books):
                if k:
                    np.subtract(emb, recon, out=x)
                else:
                    x[...] = emb
                np.matmul(x, stacked[k].T, out=scores)
                if not use_dot:
                    scores *= 2.0
                    scores -= (x * x).sum(axis=1, keepdims=True)
                    scores -= code_sq[k]
                codes[:, k] = scores.argmax(axis=1)
                if scores_out is not None:
                    scores_out[:, k] = scores
                np.take(stacked[k], codes[:, k], axis=0, out=level)
                recon += level
        else:  # independent: every level scores the raw input
            for k in range(num_books):
                np.matmul(emb, stacked[k].T, out=scores)
                if not use_dot:
                    scores *= 2.0
                    scores -= (emb * emb).sum(axis=1, keepdims=True)
                    scores -= code_sq[k]
                codes[:, k] = scores.argmax(axis=1)
                if scores_out is not None:
                    scores_out[:, k] = scores
        return codes

    def reconstruct(self, embeddings: np.ndarray) -> np.ndarray:
        """Quantize-then-decode as a plain array (compression round trip)."""
        with no_grad():
            output = self.forward(Tensor(np.asarray(embeddings, dtype=np.float64)))
        return output.reconstruction.data

    def materialized_codebooks(self) -> np.ndarray:
        """Effective ``(M, K, d)`` codebooks for index construction.

        Served from the chain's version-tagged cache; treat as read-only.
        """
        return self.codebooks.materialize_cached()

    def reconstruction_error(self, embeddings: np.ndarray) -> float:
        """Mean squared compression error over a feature matrix."""
        reconstruction = self.reconstruct(embeddings)
        return float(((embeddings - reconstruction) ** 2).mean())
