"""Double Skip Quantization (§III-C).

The DSQ module composes ``M`` encoder-decoder pairs with two skip
connections:

1. *Residual skip between pairs* (Eqn. 2): encoder ``k`` quantizes the
   residual ``f(x) - Σ_{j<k} o^j`` rather than the raw input, forcing the
   pairs to capture complementary information.
2. *Codebook skip* (Eqn. 10, in :mod:`repro.core.codebook`): codebook ``k``
   is a gated transform of codebook ``k-1`` plus its own table, which keeps
   gradients alive across many levels (Eqn. 11).

Ablation switches reproduce the paper's comparisons: ``use_codebook_skip``
off gives the "vanilla residual mechanism" of Table IV; ``topology`` set to
``"independent"`` removes the first skip entirely (every encoder sees the
raw input), matching the redundant design the paper criticises after
Eqn. (2)'s introduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.codebook import CodebookChain
from repro.core.quantize import quantize_step
from repro.nn import Module, Tensor, no_grad

TOPOLOGIES = ("residual", "independent")


@dataclass
class DSQOutput:
    """Forward result of the DSQ module for a batch.

    Attributes
    ----------
    codes:
        ``(n, M)`` hard codeword ids ``b_i`` (Eqn. 1).
    reconstruction:
        ``(n, d)`` additive reconstruction ``o_i = Σ_k o_i^k``.
    level_outputs:
        Per-level decoded tensors ``o^k`` (list of ``(n, d)``).
    soft_assignments:
        Per-level tempered-softmax matrices (list of ``(n, K)``).
    """

    codes: np.ndarray
    reconstruction: Tensor
    level_outputs: list[Tensor]
    soft_assignments: list[Tensor]


class DSQ(Module):
    """The Double Skip Quantization module.

    Parameters
    ----------
    num_codebooks, num_codewords, dim:
        ``M``, ``K``, ``d`` of the paper.
    temperature:
        Softmax temperature ``t`` of Eqn. (5).
    similarity:
        Codeword similarity function ``s`` of Eqn. (3).
    use_codebook_skip:
        Toggle for the second skip (Eqn. 10). Off = vanilla residual.
    topology:
        ``"residual"`` applies the first skip (Eqn. 2); ``"independent"``
        feeds the raw input to every encoder.
    """

    def __init__(
        self,
        num_codebooks: int,
        num_codewords: int,
        dim: int,
        rng: np.random.Generator | int = 0,
        temperature: float = 1.0,
        similarity: str = "neg_l2",
        use_codebook_skip: bool = True,
        topology: str = "residual",
        ffn_hidden: int | None = None,
        init_std: float = 0.1,
    ):
        super().__init__()
        if topology not in TOPOLOGIES:
            raise ValueError(f"topology must be one of {TOPOLOGIES}, got {topology!r}")
        self.temperature = temperature
        self.similarity = similarity
        self.topology = topology
        self.codebooks = CodebookChain(
            num_codebooks,
            num_codewords,
            dim,
            rng=rng,
            use_skip=use_codebook_skip,
            ffn_hidden=ffn_hidden,
            init_std=init_std,
        )

    @property
    def num_codebooks(self) -> int:
        return self.codebooks.num_codebooks

    @property
    def num_codewords(self) -> int:
        return self.codebooks.num_codewords

    @property
    def dim(self) -> int:
        return self.codebooks.dim

    def forward(self, embeddings: Tensor) -> DSQOutput:
        """Quantize a batch of continuous embeddings (Eqns. 2-7)."""
        materialized = self.codebooks.materialize()
        level_outputs: list[Tensor] = []
        soft_assignments: list[Tensor] = []
        codes = np.zeros((len(embeddings), self.num_codebooks), dtype=np.int64)

        reconstruction: Tensor | None = None
        for k, codebook in enumerate(materialized):
            if self.topology == "residual" and reconstruction is not None:
                encoder_input = embeddings - reconstruction
            else:
                encoder_input = embeddings
            step = quantize_step(
                encoder_input,
                codebook,
                temperature=self.temperature,
                similarity=self.similarity,
            )
            codes[:, k] = step.codes
            level_outputs.append(step.decoded)
            soft_assignments.append(step.soft_assignment)
            reconstruction = (
                step.decoded if reconstruction is None else reconstruction + step.decoded
            )

        assert reconstruction is not None  # M >= 1 guaranteed by CodebookChain
        return DSQOutput(
            codes=codes,
            reconstruction=reconstruction,
            level_outputs=level_outputs,
            soft_assignments=soft_assignments,
        )

    def encode(self, embeddings: np.ndarray) -> np.ndarray:
        """Hard codes for raw feature rows, without building a graph."""
        with no_grad():
            output = self.forward(Tensor(np.asarray(embeddings, dtype=np.float64)))
        return output.codes

    def reconstruct(self, embeddings: np.ndarray) -> np.ndarray:
        """Quantize-then-decode as a plain array (compression round trip)."""
        with no_grad():
            output = self.forward(Tensor(np.asarray(embeddings, dtype=np.float64)))
        return output.reconstruction.data

    def materialized_codebooks(self) -> np.ndarray:
        """Effective ``(M, K, d)`` codebooks for index construction."""
        return self.codebooks.materialize_arrays()

    def reconstruction_error(self, embeddings: np.ndarray) -> float:
        """Mean squared compression error over a feature matrix."""
        reconstruction = self.reconstruct(embeddings)
        return float(((embeddings - reconstruction) ** 2).mean())
