"""The differentiable quantization step (Eqns. 3-7).

Encoding selects, for each input vector, the most similar codeword of a
codebook. The hard ``argmax`` is non-differentiable, so training combines a
tempered softmax relaxation (Eqn. 5) with the Straight-Through Estimator
(Eqn. 6): the forward pass uses the exact one-hot code, the backward pass
flows through the softmax.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import Tensor, l2_normalize, one_hot, softmax, straight_through

SIMILARITIES = ("neg_l2", "dot", "cosine")


def codeword_similarities(inputs: Tensor, codebook: Tensor, similarity: str = "neg_l2") -> Tensor:
    """Similarity ``s(e, C[j])`` between each input row and each codeword.

    ``neg_l2`` (the paper's default, negative squared Euclidean distance)
    makes the encoder equivalent to nearest-codeword selection, which is
    what the ADC index assumes at inference time.
    """
    if similarity == "neg_l2":
        input_sq = (inputs * inputs).sum(axis=1, keepdims=True)
        code_sq = (codebook * codebook).sum(axis=1, keepdims=True)
        cross = inputs @ codebook.T
        return cross * 2.0 - input_sq - code_sq.T
    if similarity == "dot":
        return inputs @ codebook.T
    if similarity == "cosine":
        return l2_normalize(inputs, axis=1) @ l2_normalize(codebook, axis=1).T
    raise ValueError(f"similarity must be one of {SIMILARITIES}, got {similarity!r}")


@dataclass
class QuantizeStepOutput:
    """Result of quantizing a batch against one codebook.

    Attributes
    ----------
    codes:
        ``(n,)`` selected codeword ids (hard argmax).
    assignment:
        ``(n, K)`` straight-through assignment matrix: numerically one-hot,
        with softmax gradients.
    soft_assignment:
        ``(n, K)`` the tempered softmax itself (useful for diagnostics such
        as codebook-usage entropy).
    decoded:
        ``(n, d)`` decoder output ``C^T b`` (Eqn. 7).
    """

    codes: np.ndarray
    assignment: Tensor
    soft_assignment: Tensor
    decoded: Tensor


def quantize_step(
    inputs: Tensor,
    codebook: Tensor,
    temperature: float = 1.0,
    similarity: str = "neg_l2",
    hard: bool = True,
) -> QuantizeStepOutput:
    """One encoder-decoder pass (Eqns. 3-7).

    With ``hard=True`` (training and inference default) the forward value of
    the assignment is exactly one-hot thanks to the straight-through
    estimator; ``hard=False`` keeps the soft relaxation end to end, which is
    occasionally useful for analysis.
    """
    scores = codeword_similarities(inputs, codebook, similarity=similarity)
    soft = softmax(scores, axis=1, temperature=temperature)
    codes = scores.data.argmax(axis=1)
    if hard:
        hard_assignment = one_hot(codes, codebook.shape[0])
        assignment = straight_through(hard_assignment, soft)
    else:
        assignment = soft
    decoded = assignment @ codebook
    return QuantizeStepOutput(
        codes=codes,
        assignment=assignment,
        soft_assignment=soft,
        decoded=decoded,
    )


def codebook_usage(codes: np.ndarray, num_codewords: int) -> np.ndarray:
    """Fraction of inputs assigned to each codeword (dead-code diagnostic)."""
    counts = np.bincount(np.asarray(codes).reshape(-1), minlength=num_codewords)
    total = counts.sum()
    return counts / total if total else counts.astype(np.float64)


def usage_entropy(codes: np.ndarray, num_codewords: int) -> float:
    """Normalised entropy of codeword usage in [0, 1]; 1 = perfectly uniform.

    Low entropy signals codebook collapse — the failure mode the residual
    skip connection (first "skip" of DSQ) is designed to prevent.
    """
    usage = codebook_usage(codes, num_codewords)
    positive = usage[usage > 0]
    if len(positive) <= 1:
        return 0.0
    entropy = float(-(positive * np.log(positive)).sum())
    return entropy / np.log(num_codewords)
