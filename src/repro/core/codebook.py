"""Codebook chain with the second "skip" of Double Skip Quantization.

Eqn. (10) of the paper: ``C_k = FFN(C_{k-1}) · g_k + P_k`` where ``FFN`` is
a one-hidden-layer ReLU network applied row-wise, ``g_k`` is a learnable
scalar gate, and ``P_k`` is the level's own main codebook. The chain keeps
gradients flowing from late codebooks back to early ones (Eqn. 11), which
is what lets LightLT stack many encoder-decoder pairs without the softmax
gradients vanishing.

Setting ``use_skip=False`` yields independent codebooks ``C_k = P_k`` — the
"vanilla residual mechanism" ablated in Table IV.
"""

from __future__ import annotations

import numpy as np

from repro.nn import FeedForward, Module, Parameter, Tensor, no_grad
from repro.nn import init as nn_init
from repro.rng import make_rng, spawn


class CodebookChain(Module):
    """Learnable stack of ``M`` codebooks of ``K`` codewords each.

    Parameters
    ----------
    num_codebooks:
        ``M``, the number of encoder-decoder pairs.
    num_codewords:
        ``K``, rows per codebook.
    dim:
        ``d``, codeword dimensionality (matches the backbone output).
    rng:
        Seed or generator for initialisation.
    use_skip:
        Enable the Eqn. (10) codebook skip (True = DSQ, False = vanilla).
    ffn_hidden:
        Hidden width of the row-wise FFN; defaults to ``2·dim``.
    init_std:
        Standard deviation of the Gaussian codeword initialisation.
    """

    def __init__(
        self,
        num_codebooks: int,
        num_codewords: int,
        dim: int,
        rng: np.random.Generator | int = 0,
        use_skip: bool = True,
        ffn_hidden: int | None = None,
        init_std: float = 0.1,
    ):
        super().__init__()
        if num_codebooks < 1:
            raise ValueError("need at least one codebook")
        if num_codewords < 2:
            raise ValueError("need at least two codewords per codebook")
        rng = make_rng(rng)
        self.num_codebooks = num_codebooks
        self.num_codewords = num_codewords
        self.dim = dim
        self.use_skip = use_skip
        hidden = ffn_hidden or 2 * dim

        child_rngs = spawn(rng, num_codebooks + 1)
        self.main_codebooks = [
            Parameter(
                nn_init.normal((num_codewords, dim), child_rngs[k], std=init_std),
                name=f"P{k}",
            )
            for k in range(num_codebooks)
        ]
        if use_skip and num_codebooks > 1:
            # One FFN + gate per transition C_{k-1} -> C_k (k >= 2). The
            # FFN's output layer starts at zero and the gates at a small
            # positive value, so the skip is an exact no-op at
            # initialisation and opens gently: early training behaves like
            # the vanilla chain while the cross-codebook gradient path of
            # Eqn. (11) stays available.
            self.ffns = []
            for _ in range(num_codebooks - 1):
                ffn = FeedForward(dim, hidden, child_rngs[-1])
                ffn.fc2.weight.data[:] = 0.0
                self.ffns.append(ffn)
            self.gates = [
                Parameter(np.full(1, 0.1), name=f"g{k + 1}")
                for k in range(num_codebooks - 1)
            ]
        else:
            self.ffns = []
            self.gates = []

    def materialize(self) -> list[Tensor]:
        """Effective codebooks ``[C_1, ..., C_M]`` as autograd tensors.

        ``C_1 = P_1`` and, with the skip enabled,
        ``C_k = FFN_k(C_{k-1}) · g_k + P_k``.
        """
        codebooks: list[Tensor] = [self.main_codebooks[0]]
        for k in range(1, self.num_codebooks):
            if self.use_skip:
                transformed = self.ffns[k - 1](codebooks[k - 1])
                codebook = transformed * self.gates[k - 1] + self.main_codebooks[k]
            else:
                codebook = self.main_codebooks[k]
            codebooks.append(codebook)
        return codebooks

    def materialize_arrays(self) -> np.ndarray:
        """Effective codebooks as a plain ``(M, K, d)`` array (inference)."""
        with no_grad():
            stacked = [c.data.copy() for c in self.materialize()]
        return np.stack(stacked, axis=0)

    def gate_values(self) -> np.ndarray:
        """Current scalar gate values ``g_2..g_M`` (empty when no skip)."""
        return np.array([float(g.data[0]) for g in self.gates])
