"""Codebook chain with the second "skip" of Double Skip Quantization.

Eqn. (10) of the paper: ``C_k = FFN(C_{k-1}) · g_k + P_k`` where ``FFN`` is
a one-hidden-layer ReLU network applied row-wise, ``g_k`` is a learnable
scalar gate, and ``P_k`` is the level's own main codebook. The chain keeps
gradients flowing from late codebooks back to early ones (Eqn. 11), which
is what lets LightLT stack many encoder-decoder pairs without the softmax
gradients vanishing.

Setting ``use_skip=False`` yields independent codebooks ``C_k = P_k`` — the
"vanilla residual mechanism" ablated in Table IV.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.nn import FeedForward, Module, Parameter, Tensor, no_grad
from repro.nn import init as nn_init
from repro.nn.autograd import accumulate_grad
from repro.rng import make_rng, spawn


class CodebookChain(Module):
    """Learnable stack of ``M`` codebooks of ``K`` codewords each.

    Parameters
    ----------
    num_codebooks:
        ``M``, the number of encoder-decoder pairs.
    num_codewords:
        ``K``, rows per codebook.
    dim:
        ``d``, codeword dimensionality (matches the backbone output).
    rng:
        Seed or generator for initialisation.
    use_skip:
        Enable the Eqn. (10) codebook skip (True = DSQ, False = vanilla).
    ffn_hidden:
        Hidden width of the row-wise FFN; defaults to ``2·dim``.
    init_std:
        Standard deviation of the Gaussian codeword initialisation.
    """

    def __init__(
        self,
        num_codebooks: int,
        num_codewords: int,
        dim: int,
        rng: np.random.Generator | int = 0,
        use_skip: bool = True,
        ffn_hidden: int | None = None,
        init_std: float = 0.1,
    ):
        super().__init__()
        if num_codebooks < 1:
            raise ValueError("need at least one codebook")
        if num_codewords < 2:
            raise ValueError("need at least two codewords per codebook")
        rng = make_rng(rng)
        self.num_codebooks = num_codebooks
        self.num_codewords = num_codewords
        self.dim = dim
        self.use_skip = use_skip
        hidden = ffn_hidden or 2 * dim

        child_rngs = spawn(rng, num_codebooks + 1)
        self.main_codebooks = [
            Parameter(
                nn_init.normal((num_codewords, dim), child_rngs[k], std=init_std),
                name=f"P{k}",
            )
            for k in range(num_codebooks)
        ]
        if use_skip and num_codebooks > 1:
            # One FFN + gate per transition C_{k-1} -> C_k (k >= 2). The
            # FFN's output layer starts at zero and the gates at a small
            # positive value, so the skip is an exact no-op at
            # initialisation and opens gently: early training behaves like
            # the vanilla chain while the cross-codebook gradient path of
            # Eqn. (11) stays available.
            self.ffns = []
            for _ in range(num_codebooks - 1):
                ffn = FeedForward(dim, hidden, child_rngs[-1])
                ffn.fc2.weight.data[:] = 0.0
                self.ffns.append(ffn)
            self.gates = [
                Parameter(np.full(1, 0.1), name=f"g{k + 1}")
                for k in range(num_codebooks - 1)
            ]
        else:
            self.ffns = []
            self.gates = []
        # Persistent scratch for the fused path (dict-wrapped so Module's
        # attribute scan ignores it); allocated lazily on first use.
        self._scratch: dict[str, object] = {}
        # Version-tagged materialization cache (see materialize_cached) and
        # the count of actual re-materializations it has performed — the
        # regression tests assert the count stays at one across repeated
        # encode/index-build calls between parameter updates.
        self._mat_cache: dict[str, object] = {}
        self.materializations = 0

    def materialize(self) -> list[Tensor]:
        """Effective codebooks ``[C_1, ..., C_M]`` as autograd tensors.

        ``C_1 = P_1`` and, with the skip enabled,
        ``C_k = FFN_k(C_{k-1}) · g_k + P_k``.
        """
        codebooks: list[Tensor] = [self.main_codebooks[0]]
        for k in range(1, self.num_codebooks):
            if self.use_skip:
                transformed = self.ffns[k - 1](codebooks[k - 1])
                codebook = transformed * self.gates[k - 1] + self.main_codebooks[k]
            else:
                codebook = self.main_codebooks[k]
            codebooks.append(codebook)
        return codebooks

    def materialize_stacked(self) -> tuple[np.ndarray, list[tuple[np.ndarray, ...]]]:
        """Chain forward in plain NumPy: ``(M, K, d)`` stack plus a cache.

        Computes the same values as :meth:`materialize` bit for bit (the op
        order mirrors the tape: ``x @ W1 + b1``, ``pre * (pre > 0)``,
        ``h @ W2 + b2``, ``transformed * g + P``) but builds no graph nodes.
        The fused DSQ kernel pairs it with :meth:`accumulate_stacked_grad`
        inside its single backward closure, so the whole chain costs zero
        tape traffic per step.

        The returned stack and cache are views into scratch buffers reused
        by the *next* call: run the matching backward before materializing
        again, which the forward→backward→step training loop guarantees
        (diagnostic paths like :meth:`materialize_arrays` go through the
        tape and never touch these buffers).
        """
        sc = self._scratch
        if not sc:
            num_books, num_words, dim = self.num_codebooks, self.num_codewords, self.dim
            sc["stacked"] = np.empty((num_books, num_words, dim))
            hidden_dim = self.ffns[0].fc1.out_features if self.ffns else 0
            sc["pre"] = [np.empty((num_words, hidden_dim)) for _ in self.ffns]
            sc["mask"] = [np.empty((num_words, hidden_dim), dtype=bool) for _ in self.ffns]
            sc["hidden"] = [np.empty((num_words, hidden_dim)) for _ in self.ffns]
            sc["trans"] = [np.empty((num_words, dim)) for _ in self.ffns]
            sc["g_trans"] = np.empty((num_words, dim))
            sc["g_pre"] = np.empty((num_words, hidden_dim))
            sc["g_w1"] = np.empty((dim, hidden_dim))
            sc["g_w2"] = np.empty((hidden_dim, dim))
        stacked = sc["stacked"]
        stacked[0] = self.main_codebooks[0].data
        cache: list[tuple[np.ndarray, ...]] = []
        for k in range(1, self.num_codebooks):
            if self.use_skip:
                t = k - 1
                ffn = self.ffns[t]
                prev = stacked[k - 1]
                pre = np.matmul(prev, ffn.fc1.weight.data, out=sc["pre"][t])
                pre += ffn.fc1.bias.data
                mask = np.greater(pre, 0, out=sc["mask"][t])
                hidden = np.multiply(pre, mask, out=sc["hidden"][t])
                transformed = np.matmul(hidden, ffn.fc2.weight.data, out=sc["trans"][t])
                transformed += ffn.fc2.bias.data
                np.multiply(transformed, self.gates[t].data, out=stacked[k])
                stacked[k] += self.main_codebooks[k].data
                cache.append((prev, mask, hidden, transformed))
            else:
                stacked[k] = self.main_codebooks[k].data
        return stacked, cache

    def accumulate_stacked_grad(
        self, grad_books: np.ndarray, cache: list[tuple[np.ndarray, ...]]
    ) -> None:
        """Route per-level gradients on the *effective* codebooks into params.

        ``grad_books`` holds ``dL/dC_k`` for every level as produced against
        :meth:`materialize_stacked`'s output. The reverse walk adds the
        Eqn. (11) chain contribution ``dC_k/dC_{k-1}`` level by level,
        accumulating into ``P_k``, the FFN weights, and the gates exactly as
        the tape's backward would (up to summation-order rounding in the
        scalar gate reduction).
        """

        def push(param: Parameter, grad: np.ndarray) -> None:
            if param.requires_grad:
                accumulate_grad(param, grad)

        sc = self._scratch
        carried = grad_books[-1]
        for k in range(self.num_codebooks - 1, 0, -1):
            push(self.main_codebooks[k], carried)
            if self.use_skip:
                t = k - 1
                ffn = self.ffns[t]
                prev, mask, hidden, transformed = cache[t]
                push(self.gates[t], np.array([(carried * transformed).sum()]))
                g_trans = np.multiply(carried, self.gates[t].data, out=sc["g_trans"])
                push(ffn.fc2.weight, np.matmul(hidden.T, g_trans, out=sc["g_w2"]))
                push(ffn.fc2.bias, g_trans.sum(axis=0))
                g_pre = np.matmul(g_trans, ffn.fc2.weight.data.T, out=sc["g_pre"])
                g_pre *= mask
                push(ffn.fc1.weight, np.matmul(prev.T, g_pre, out=sc["g_w1"]))
                push(ffn.fc1.bias, g_pre.sum(axis=0))
                carried = grad_books[k - 1] + g_pre @ ffn.fc1.weight.data.T
            else:
                carried = grad_books[k - 1]
        push(self.main_codebooks[0], carried)

    def materialize_arrays(self) -> np.ndarray:
        """Effective codebooks as a plain ``(M, K, d)`` array (inference)."""
        with no_grad():
            stacked = [c.data.copy() for c in self.materialize()]
        return np.stack(stacked, axis=0)

    def parameter_fingerprint(self) -> bytes:
        """Content hash over every chain parameter's current values.

        Hashing the raw bytes (rather than tracking an explicit version
        counter) catches both in-place optimizer updates — which keep the
        same arrays — and ``load_state_dict``, which rebinds them. The
        digest covers ~``M·K·d`` floats, far cheaper than the ``M − 1``
        FFN matmuls a materialization costs.
        """
        digest = hashlib.blake2b(digest_size=16)
        for param in self.parameters():
            digest.update(np.ascontiguousarray(param.data).tobytes())
        return digest.digest()

    def materialize_cached(self) -> np.ndarray:
        """Version-tagged :meth:`materialize_arrays` for inference callers.

        Returns the same owned ``(M, K, d)`` array until a parameter
        changes (detected via :meth:`parameter_fingerprint`), so encode and
        index-build paths invoked many times between updates pay for one
        chain forward. Callers must treat the result as read-only; a fresh
        array replaces it after the next update, so references handed out
        earlier stay valid.
        """
        tag = self.parameter_fingerprint()
        cache = self._mat_cache
        if cache.get("tag") != tag:
            cache["stacked"] = self.materialize_arrays()
            cache["tag"] = tag
            self.materializations += 1
        return cache["stacked"]  # type: ignore[return-value]

    def gate_values(self) -> np.ndarray:
        """Current scalar gate values ``g_2..g_M`` (empty when no skip)."""
        return np.array([float(g.data[0]) for g in self.gates])
