"""The LightLT training objective (§III-D).

Three terms shape the quantized representations:

- **Class-weighted cross-entropy** (Eqn. 12) keeps codes discriminative
  while re-weighting classes by effective sample count so the tail is not
  drowned out by the head.
- **Center loss** (Eqn. 13) pulls each item's quantized representation
  toward its class prototype.
- **Ranking loss** (Eqn. 14) enforces the *relative* ordering: each item
  must sit closer to its own prototype than to any other class's.

The total is ``L = L_ce + α (L_c + L_r)`` (Eqn. 15). Proposition 1 shows
``L_c + L_r`` upper-bounds the O(N³) triplet loss; a direct triplet
implementation is included for that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.longtail import class_weights
from repro.nn import (
    Module,
    Parameter,
    Tensor,
    cross_entropy,
    fused_center_loss,
    fused_commitment_loss,
    fused_cross_entropy,
    fused_ranking_loss,
    fused_scaled_sum,
    log_softmax,
    maximum,
)
from repro.nn import init as nn_init
from repro.rng import make_rng


def _norms_to_prototypes(embeddings: Tensor, prototypes: Tensor, p: int, eps: float = 1e-12) -> Tensor:
    """``(n, C)`` matrix of ℓ_p distances from each item to each prototype."""
    if p == 2:
        emb_sq = (embeddings * embeddings).sum(axis=1, keepdims=True)
        proto_sq = (prototypes * prototypes).sum(axis=1, keepdims=True)
        cross = embeddings @ prototypes.T
        sq = emb_sq + proto_sq.T - cross * 2.0
        return (maximum(sq, 0.0) + eps).sqrt()
    if p == 1:
        n, d = embeddings.shape
        c = prototypes.shape[0]
        diff = embeddings.reshape(n, 1, d) - prototypes.reshape(1, c, d)
        return diff.abs().sum(axis=2)
    raise ValueError(f"p must be 1 or 2, got {p}")


def center_loss(embeddings: Tensor, labels: np.ndarray, prototypes: Tensor, p: int = 2) -> Tensor:
    """Eqn. (13): mean ℓ_p distance of each item to its class prototype."""
    labels = np.asarray(labels)
    own_prototypes = prototypes[labels]
    diff = embeddings - own_prototypes
    if p == 2:
        sq = (diff * diff).sum(axis=1)
        distances = (sq + 1e-12).sqrt()
    elif p == 1:
        distances = diff.abs().sum(axis=1)
    else:
        raise ValueError(f"p must be 1 or 2, got {p}")
    return distances.mean()


def ranking_loss(
    embeddings: Tensor,
    labels: np.ndarray,
    prototypes: Tensor,
    tau: float = 1.0,
    p: int = 2,
) -> Tensor:
    """Eqn. (14): softmax cross-entropy over negative prototype distances.

    ``L_r = -mean_i log [ exp(-‖o_i - z_{y_i}‖/τ) / Σ_c exp(-‖o_i - z_c‖/τ) ]``
    """
    if tau <= 0:
        raise ValueError("tau must be positive")
    labels = np.asarray(labels)
    distances = _norms_to_prototypes(embeddings, prototypes, p=p)
    logits = distances * (-1.0 / tau)
    log_probs = log_softmax(logits, axis=1)
    picked = log_probs[np.arange(len(labels)), labels]
    return -picked.mean()


def _pairwise_distances(embeddings: Tensor) -> Tensor:
    """``(n, n)`` Euclidean distances between batch rows, as in Eqn. (16)."""
    emb_sq = (embeddings * embeddings).sum(axis=1, keepdims=True)
    cross = embeddings @ embeddings.T
    sq = maximum(emb_sq + emb_sq.T - cross * 2.0, 0.0)
    return (sq + 1e-12).sqrt()


def triplet_loss(
    embeddings: Tensor, labels: np.ndarray, margin: float = 1.0
) -> Tensor:
    """Direct triplet loss (Eqn. 16) — the O(N³) objective of Proposition 1.

    ``Σ_i Σ_{j∈{y_i}} Σ_{k∉{y_i}} max(‖o_i-o_j‖ - ‖o_i-o_k‖ + m, 0)``,
    normalised by the number of triplets. Vectorised over the full
    ``(n, n, n)`` triplet cube: the anchor/positive/negative loops become
    one broadcast hinge masked by validity, so both memory and time are
    O(n³) but with no Python-level iteration (the loop form this replaces is
    kept as :func:`triplet_loss_reference`). Only usable on small batches;
    provided as the reference point for the upper-bound property test and
    the complexity comparison.
    """
    labels = np.asarray(labels)
    n = len(labels)
    same = labels[:, None] == labels[None, :]
    positive = same & ~np.eye(n, dtype=bool)
    valid = positive[:, :, None] & ~same[:, None, :]
    count = int(valid.sum())
    if count == 0:
        return Tensor(0.0)
    distances = _pairwise_distances(embeddings)
    hinge = maximum(
        distances.reshape(n, n, 1) - distances.reshape(n, 1, n) + margin, 0.0
    )
    total = (hinge * Tensor(valid.astype(np.float64))).sum()
    return total / float(count)


def triplet_loss_reference(
    embeddings: Tensor, labels: np.ndarray, margin: float = 1.0
) -> Tensor:
    """Per-anchor loop form of :func:`triplet_loss`; the parity oracle.

    Same triplets, same ``max(·, 0)`` tie convention — only the summation
    order differs, so values agree to float rounding.
    """
    labels = np.asarray(labels)
    n = len(labels)
    distances = _pairwise_distances(embeddings)

    total: Tensor | None = None
    count = 0
    same = labels[:, None] == labels[None, :]
    for i in range(n):
        positives = np.flatnonzero(same[i])
        positives = positives[positives != i]
        negatives = np.flatnonzero(~same[i])
        if len(positives) == 0 or len(negatives) == 0:
            continue
        pos_d = distances[i][positives].reshape(len(positives), 1)
        neg_d = distances[i][negatives].reshape(1, len(negatives))
        hinge = maximum(pos_d - neg_d + margin, 0.0).sum()
        total = hinge if total is None else total + hinge
        count += len(positives) * len(negatives)
    if total is None:
        return Tensor(0.0)
    return total / float(count)


def assignment_kl_loss(
    student_scores: Tensor,
    teacher_scores: np.ndarray,
    temperature: float = 1.0,
) -> Tensor:
    """Soft codeword-posterior KL for query-encoder distillation.

    ``KL(p_T ‖ q_S)`` per row, averaged over the batch: ``p_T`` is the
    teacher's tempered-softmax codeword posterior (a constant — gradients
    flow only through the student's log-probabilities), ``q_S`` the
    student's posterior over the same codebook. Rows are whatever the
    caller flattens to ``(rows, K)`` — typically ``n·M`` level scores.
    The teacher's (constant) negative entropy is included so the value is
    a true KL divergence, non-negative and zero at an exact match.
    """
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    teacher = np.asarray(teacher_scores, dtype=np.float64) / temperature
    teacher = teacher - teacher.max(axis=1, keepdims=True)
    exp = np.exp(teacher)
    norm = exp.sum(axis=1, keepdims=True)
    posterior = exp / norm
    teacher_log = teacher - np.log(norm)
    neg_entropy = float((posterior * teacher_log).sum(axis=1).mean())
    student_log = log_softmax(student_scores * (1.0 / temperature), axis=1)
    cross = -(student_log * Tensor(posterior)).sum(axis=1).mean()
    return cross + neg_entropy


def matching_contrastive_loss(
    student_embeddings: Tensor,
    teacher_targets: np.ndarray,
    tau: float = 0.1,
) -> Tensor:
    """MoPQ-style in-batch contrastive matching loss.

    InfoNCE over the similarity matrix between student query embeddings
    and the teacher's (quantized) representations of the same batch: row
    ``i`` must score its own teacher target above every other row's
    (matching-oriented — the negatives are real quantized representations,
    so the student is trained on exactly the contrast retrieval performs).
    """
    if tau <= 0:
        raise ValueError("tau must be positive")
    teacher = np.asarray(teacher_targets, dtype=np.float64)
    n = len(teacher)
    if len(student_embeddings) != n:
        raise ValueError("student batch and teacher targets must align")
    if n == 0:
        return Tensor(0.0)
    logits = (student_embeddings @ Tensor(teacher).T) * (1.0 / tau)
    return cross_entropy(logits, np.arange(n))


@dataclass(frozen=True)
class LossConfig:
    """Hyper-parameters of the combined objective (Eqn. 15)."""

    gamma: float = 0.999  # class-weighting strength of Eqn. 12
    alpha: float = 0.01  # weight of (center + ranking)
    tau: float = 1.0  # ranking temperature
    p: int = 2  # prototype distance norm
    use_center: bool = True
    use_ranking: bool = True
    use_class_weights: bool = True
    # Reconstruction weight. The paper's Eqn. (15) omits an explicit
    # reconstruction term because its backbone barely moves (pre-trained,
    # LR 5e-5); with a from-scratch substrate the codebooks otherwise drift
    # away from the embedding distribution and asymmetric search degrades.
    # Documented as a reproduction addition in DESIGN.md; set to 0 to train
    # with the paper's literal objective.
    beta: float = 1.0
    commitment: float = 0.25  # weight of the embedding-side (commitment) term


@dataclass
class LossBreakdown:
    """Scalar tensors per term, plus their weighted total."""

    total: Tensor
    classification: Tensor
    center: Tensor | None = None
    ranking: Tensor | None = None
    reconstruction: Tensor | None = None

    def to_floats(self) -> dict[str, float]:
        values = {"total": self.total.item(), "classification": self.classification.item()}
        if self.center is not None:
            values["center"] = self.center.item()
        if self.ranking is not None:
            values["ranking"] = self.ranking.item()
        if self.reconstruction is not None:
            values["reconstruction"] = self.reconstruction.item()
        return values


class LightLTCriterion(Module):
    """Stateful criterion holding the class prototypes ``z_c``.

    The prototypes of Eqns. (13)-(14) are learnable parameters trained
    jointly with the model, as in the original center-loss formulation.

    With ``fused=True`` every term is computed by the single-node kernels
    of :mod:`repro.nn.fused` instead of primitive-op compositions. Loss
    *values* are bit-identical to the reference path (the kernels mirror
    its operation order); gradients agree to float rounding.
    """

    def __init__(
        self,
        num_classes: int,
        dim: int,
        train_class_counts: np.ndarray,
        config: LossConfig = LossConfig(),
        rng: np.random.Generator | int = 0,
        fused: bool = False,
    ):
        super().__init__()
        self.config = config
        self.num_classes = num_classes
        self.fused = bool(fused)
        rng = make_rng(rng)
        self.prototypes = Parameter(
            nn_init.normal((num_classes, dim), rng, std=0.05), name="prototypes"
        )
        counts = np.asarray(train_class_counts, dtype=np.float64)
        if len(counts) != num_classes:
            raise ValueError("train_class_counts length must equal num_classes")
        if config.use_class_weights:
            self._weights = class_weights(counts, config.gamma)
        else:
            self._weights = None

    def forward(
        self,
        logits: Tensor,
        quantized: Tensor,
        labels: np.ndarray,
        embedding: Tensor | None = None,
    ) -> LossBreakdown:
        """Eqn. (15): ``L_ce + α (L_c + L_r)``, plus optional β·‖f(x)−o‖²."""
        labels = np.asarray(labels)
        if self.fused:
            classification = fused_cross_entropy(logits, labels, weights=self._weights)
        else:
            classification = cross_entropy(logits, labels, weights=self._weights)
        extra_terms: list[tuple[Tensor, float]] = []
        center_term: Tensor | None = None
        ranking_term: Tensor | None = None
        reconstruction_term: Tensor | None = None
        if self.config.use_center:
            if self.fused:
                center_term = fused_center_loss(
                    quantized, labels, self.prototypes, p=self.config.p
                )
            else:
                center_term = center_loss(
                    quantized, labels, self.prototypes, p=self.config.p
                )
            extra_terms.append((center_term, self.config.alpha))
        if self.config.use_ranking:
            ranking = fused_ranking_loss if self.fused else ranking_loss
            ranking_term = ranking(
                quantized,
                labels,
                self.prototypes,
                tau=self.config.tau,
                p=self.config.p,
            )
            extra_terms.append((ranking_term, self.config.alpha))
        if self.config.beta > 0 and embedding is not None:
            # VQ-VAE-style split: the codebook term pulls the reconstruction
            # toward the (frozen) embedding; the small commitment term keeps
            # the embedding near the codewords without letting the backbone
            # collapse its variance to cheat the objective.
            if self.fused:
                reconstruction_term = fused_commitment_loss(
                    embedding, quantized, commitment=self.config.commitment
                )
            else:
                codebook_diff = embedding.detach() - quantized
                codebook_term = (codebook_diff * codebook_diff).sum(axis=1).mean()
                commit_diff = embedding - quantized.detach()
                commit_term = (commit_diff * commit_diff).sum(axis=1).mean()
                reconstruction_term = (
                    codebook_term + commit_term * self.config.commitment
                )
            extra_terms.append((reconstruction_term, self.config.beta))
        if self.fused:
            # One combine node in place of the scalar mul/add chain; the
            # accumulation order mirrors the reference, so totals agree
            # bit for bit.
            total = fused_scaled_sum(
                [classification, *(t for t, _ in extra_terms)],
                [1.0, *(w for _, w in extra_terms)],
            )
        else:
            total = classification
            for term, weight in extra_terms:
                total = total + term * weight
        return LossBreakdown(
            total=total,
            classification=classification,
            center=center_term,
            ranking=ranking_term,
            reconstruction=reconstruction_term,
        )
