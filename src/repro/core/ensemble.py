"""Model weight ensemble with DSQ re-alignment (§III-E, Algorithm 1 lines 7-12).

``n`` LightLT models are trained from different initialisations; their
parameters are averaged elementwise (Eqn. 23). Codewords of different
members need not correspond — any permutation of a codebook's rows encodes
identically (Example 1) — so naively averaged codebooks are meaningless.
The fix: freeze the averaged backbone and classifier and fine-tune only the
DSQ parameters for a few epochs, letting the codebooks re-learn a
consistent geometry on top of the ensembled representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.losses import LightLTCriterion, LossConfig
from repro.core.model import LightLT, LightLTConfig
from repro.core.trainer import (
    Trainer,
    TrainingConfig,
    TrainingHistory,
    warm_start_prototypes,
)
from repro.core.warmstart import warm_start_codebooks
from repro.data.datasets import RetrievalDataset
from repro.nn import average_state_dicts
from repro.rng import make_rng, spawn


STRATEGIES = ("uniform", "greedy")


@dataclass(frozen=True)
class EnsembleConfig:
    """Hyper-parameters of the ensemble step.

    ``strategy`` follows the model-soups recipe the paper builds on [33]:
    ``"uniform"`` averages every member (Eqn. 23); ``"greedy"`` sorts the
    members by a held-in validation MAP and adds each to the soup only when
    it does not hurt that score — more robust when one member landed in a
    worse basin.
    """

    num_members: int = 4  # the paper uses 4 on all datasets
    fine_tune_epochs: int | None = None  # default: same as member training
    fine_tune_lr: float | None = None  # default: member learning rate
    strategy: str = "greedy"
    validation_queries: int = 200

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, got {self.strategy!r}"
            )


@dataclass
class EnsembleResult:
    """Everything the ensemble procedure produces."""

    model: LightLT  # final averaged + fine-tuned model
    criterion: LightLTCriterion
    member_histories: list[TrainingHistory]
    fine_tune_history: TrainingHistory
    member_states: list[dict] = field(repr=False, default_factory=list)


def average_members(
    members: list[tuple[LightLT, LightLTCriterion]],
) -> tuple[dict, dict]:
    """Average model and criterion states across ensemble members."""
    if not members:
        raise ValueError("need at least one member to average")
    model_states = [model.state_dict() for model, _ in members]
    criterion_states = [criterion.state_dict() for _, criterion in members]
    return average_state_dicts(model_states), average_state_dicts(criterion_states)


def train_ensemble(
    dataset: RetrievalDataset,
    model_config: LightLTConfig,
    loss_config: LossConfig = LossConfig(),
    training_config: TrainingConfig = TrainingConfig(),
    ensemble_config: EnsembleConfig = EnsembleConfig(),
    seed: int = 0,
) -> EnsembleResult:
    """Full Algorithm 1: train members, average weights, re-align the DSQ.

    Each member gets its own derived seed, so initialisations (and batch
    orders) differ while the whole procedure stays reproducible.
    """
    if ensemble_config.num_members < 1:
        raise ValueError("num_members must be at least 1")
    member_seeds = [
        int(child.integers(2**31)) for child in spawn(make_rng(seed), ensemble_config.num_members)
    ]

    # All members share the backbone starting point (in the paper every
    # member begins from the same pre-trained ResNet-34/BERT weights; only
    # the DSQ and classification layers are re-initialised per member).
    reference = Trainer(model_config, loss_config, training_config, seed=seed)
    shared_backbone_state = reference.build(dataset)[0].backbone.state_dict()

    members: list[tuple[LightLT, LightLTCriterion]] = []
    member_histories: list[TrainingHistory] = []
    for member_seed in member_seeds:
        trainer = Trainer(model_config, loss_config, training_config, seed=member_seed)
        model, criterion = trainer.build(dataset)
        model.backbone.load_state_dict(shared_backbone_state)
        model, criterion, history = trainer.fit(
            dataset,
            model=model,
            criterion=criterion,
            run_warm_start=training_config.warm_start,
        )
        members.append((model, criterion))
        member_histories.append(history)

    member_states = [model.state_dict() for model, _ in members]

    if ensemble_config.strategy == "greedy":
        chosen = greedy_soup_selection(
            members,
            dataset,
            model_config,
            loss_config,
            training_config,
            validation_queries=ensemble_config.validation_queries,
            seed=seed,
        )
    else:
        chosen = list(range(len(members)))
    model_state, criterion_state = average_members([members[i] for i in chosen])

    # Load the averaged weights into a fresh model/criterion pair.
    trainer = Trainer(model_config, loss_config, training_config, seed=seed)
    ensembled, criterion = trainer.build(dataset)
    ensembled.load_state_dict(model_state)
    criterion.load_state_dict(criterion_state)

    fine_tune_history = fine_tune_dsq(
        ensembled,
        criterion,
        dataset,
        loss_config=loss_config,
        training_config=training_config,
        epochs=ensemble_config.fine_tune_epochs or training_config.epochs,
        learning_rate=ensemble_config.fine_tune_lr,
        seed=seed,
    )

    # Final model selection, as in the model-soups protocol [33]: keep the
    # fine-tuned soup only if it beats the best individual member on the
    # held-in validation score. The soup's DSQ is re-learned from scratch
    # after averaging, which occasionally loses to a member whose codebooks
    # co-adapted with its backbone for the full training run.
    soup_score = _validation_map(
        ensembled, dataset, ensemble_config.validation_queries, seed
    )
    member_scores = [
        _validation_map(model, dataset, ensemble_config.validation_queries, seed)
        for model, _ in members
    ]
    best_member = int(np.argmax(member_scores))
    if member_scores[best_member] > soup_score:
        ensembled, criterion = members[best_member]
    return EnsembleResult(
        model=ensembled,
        criterion=criterion,
        member_histories=member_histories,
        fine_tune_history=fine_tune_history,
        member_states=member_states,
    )


def _validation_map(
    model: LightLT,
    dataset: RetrievalDataset,
    validation_queries: int,
    seed: int,
) -> float:
    """Validation retrieval score used to rank soup candidates.

    The paper tunes hyper-parameters on a validation split (§V-A4). When
    the dataset carries one, its held-out queries are ranked against the
    training database; otherwise a train subsample doubles as the query
    pool (sufficient to *rank* candidates, if optimistic in absolute
    terms).
    """
    from repro.retrieval.metrics import mean_average_precision

    rng = make_rng(seed)
    if dataset.validation is not None and len(dataset.validation) > 0:
        pool = dataset.validation
    else:
        pool = dataset.train
    take = min(validation_queries, len(pool))
    chosen = rng.choice(len(pool), size=take, replace=False)
    index = model.build_index(dataset.train.features, labels=dataset.train.labels)
    ranked = model.search_ranked_labels(pool.features[chosen], index)
    return mean_average_precision(ranked, pool.labels[chosen])


def greedy_soup_selection(
    members: list[tuple[LightLT, LightLTCriterion]],
    dataset: RetrievalDataset,
    model_config: LightLTConfig,
    loss_config: LossConfig,
    training_config: TrainingConfig,
    validation_queries: int = 200,
    seed: int = 0,
) -> list[int]:
    """Greedy-soup member selection (Wortsman et al., cited as [33]).

    Members are sorted by validation MAP; each is tentatively added to the
    soup and kept only if the re-fitted soup's validation MAP does not
    drop. At least one member (the best) is always selected.
    """
    scores = [
        _validation_map(model, dataset, validation_queries, seed)
        for model, _ in members
    ]
    order = sorted(range(len(members)), key=lambda i: -scores[i])

    def soup_score(indices: list[int]) -> float:
        model_state, criterion_state = average_members([members[i] for i in indices])
        trainer = Trainer(model_config, loss_config, training_config, seed=seed)
        candidate, candidate_criterion = trainer.build(dataset)
        candidate.load_state_dict(model_state)
        candidate_criterion.load_state_dict(criterion_state)
        # Cheap codebook re-fit so the candidate's codes are meaningful.
        warm_start_codebooks(candidate, dataset.train.features, rng=make_rng(seed))
        return _validation_map(candidate, dataset, validation_queries, seed)

    chosen = [order[0]]
    best = soup_score(chosen)
    for candidate_index in order[1:]:
        trial = chosen + [candidate_index]
        trial_score = soup_score(trial)
        if trial_score >= best:
            chosen = trial
            best = trial_score
    return chosen


def fine_tune_dsq(
    model: LightLT,
    criterion: LightLTCriterion,
    dataset: RetrievalDataset,
    loss_config: LossConfig = LossConfig(),
    training_config: TrainingConfig = TrainingConfig(),
    epochs: int = 4,
    learning_rate: float | None = None,
    seed: int = 0,
) -> TrainingHistory:
    """Codeword re-alignment: optimise only the DSQ subtree (Fig. 2).

    The backbone, classifier, and prototypes stay frozen; gradients flow
    only into the codebook chain, so the discrete geometry adapts to the
    averaged continuous representation.
    """
    if epochs < 1:
        return TrainingHistory()
    # The averaged codebooks are meaningless (Example 1: members' codewords
    # need not correspond), so re-fit them on the averaged backbone's
    # embeddings before the gradient fine-tune re-aligns them with the loss.
    # Prototypes are likewise re-centred on the averaged embedding before
    # being frozen, so the center/ranking losses pull in a consistent
    # direction during re-alignment.
    warm_start_codebooks(model, dataset.train.features, rng=make_rng(seed))
    warm_start_prototypes(model, criterion, dataset)
    model.backbone.freeze()
    model.classifier.freeze()
    criterion.freeze()
    model.dsq.unfreeze()
    try:
        fine_tune_config = TrainingConfig(
            epochs=epochs,
            batch_size=training_config.batch_size,
            learning_rate=learning_rate or training_config.learning_rate,
            weight_decay=training_config.weight_decay,
            schedule=training_config.schedule,
            warmup_fraction=training_config.warmup_fraction,
            max_grad_norm=training_config.max_grad_norm,
        )
        trainer = Trainer(model.config, loss_config, fine_tune_config, seed=seed)
        _, _, history = trainer.fit(
            dataset,
            model=model,
            criterion=criterion,
            trainable_params=model.dsq.parameters(),
            epochs=epochs,
        )
    finally:
        model.backbone.unfreeze()
        model.classifier.unfreeze()
        criterion.unfreeze()
    return history
