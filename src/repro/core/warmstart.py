"""Codebook warm-starting from residual k-means.

Random codebooks start far from the embedding distribution, which makes the
early tempered-softmax assignments nearly uniform and slows training badly.
Deep quantization implementations conventionally initialise codebooks with
k-means (the classic PQ/RVQ recipe); we fit level 1 on the backbone
embeddings and every further level on the residuals left by the previous
levels — exactly matching the DSQ residual topology of Eqn. (2).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.kmeans import kmeans
from repro.core.model import LightLT
from repro.rng import make_rng, spawn


def residual_kmeans_codebooks(
    embeddings: np.ndarray,
    num_codebooks: int,
    num_codewords: int,
    rng: np.random.Generator | int = 0,
    max_iterations: int = 25,
) -> np.ndarray:
    """``(M, K, d)`` codebooks from stage-wise residual k-means."""
    embeddings = np.asarray(embeddings, dtype=np.float64)
    if len(embeddings) < num_codewords:
        raise ValueError(
            f"need at least {num_codewords} embeddings to fit a codebook, "
            f"got {len(embeddings)}"
        )
    rng = make_rng(rng)
    child_rngs = spawn(rng, num_codebooks)
    residual = embeddings.copy()
    codebooks = np.zeros((num_codebooks, num_codewords, embeddings.shape[1]))
    for level in range(num_codebooks):
        result = kmeans(
            residual, num_codewords, rng=child_rngs[level], max_iterations=max_iterations
        )
        codebooks[level] = result.centroids
        residual = residual - result.centroids[result.assignments]
    return codebooks


def warm_start_codebooks(
    model: LightLT,
    features: np.ndarray,
    rng: np.random.Generator | int = 0,
    max_iterations: int = 25,
) -> None:
    """Initialise a model's main codebooks ``P_k`` from residual k-means.

    Runs the current backbone over ``features`` and replaces each ``P_k``
    in place. With the codebook skip's gates initialised at zero the
    effective codebooks equal the ``P_k``, so after warm-starting the DSQ
    behaves like a fitted residual quantizer from step one of training.
    """
    embeddings = model.embed(features)
    codebooks = residual_kmeans_codebooks(
        embeddings,
        num_codebooks=model.dsq.num_codebooks,
        num_codewords=model.dsq.num_codewords,
        rng=rng,
        max_iterations=max_iterations,
    )
    for level, parameter in enumerate(model.dsq.codebooks.main_codebooks):
        parameter.data = codebooks[level].copy()
    model.train()
