"""The LightLT model: backbone + DSQ + classification head (Fig. 1).

The backbone ``f(·)`` plays the role of the pre-trained ResNet-34 / BERT
encoder being fine-tuned: here it is an MLP over the (simulated)
pre-trained features. The DSQ module quantizes ``f(x)`` into ``M`` codeword
ids; the classification layer consumes the *quantized* representation, as
in Eqn. (12), so the discrete codes themselves carry the semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dsq import DSQ, DSQOutput
from repro.nn import MLP, Linear, Module, ResidualMLP, Tensor, no_grad
from repro.retrieval.index import QuantizedIndex
from repro.rng import make_rng, spawn


@dataclass(frozen=True)
class LightLTConfig:
    """Architecture and quantization hyper-parameters.

    The paper's default code budget is 32 bits: ``M=4`` codebooks of
    ``K=256`` codewords (4 × log2 256 = 32). The CI default shrinks ``K``
    to keep experiments fast while preserving the 4-codebook structure.
    """

    input_dim: int
    num_classes: int
    embed_dim: int = 32
    hidden_dims: tuple[int, ...] = (64,)
    num_codebooks: int = 4
    num_codewords: int = 64
    temperature: float = 1.0
    similarity: str = "neg_l2"
    use_codebook_skip: bool = True
    topology: str = "residual"
    backbone: str = "auto"  # "residual" (fine-tune-style), "mlp", or "auto"
    dropout: float = 0.0
    ffn_hidden: int | None = None
    codebook_init_std: float = 0.1

    @property
    def code_bits(self) -> float:
        """Bits per encoded item, ``M · log2 K``."""
        return self.num_codebooks * float(np.log2(self.num_codewords))


@dataclass
class LightLTOutput:
    """Full forward result for a batch."""

    embedding: Tensor  # continuous f(x), (n, d)
    quantized: Tensor  # reconstructed o, (n, d)
    logits: Tensor  # classification scores over C classes
    codes: np.ndarray  # (n, M) discrete ids
    dsq: DSQOutput


class LightLT(Module):
    """Backbone + DSQ + classifier, trained end to end (Algorithm 1)."""

    def __init__(self, config: LightLTConfig, rng: np.random.Generator | int = 0):
        super().__init__()
        self.config = config
        rng = make_rng(rng)
        backbone_rng, dsq_rng, head_rng = spawn(rng, 3)
        backbone_kind = config.backbone
        if backbone_kind == "auto":
            backbone_kind = "residual" if config.input_dim == config.embed_dim else "mlp"
        if backbone_kind == "residual":
            if config.input_dim != config.embed_dim:
                raise ValueError(
                    "residual backbone requires input_dim == embed_dim "
                    f"(got {config.input_dim} != {config.embed_dim})"
                )
            self.backbone = ResidualMLP(
                config.embed_dim, list(config.hidden_dims), backbone_rng, dropout=config.dropout
            )
        elif backbone_kind == "mlp":
            dims = [config.input_dim, *config.hidden_dims, config.embed_dim]
            self.backbone = MLP(dims, backbone_rng, dropout=config.dropout)
        else:
            raise ValueError(f"unknown backbone kind {config.backbone!r}")
        self.dsq = DSQ(
            num_codebooks=config.num_codebooks,
            num_codewords=config.num_codewords,
            dim=config.embed_dim,
            rng=dsq_rng,
            temperature=config.temperature,
            similarity=config.similarity,
            use_codebook_skip=config.use_codebook_skip,
            topology=config.topology,
            ffn_hidden=config.ffn_hidden,
            init_std=config.codebook_init_std,
        )
        self.classifier = Linear(config.embed_dim, config.num_classes, head_rng)

    def forward(self, features: Tensor | np.ndarray) -> LightLTOutput:
        """Backbone → DSQ → classifier over a feature batch."""
        if not isinstance(features, Tensor):
            features = Tensor(np.asarray(features, dtype=np.float64))
        embedding = self.backbone(features)
        dsq_output = self.dsq(embedding)
        logits = self.classifier(dsq_output.reconstruction)
        return LightLTOutput(
            embedding=embedding,
            quantized=dsq_output.reconstruction,
            logits=logits,
            codes=dsq_output.codes,
            dsq=dsq_output,
        )

    # ------------------------------------------------------------------
    # Inference API
    # ------------------------------------------------------------------
    def embed(self, features: np.ndarray, batch_size: int = 512) -> np.ndarray:
        """Continuous embeddings ``f(x)`` without autograd overhead."""
        self.eval()
        blocks = []
        with no_grad():
            for start in range(0, len(features), batch_size):
                batch = Tensor(features[start : start + batch_size])
                blocks.append(self.backbone(batch).data)
        return np.concatenate(blocks, axis=0) if blocks else np.empty((0, self.config.embed_dim))

    def encode(self, features: np.ndarray, batch_size: int = 512) -> np.ndarray:
        """Discrete codes ``b_i`` (Eqn. 1) for raw feature rows.

        Uses :meth:`DSQ.encode`'s fused batched inference kernel, so only
        the backbone pass touches the autograd machinery.
        """
        self.eval()
        blocks = []
        with no_grad():
            for start in range(0, len(features), batch_size):
                batch = Tensor(features[start : start + batch_size])
                blocks.append(self.dsq.encode(self.backbone(batch).data))
        if not blocks:
            return np.empty((0, self.config.num_codebooks), dtype=np.int64)
        return np.concatenate(blocks, axis=0)

    def quantized_embeddings(self, features: np.ndarray, batch_size: int = 512) -> np.ndarray:
        """Reconstructed (quantized) representations for raw features."""
        self.eval()
        blocks = []
        with no_grad():
            for start in range(0, len(features), batch_size):
                batch = Tensor(features[start : start + batch_size])
                blocks.append(self.dsq(self.backbone(batch)).reconstruction.data)
        return np.concatenate(blocks, axis=0) if blocks else np.empty((0, self.config.embed_dim))

    def build_index(self, database: np.ndarray, labels: np.ndarray | None = None) -> QuantizedIndex:
        """Index a database with this model's codes and codebooks (Fig. 3)."""
        codes = self.encode(database)
        return QuantizedIndex.build(
            codebooks=self.dsq.materialized_codebooks(),
            database=database,
            labels=labels,
            codes=codes,
        )

    def search_ranked_labels(
        self,
        queries: np.ndarray,
        index: QuantizedIndex,
        k: int | None = None,
    ) -> np.ndarray:
        """Ranked database labels for queries embedded by the backbone.

        Queries stay continuous (asymmetric search): only the database side
        is quantized, exactly as in §IV's inference protocol.
        """
        return index.labels[index.search(self.embed(queries), k=k)]
