"""Asymmetric query encoding: the light query-side fast path.

LightLT's serving cost is asymmetric by design — the database side is
quantized offline, but every query still pays the full backbone + DSQ
stack before the ADC scan starts. Following the LightRetriever recipe
(PAPERS.md), this package distils a drastically cheaper *query-only*
projection from a trained model:

- :class:`LightQueryEncoder` — a linear (optionally one-hidden-layer)
  projection from raw features straight to the embedding space, whose
  batched :meth:`~LightQueryEncoder.embed` is a handful of GEMMs with no
  autograd machinery at all.
- :func:`distill_query_encoder` — the distillation driver. It wraps the
  frozen teacher and the student in a :class:`DistillationModel` whose
  forward matches the ``LightLT`` output contract, so the ordinary
  :class:`~repro.core.trainer.TrainingSession` drives the fit and the
  student inherits checkpointing, non-finite guards, and schedules for
  free. Two objectives are available (:class:`DistillationConfig`): the
  soft codeword-posterior KL of :func:`repro.core.losses.assignment_kl_loss`
  and the MoPQ-style in-batch contrastive
  :func:`repro.core.losses.matching_contrastive_loss`.
- :func:`save_encoder` / :func:`load_encoder` — one-file ``.npz``
  persistence used by ``repro serve --query-encoder``.

See docs/architecture.md ("Asymmetric query encoding") for the data-flow
diagram and docs/tuning.md for when the light encoder's recall trade is
worth taking.
"""

from repro.encoding.distill import (
    DISTILL_MODES,
    DistillationConfig,
    DistillationCriterion,
    DistillationModel,
    DistillationOutput,
    default_distill_training_config,
    distill_query_encoder,
)
from repro.encoding.light import (
    ENCODER_FORMAT_VERSION,
    LightQueryEncoder,
    load_encoder,
    save_encoder,
)

__all__ = [
    "DISTILL_MODES",
    "DistillationConfig",
    "DistillationCriterion",
    "DistillationModel",
    "DistillationOutput",
    "ENCODER_FORMAT_VERSION",
    "LightQueryEncoder",
    "default_distill_training_config",
    "distill_query_encoder",
    "load_encoder",
    "save_encoder",
]
