"""Distilling the light query encoder from a trained LightLT model.

The trick is shape compatibility: :class:`DistillationModel` presents the
teacher/student pair through the exact output contract
``TrainingSession.run_epoch`` expects from ``LightLT`` (``.embedding``,
``.quantized``, ``.logits``), and :class:`DistillationCriterion` consumes
those slots with distillation semantics:

- ``embedding`` — the *student's* projection (the only tensor carrying
  gradients; the teacher runs under ``no_grad``);
- ``quantized`` — the teacher's continuous embedding ``f(x)`` — the
  quantity the full query path feeds to ADC search, hence the student's
  anchor-regression target;
- ``logits`` — the teacher's per-level assignment scores flattened to
  ``(n, M·K)``, the soft codeword posteriors for the KL objective (their
  argmax also reproduces the teacher's hard codes, from which the
  criterion derives the quantized MoPQ matching targets itself).

Because the contract matches, the ordinary :class:`repro.core.trainer.Trainer`
drives the whole fit — the distillation run inherits checkpoint/resume,
the non-finite loss/gradient guards, LR schedules, and observability
without a custom loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.losses import (
    LossBreakdown,
    assignment_kl_loss,
    matching_contrastive_loss,
)
from repro.core.model import LightLT
from repro.core.trainer import Trainer, TrainingConfig, TrainingHistory
from repro.data.datasets import RetrievalDataset
from repro.encoding.light import LightQueryEncoder
from repro.nn import Module, Tensor, no_grad
from repro.retrieval.adc import reconstruct

DISTILL_MODES = ("kl", "contrastive")


@dataclass(frozen=True)
class DistillationConfig:
    """Objective selection and temperatures for the distillation fit.

    ``anchor`` weights an auxiliary MSE pulling the student embedding onto
    the teacher's — the exact vector the full query path hands to ADC
    search, which neither posterior matching nor the contrastive head pins
    down on its own. Set it to 0 to train with the bare matching
    objective.
    """

    mode: str = "kl"
    temperature: float = 1.0  # posterior softening (KL mode)
    tau: float = 0.1  # InfoNCE temperature (contrastive mode)
    anchor: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in DISTILL_MODES:
            raise ValueError(
                f"mode must be one of {DISTILL_MODES}, got {self.mode!r}"
            )
        if self.temperature <= 0 or self.tau <= 0:
            raise ValueError("temperature and tau must be positive")
        if self.anchor < 0:
            raise ValueError("anchor weight must be non-negative")


@dataclass
class DistillationOutput:
    """Forward result of :class:`DistillationModel` (LightLT-shaped)."""

    embedding: Tensor  # student projection, (n, d) — carries gradients
    quantized: Tensor  # teacher continuous embedding, (n, d) — constant
    logits: Tensor  # teacher level scores, (n, M·K) — constant
    codes: np.ndarray  # teacher hard codes, (n, M)


class DistillationModel(Module):
    """Frozen teacher + trainable student behind the LightLT forward shape."""

    def __init__(self, teacher: LightLT, student: LightQueryEncoder):
        super().__init__()
        if student.input_dim != teacher.config.input_dim:
            raise ValueError(
                f"student input_dim {student.input_dim} != teacher "
                f"input_dim {teacher.config.input_dim}"
            )
        if student.embed_dim != teacher.config.embed_dim:
            raise ValueError(
                f"student embed_dim {student.embed_dim} != teacher "
                f"embed_dim {teacher.config.embed_dim}"
            )
        self.teacher = teacher
        self.student = student

    def forward(self, features: Tensor | np.ndarray) -> DistillationOutput:
        if not isinstance(features, Tensor):
            features = Tensor(np.asarray(features, dtype=np.float64))
        # The teacher is inference-only here: eval mode (the session's
        # model.train() switched it on) and no tape.
        self.teacher.eval()
        with no_grad():
            teacher_emb = self.teacher.backbone(features).data
            scores, codes = self.teacher.dsq.assignment_scores(teacher_emb)
        student_emb = self.student(features)
        return DistillationOutput(
            embedding=student_emb,
            quantized=Tensor(teacher_emb),
            logits=Tensor(scores.reshape(len(codes), -1)),
            codes=codes,
        )


class DistillationCriterion(Module):
    """Assignment-matching objective over the distillation output slots.

    Holds the teacher's materialized codebooks as constants; student
    per-level scores are recomputed differentiably against them, with the
    residual offsets taken from the *teacher's* hard codes so each level's
    posterior is matched at the teacher's operating point.
    """

    def __init__(
        self,
        codebooks: np.ndarray,
        similarity: str = "neg_l2",
        topology: str = "residual",
        config: DistillationConfig = DistillationConfig(),
    ):
        super().__init__()
        if similarity not in ("neg_l2", "dot"):
            raise ValueError(
                f"distillation supports neg_l2/dot similarities, got {similarity!r}"
            )
        self.config = config
        self.similarity = similarity
        self.topology = topology
        # Dict-wrapped so Module's attribute scan never mistakes the frozen
        # codebook tensors for trainable parameters.
        codebooks = np.asarray(codebooks, dtype=np.float64).copy()
        self._frozen: dict[str, object] = {
            "codebooks": codebooks,
            "tensors": [Tensor(book) for book in codebooks],
            "code_sq": (codebooks * codebooks).sum(axis=2),
        }

    def forward(
        self,
        logits: Tensor,
        quantized: Tensor,
        labels: np.ndarray,
        embedding: Tensor | None = None,
    ) -> LossBreakdown:
        del labels  # distillation is self-supervised
        if embedding is None:
            raise ValueError("DistillationCriterion requires the student embedding")
        student = embedding
        teacher_emb = quantized.data
        config = self.config
        codebooks: np.ndarray = self._frozen["codebooks"]  # type: ignore[assignment]
        num_books, num_words, _ = codebooks.shape
        teacher_scores = logits.data.reshape(len(teacher_emb), num_books, num_words)
        codes = teacher_scores.argmax(axis=2)
        if config.mode == "kl":
            use_dot = self.similarity == "dot"
            offset = np.zeros((len(teacher_emb), codebooks.shape[2]))
            total_kl: Tensor | None = None
            for k in range(num_books):
                if self.topology == "residual" and k:
                    x = student - Tensor(offset.copy())
                else:
                    x = student
                cross = x @ self._frozen["tensors"][k].T  # type: ignore[index]
                if use_dot:
                    level_scores = cross
                else:
                    sq = (x * x).sum(axis=1, keepdims=True)
                    level_scores = (
                        cross * 2.0 - sq - Tensor(self._frozen["code_sq"][k])  # type: ignore[index]
                    )
                term = assignment_kl_loss(
                    level_scores, teacher_scores[:, k], temperature=config.temperature
                )
                total_kl = term if total_kl is None else total_kl + term
                if self.topology == "residual" and k + 1 < num_books:
                    offset += codebooks[k][codes[:, k]]
            assert total_kl is not None  # M >= 1 guaranteed by CodebookChain
            main = total_kl * (1.0 / num_books)
        else:
            # MoPQ matches against the *quantized* representations the scan
            # actually ranks; rebuild them from the teacher's hard codes.
            targets = reconstruct(codes, codebooks)
            main = matching_contrastive_loss(student, targets, tau=config.tau)
        total = main
        anchor_term: Tensor | None = None
        if config.anchor > 0:
            diff = student - Tensor(teacher_emb)
            anchor_term = (diff * diff).sum(axis=1).mean()
            total = total + anchor_term * config.anchor
        return LossBreakdown(
            total=total, classification=main, reconstruction=anchor_term
        )


def default_distill_training_config() -> TrainingConfig:
    """The distillation fit budget used when none is given.

    The student is tiny (one or two GEMMs per step), so the default
    budget leans on many cheap epochs; small corpora still see enough
    optimiser steps to converge.
    """
    return TrainingConfig(
        epochs=120,
        batch_size=32,
        learning_rate=2e-2,
        weight_decay=0.0,
        schedule="cosine",
        warm_start=False,
    )


def distill_query_encoder(
    teacher: LightLT,
    dataset: RetrievalDataset,
    hidden_dim: int | None = None,
    config: DistillationConfig = DistillationConfig(),
    training_config: TrainingConfig | None = None,
    seed: int = 0,
    checkpoint_dir: str | None = None,
    resume: bool = False,
) -> tuple[LightQueryEncoder, TrainingHistory]:
    """Fit a :class:`LightQueryEncoder` against a trained teacher.

    Runs a full :class:`~repro.core.trainer.Trainer` fit over the dataset's
    train split with only the student's parameters optimisable, so the run
    inherits every session guarantee (checkpoints via ``checkpoint_dir``/
    ``resume``, non-finite step guards, schedules). Returns the trained
    student in eval mode plus the recorded history.
    """
    if training_config is None:
        training_config = default_distill_training_config()
    if training_config.fused:
        raise ValueError(
            "distillation drives the reference training path; "
            "set TrainingConfig(fused=False)"
        )
    student = LightQueryEncoder(
        teacher.config.input_dim,
        teacher.config.embed_dim,
        hidden_dim=hidden_dim,
        rng=seed,
    )
    wrapper = DistillationModel(teacher, student)
    criterion = DistillationCriterion(
        codebooks=teacher.dsq.materialized_codebooks(),
        similarity=teacher.dsq.similarity,
        topology=teacher.dsq.topology,
        config=config,
    )
    trainer = Trainer(
        teacher.config, training_config=training_config, seed=seed
    )
    _, _, history = trainer.fit(
        dataset,
        model=wrapper,
        criterion=criterion,
        trainable_params=student.parameters(),
        run_warm_start=False,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    student.eval()
    teacher.eval()
    return student, history
