"""The light query encoder and its one-file persistence format."""

from __future__ import annotations

import numpy as np

from repro.nn import MLP, Linear, Module, Tensor
from repro.rng import make_rng

ENCODER_FORMAT_VERSION = 1

_META_KEY = "__meta__"
_PARAM_PREFIX = "param::"


class LightQueryEncoder(Module):
    """Linear (optionally one-hidden-layer) raw-features → embedding map.

    The query-side counterpart of the full backbone + DSQ stack: after
    distillation (:func:`repro.encoding.distill_query_encoder`) its output
    lives in the same embedding space the index's codebooks were built
    over, so ADC search accepts it unchanged. :meth:`embed` is the serving
    fast path — plain NumPy GEMMs over the stored weights, no tape.

    Parameters
    ----------
    input_dim, embed_dim:
        Raw feature and embedding dimensionalities (must match the
        teacher's ``LightLTConfig``).
    hidden_dim:
        ``None`` (default) for a pure affine projection; a positive width
        inserts one ReLU hidden layer for teachers too non-linear for the
        affine student to track.
    """

    def __init__(
        self,
        input_dim: int,
        embed_dim: int,
        hidden_dim: int | None = None,
        rng: np.random.Generator | int = 0,
    ):
        super().__init__()
        if input_dim < 1 or embed_dim < 1:
            raise ValueError("input_dim and embed_dim must be positive")
        if hidden_dim is not None and hidden_dim < 1:
            raise ValueError("hidden_dim must be positive (or None for linear)")
        self.input_dim = input_dim
        self.embed_dim = embed_dim
        self.hidden_dim = hidden_dim
        rng = make_rng(rng)
        if hidden_dim is None:
            self.net: Module = Linear(input_dim, embed_dim, rng)
        else:
            self.net = MLP([input_dim, hidden_dim, embed_dim], rng)

    def forward(self, features: Tensor | np.ndarray) -> Tensor:
        """Autograd projection (training path)."""
        if not isinstance(features, Tensor):
            features = Tensor(np.asarray(features, dtype=np.float64))
        return self.net(features)

    def embed(self, features: np.ndarray) -> np.ndarray:
        """No-tape batched projection — the serving fast path.

        Mirrors the layer op order (``x @ W + b``, ``pre * (pre > 0)``) so
        values are bit-identical to :meth:`forward`. A single ``(d,)`` row
        is promoted and returned as ``(embed_dim,)``.
        """
        feats = np.asarray(features, dtype=np.float64)
        single = feats.ndim == 1
        if single:
            feats = feats[None, :]
        if feats.ndim != 2 or feats.shape[1] != self.input_dim:
            raise ValueError(
                f"features must be (n, {self.input_dim}), got shape "
                f"{np.asarray(features).shape}"
            )
        if isinstance(self.net, Linear):
            out = feats @ self.net.weight.data
            out = out + self.net.bias.data
        else:
            out = feats
            for layer in self.net.net:
                if isinstance(layer, Linear):
                    out = out @ layer.weight.data
                    if layer.bias is not None:
                        out = out + layer.bias.data
                else:  # ReLU
                    out = out * (out > 0)
        return out[0] if single else out


def save_encoder(encoder: LightQueryEncoder, path: str) -> None:
    """Write the encoder to ``path`` as a single ``.npz`` archive.

    The archive holds the architecture header plus every parameter array;
    written through an open file handle so the name is used verbatim (no
    implicit ``.npz`` suffix).
    """
    meta = np.array(
        [
            ENCODER_FORMAT_VERSION,
            encoder.input_dim,
            encoder.embed_dim,
            encoder.hidden_dim or 0,
        ],
        dtype=np.int64,
    )
    arrays = {
        f"{_PARAM_PREFIX}{name}": value
        for name, value in encoder.state_dict().items()
    }
    with open(path, "wb") as handle:
        np.savez(handle, **{_META_KEY: meta}, **arrays)


def load_encoder(path: str) -> LightQueryEncoder:
    """Rebuild a :func:`save_encoder` archive; refuses unknown versions."""
    with np.load(path) as archive:
        if _META_KEY not in archive.files:
            raise ValueError(f"{path} is not a light-query-encoder archive")
        version, input_dim, embed_dim, hidden_dim = (
            int(v) for v in archive[_META_KEY]
        )
        if version != ENCODER_FORMAT_VERSION:
            raise ValueError(
                f"unsupported encoder format {version} "
                f"(expected {ENCODER_FORMAT_VERSION})"
            )
        encoder = LightQueryEncoder(
            input_dim, embed_dim, hidden_dim=hidden_dim or None
        )
        state = {
            name[len(_PARAM_PREFIX):]: archive[name]
            for name in archive.files
            if name.startswith(_PARAM_PREFIX)
        }
    encoder.load_state_dict(state)
    encoder.eval()
    return encoder
