"""Guarded training: detect divergence, roll back, back off, retry.

Long-tail training is unusually spike-prone — the class-weighted losses of
§III-D multiply gradients on rare classes by large factors, so one unlucky
batch can blow the loss to NaN/Inf. :class:`GuardedTrainer` wraps a
:class:`~repro.core.trainer.Trainer` with a checkpoint-backed recovery
policy:

1. every epoch ends with an atomic checkpoint (plus one *initial*
   checkpoint before epoch 0, so even a first-epoch divergence has a
   rollback target);
2. an epoch that skipped steps (non-finite loss or gradient norm), recorded
   a non-finite mean, or exceeded the configured gradient-norm ceiling is
   rolled back to the last valid checkpoint and retried with the base
   learning rate multiplied by ``lr_backoff``;
3. retries are bounded; exhausting them raises
   :class:`TrainingDivergedError` carrying the full intervention log.

Every rollback is appended to ``history.events`` so the recovery story is
visible in the returned :class:`TrainingHistory` and survives checkpoints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.obs import get_obs
from repro.obs import names as metric_names
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.errors import TrainingDivergedError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.trainer import EpochReport, TrainerHooks, Trainer


@dataclass(frozen=True)
class GuardPolicy:
    """When to intervene and how hard to back off.

    ``max_retries`` bounds attempts *per epoch*; the counter resets on any
    successful epoch. ``lr_backoff`` multiplies the scheduler's base LR on
    each rollback (cumulatively across consecutive failures).
    ``grad_norm_limit`` optionally treats a finite-but-huge clipped
    gradient norm as divergence too.
    """

    max_retries: int = 2
    lr_backoff: float = 0.5
    grad_norm_limit: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if not 0.0 < self.lr_backoff < 1.0:
            raise ValueError("lr_backoff must lie in (0, 1)")


class GuardedTrainer:
    """A :class:`Trainer` front-end that survives loss spikes and crashes."""

    def __init__(
        self,
        trainer: "Trainer",
        checkpoint_dir: str,
        policy: GuardPolicy = GuardPolicy(),
        keep_checkpoints: int = 3,
    ):
        self.trainer = trainer
        self.checkpoint_dir = checkpoint_dir
        self.policy = policy
        self.keep_checkpoints = keep_checkpoints

    def fit(
        self,
        dataset,
        resume: bool = False,
        hooks: "TrainerHooks | None" = None,
        **session_kwargs,
    ):
        """Guarded version of ``Trainer.fit``; same return triple.

        ``session_kwargs`` pass through to ``Trainer.start_session``
        (``model=``, ``epochs=``, ``trainable_params=``, ...).
        """
        session = self.trainer.start_session(dataset, **session_kwargs)
        manager = CheckpointManager(self.checkpoint_dir, keep=self.keep_checkpoints)
        restored = manager.load_latest_valid() if resume else None
        if restored is not None:
            session.restore(restored)
        else:
            # Epoch-0 baseline: the rollback target for a first-epoch spike.
            manager.save(session.capture())
        retries = 0
        while not session.finished:
            failing_epoch = session.epochs_completed
            report = session.run_epoch(hooks=hooks)
            reason = self._diagnose(report)
            if reason is not None:
                if retries >= self.policy.max_retries:
                    raise TrainingDivergedError(
                        f"epoch {failing_epoch} still diverging ({reason}) after "
                        f"{retries} rollback(s); last base LR "
                        f"{session.scheduler.base_lr:.3g}. Interventions: "
                        f"{session.history.events}",
                        interventions=session.history.events,
                    )
                retries += 1
                state = manager.load_latest_valid()
                if state is None:
                    raise TrainingDivergedError(
                        f"epoch {failing_epoch} diverged ({reason}) and no valid "
                        "checkpoint remains to roll back to",
                        interventions=session.history.events,
                    )
                # Restore resets history to the checkpointed prefix; keep the
                # interventions recorded since then (events only ever append,
                # so the checkpoint's list is a prefix of the current one).
                prior_events = list(session.history.events)
                session.restore(state)
                if len(prior_events) > len(session.history.events):
                    session.history.events.extend(
                        prior_events[len(session.history.events):]
                    )
                # The restore reset base_lr to the checkpointed value, so
                # consecutive retries of the same epoch compound the backoff.
                session.scheduler.base_lr *= self.policy.lr_backoff**retries
                obs = get_obs()
                if obs.enabled:
                    obs.registry.counter(metric_names.TRAIN_GUARD_ROLLBACKS).inc()
                session.history.events.append(
                    {
                        "type": "rollback",
                        "epoch": failing_epoch,
                        "retry": retries,
                        "reason": reason,
                        "skipped_steps": report.skipped_steps,
                        "base_lr": session.scheduler.base_lr,
                    }
                )
                continue
            retries = 0
            manager.save(session.capture())
            if hooks is not None and hooks.after_epoch is not None:
                hooks.after_epoch(session.epochs_completed - 1, session)
        session.model.eval()
        return session.model, session.criterion, session.history

    def _diagnose(self, report: "EpochReport") -> str | None:
        """A human-readable divergence reason, or None for a healthy epoch."""
        if report.skipped_steps > 0:
            return f"{report.skipped_steps} step(s) skipped on non-finite loss/grad"
        if any(not math.isfinite(v) for v in report.terms.values()):
            return "non-finite epoch loss"
        limit = self.policy.grad_norm_limit
        if limit is not None and report.grad_norm_max > limit:
            return (
                f"gradient norm {report.grad_norm_max:.3g} exceeded limit {limit:.3g}"
            )
        return None
