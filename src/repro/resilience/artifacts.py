"""Durable ``.npz`` archives: atomic writes with embedded integrity manifests.

All persistent artifacts in the repository (model state, quantized indexes,
training checkpoints) go through this module. Writing is crash-safe —
write to a temporary file in the destination directory, flush, ``fsync``,
then atomically rename — so a reader never observes a half-written archive.
Each archive embeds a manifest recording a SHA-256 digest, dtype, and shape
per array, plus an artifact *kind* and format version, so loads detect
silent corruption (bit flips, truncation) and kind/version mismatches
before any downstream math sees garbage.

Legacy archives written by bare ``np.savez_compressed`` (no manifest) are
still readable; they simply get no checksum verification.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
import zlib

import numpy as np

from repro.resilience.errors import CorruptArtifactError, IncompatibleStateError

ARTIFACT_FORMAT_VERSION = 1

MANIFEST_KEY = "__manifest__"
META_KEY = "__meta__"
_RESERVED_KEYS = frozenset({MANIFEST_KEY, META_KEY})


def _digest(array: np.ndarray) -> str:
    """SHA-256 over an array's raw bytes (contiguous, native layout)."""
    contiguous = np.ascontiguousarray(array)
    return hashlib.sha256(contiguous.tobytes()).hexdigest()


def _encode_json(payload: object) -> np.ndarray:
    """Store a JSON document as a uint8 array (stable across platforms)."""
    return np.frombuffer(
        json.dumps(payload, sort_keys=True).encode("utf-8"), dtype=np.uint8
    ).copy()


def _decode_json(array: np.ndarray) -> object:
    return json.loads(np.asarray(array, dtype=np.uint8).tobytes().decode("utf-8"))


def write_archive(
    path: str,
    arrays: dict[str, np.ndarray],
    kind: str,
    meta: dict | None = None,
) -> None:
    """Atomically write ``arrays`` (plus optional JSON ``meta``) to ``path``.

    The archive lands fully-formed or not at all: content goes to a
    temporary file in the same directory, is fsync'd, and is renamed over
    ``path`` with ``os.replace``. A crash mid-write leaves any previous
    version of ``path`` untouched.
    """
    reserved = _RESERVED_KEYS.intersection(arrays)
    if reserved:
        raise ValueError(f"array keys {sorted(reserved)} are reserved")
    payload = {key: np.asarray(value) for key, value in arrays.items()}
    if meta is not None:
        payload[META_KEY] = _encode_json(meta)
    manifest = {
        "kind": kind,
        "format_version": ARTIFACT_FORMAT_VERSION,
        "arrays": {
            key: {
                "sha256": _digest(value),
                "dtype": value.dtype.str,
                "shape": list(value.shape),
            }
            for key, value in payload.items()
        },
    }
    payload[MANIFEST_KEY] = _encode_json(manifest)

    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".tmp-", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def read_archive(
    path: str,
    kind: str | None = None,
) -> tuple[dict[str, np.ndarray], dict | None, dict | None]:
    """Load and verify an archive; returns ``(arrays, meta, manifest)``.

    Raises :class:`CorruptArtifactError` if the file is unreadable,
    truncated, fails checksum verification, or disagrees with its manifest,
    and :class:`IncompatibleStateError` if the manifest's kind or format
    version does not match expectations. Archives without a manifest are
    treated as legacy: returned un-verified with ``manifest=None``.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            raw = {key: archive[key] for key in archive.files}
    except (
        zipfile.BadZipFile,
        zlib.error,
        ValueError,
        OSError,
        EOFError,
        KeyError,
    ) as exc:
        raise CorruptArtifactError(f"unreadable archive {path!r}: {exc}") from exc

    if MANIFEST_KEY not in raw:
        # Legacy archive: no integrity data to verify against.
        meta = _decode_json(raw.pop(META_KEY)) if META_KEY in raw else None
        return raw, meta, None

    try:
        manifest = _decode_json(raw.pop(MANIFEST_KEY))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CorruptArtifactError(f"unreadable manifest in {path!r}: {exc}") from exc

    version = manifest.get("format_version")
    if version != ARTIFACT_FORMAT_VERSION:
        raise IncompatibleStateError(
            f"unsupported artifact format version {version!r} in {path!r} "
            f"(expected {ARTIFACT_FORMAT_VERSION})"
        )
    if kind is not None and manifest.get("kind") != kind:
        raise IncompatibleStateError(
            f"artifact kind mismatch in {path!r}: "
            f"expected {kind!r}, found {manifest.get('kind')!r}"
        )

    entries = manifest.get("arrays", {})
    missing = sorted(set(entries) - set(raw))
    extra = sorted(set(raw) - set(entries))
    if missing or extra:
        raise CorruptArtifactError(
            f"archive {path!r} disagrees with its manifest: "
            f"missing={missing}, unexpected={extra}"
        )
    for key, entry in entries.items():
        value = raw[key]
        if value.dtype.str != entry["dtype"] or list(value.shape) != entry["shape"]:
            raise CorruptArtifactError(
                f"array {key!r} in {path!r} does not match its manifest: "
                f"stored {value.dtype.str}{value.shape}, "
                f"expected {entry['dtype']}{tuple(entry['shape'])}"
            )
        if _digest(value) != entry["sha256"]:
            raise CorruptArtifactError(
                f"checksum mismatch for array {key!r} in {path!r}"
            )

    meta = _decode_json(raw.pop(META_KEY)) if META_KEY in raw else None
    return raw, meta, manifest
