"""``repro.resilience`` — the fault-tolerant training & serving runtime.

Durable, checksum-verified artifacts (:mod:`~repro.resilience.artifacts`),
rotating crash-safe checkpoints (:mod:`~repro.resilience.checkpoint`),
divergence guards with rollback + LR backoff
(:mod:`~repro.resilience.guards`), typed failure modes
(:mod:`~repro.resilience.errors`), and a deterministic fault-injection
harness (:mod:`~repro.resilience.faults`) used by the test suite to prove
recovery end-to-end.

Guard interventions are observable: with :mod:`repro.obs` enabled, every
rollback increments ``train.guard.rollbacks`` in addition to the
``history.events`` log (see ``docs/metrics.md``); ``docs/architecture.md``
places this layer in the system diagram.
"""

from repro.resilience.artifacts import (
    ARTIFACT_FORMAT_VERSION,
    read_archive,
    write_archive,
)
from repro.resilience.checkpoint import (
    CHECKPOINT_KIND,
    CheckpointManager,
    flatten_state,
    unflatten_state,
)
from repro.resilience.errors import (
    CorruptArtifactError,
    IncompatibleStateError,
    ResilienceError,
    TrainingDivergedError,
)
from repro.resilience.faults import (
    AlwaysNaNLoss,
    CorruptResponseFault,
    NaNLossInjector,
    ReplicaCrash,
    ReplicaKillFault,
    ServingFaults,
    SimulatedCrash,
    SlowReplicaFault,
    crash_after_epoch,
    flip_bytes,
    truncate_file,
)
from repro.resilience.guards import GuardedTrainer, GuardPolicy

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "AlwaysNaNLoss",
    "CHECKPOINT_KIND",
    "CheckpointManager",
    "CorruptArtifactError",
    "CorruptResponseFault",
    "GuardPolicy",
    "GuardedTrainer",
    "IncompatibleStateError",
    "NaNLossInjector",
    "ReplicaCrash",
    "ReplicaKillFault",
    "ResilienceError",
    "ServingFaults",
    "SimulatedCrash",
    "SlowReplicaFault",
    "TrainingDivergedError",
    "crash_after_epoch",
    "flatten_state",
    "flip_bytes",
    "read_archive",
    "truncate_file",
    "unflatten_state",
    "write_archive",
]
