"""Deterministic fault injection for testing the fault-tolerant runtime.

Three failure families, each seeded/explicit so tests are reproducible:

- **Loss faults** — :class:`NaNLossInjector` poisons the training loss at
  chosen ``(epoch, step)`` coordinates via the trainer's ``transform_loss``
  hook, simulating the divergence spikes long-tail class weighting invites.
- **Process faults** — :func:`crash_after_epoch` raises
  :class:`SimulatedCrash` from the ``after_epoch`` hook, modelling a
  mid-run kill between checkpoint writes.
- **Storage faults** — :func:`truncate_file` and :func:`flip_bytes` damage
  saved archives the way real disks do (partial write, silent bit rot).

Nothing here is imported by production code paths; the trainer only sees
ordinary hook callables.
"""

from __future__ import annotations

import os

import numpy as np

from repro.rng import make_rng


class SimulatedCrash(RuntimeError):
    """Stand-in for an abrupt process kill during training."""


class NaNLossInjector:
    """Callable ``transform_loss`` hook that poisons chosen training steps.

    ``at`` lists ``(epoch, step)`` coordinates (both zero-based; ``step`` is
    the batch index within the epoch). With ``once=True`` (the default)
    each coordinate fires a single time, so a guarded trainer that rolls
    back and retries the epoch sees a clean second attempt — mimicking a
    transient spike rather than a persistent data problem.
    """

    def __init__(self, at: list[tuple[int, int]] | set[tuple[int, int]], once: bool = True):
        try:
            self.at = {(int(e), int(s)) for e, s in at}
        except TypeError:
            raise TypeError(
                "at must be a collection of (epoch, step) pairs, e.g. "
                f"at=[(1, 3)]; got {at!r}"
            ) from None
        self.once = once
        self.fired: list[tuple[int, int]] = []

    def __call__(self, epoch: int, step: int, value: float) -> float:
        key = (epoch, step)
        if key in self.at and not (self.once and key in self.fired):
            self.fired.append(key)
            return float("nan")
        return value


class AlwaysNaNLoss:
    """Hook that poisons *every* step of the given epochs — a persistent
    divergence no amount of retrying fixes, for exercising the guard's
    bounded-retry failure path."""

    def __init__(self, epochs: set[int] | list[int]):
        self.epochs = {int(e) for e in epochs}

    def __call__(self, epoch: int, step: int, value: float) -> float:
        return float("nan") if epoch in self.epochs else value


def crash_after_epoch(epoch: int):
    """``after_epoch`` hook raising :class:`SimulatedCrash` once ``epoch`` ends.

    The hook runs *after* the epoch's checkpoint is written, so it models
    the common case: the process dies between one durable checkpoint and
    the next epoch's work.
    """

    def hook(completed_epoch: int, session) -> None:
        if completed_epoch == epoch:
            raise SimulatedCrash(f"simulated crash after epoch {epoch}")

    return hook


def truncate_file(path: str, fraction: float = 0.5) -> None:
    """Chop a file to ``fraction`` of its size — a partial/interrupted write."""
    if not 0.0 <= fraction < 1.0:
        raise ValueError("fraction must lie in [0, 1)")
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(int(size * fraction))


def flip_bytes(path: str, count: int = 1, seed: int = 0) -> list[int]:
    """XOR ``count`` seeded-random bytes of a file with 0xFF — silent bit rot.

    Offsets avoid the first 16 bytes so the zip signature survives and the
    damage lands in content rather than being trivially detectable; returns
    the flipped offsets for test assertions.
    """
    size = os.path.getsize(path)
    if size <= 16:
        raise ValueError(f"{path!r} is too small to corrupt meaningfully")
    rng = make_rng(seed)
    # Unique offsets: flipping the same byte twice would undo the damage.
    offsets = sorted(
        int(o) + 16 for o in rng.choice(size - 16, size=min(count, size - 16), replace=False)
    )
    with open(path, "r+b") as handle:
        for offset in offsets:
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0xFF]))
    return offsets
