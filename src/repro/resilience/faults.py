"""Deterministic fault injection for testing the fault-tolerant runtime.

Four failure families, each seeded/explicit so tests are reproducible:

- **Loss faults** — :class:`NaNLossInjector` poisons the training loss at
  chosen ``(epoch, step)`` coordinates via the trainer's ``transform_loss``
  hook, simulating the divergence spikes long-tail class weighting invites.
- **Process faults** — :func:`crash_after_epoch` raises
  :class:`SimulatedCrash` from the ``after_epoch`` hook, modelling a
  mid-run kill between checkpoint writes.
- **Storage faults** — :func:`truncate_file` and :func:`flip_bytes` damage
  saved archives the way real disks do (partial write, silent bit rot).
- **Serving faults** — :class:`SlowReplicaFault`, :class:`ReplicaKillFault`,
  and :class:`CorruptResponseFault`, bundled by :class:`ServingFaults`,
  hit a serving replica at chosen ``(replica, call)`` coordinates — the
  same explicit-trigger pattern as the ``(epoch, step)`` loss faults, so
  failover tests replay identically. The daemon's replicas expose two duck-
  typed hook points (``before_scan`` / ``transform_response``) and never
  import this module.

Nothing here is imported by production code paths; the trainer and the
serving daemon only see ordinary hook callables.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.rng import make_rng


class SimulatedCrash(RuntimeError):
    """Stand-in for an abrupt process kill during training."""


class NaNLossInjector:
    """Callable ``transform_loss`` hook that poisons chosen training steps.

    ``at`` lists ``(epoch, step)`` coordinates (both zero-based; ``step`` is
    the batch index within the epoch). With ``once=True`` (the default)
    each coordinate fires a single time, so a guarded trainer that rolls
    back and retries the epoch sees a clean second attempt — mimicking a
    transient spike rather than a persistent data problem.
    """

    def __init__(self, at: list[tuple[int, int]] | set[tuple[int, int]], once: bool = True):
        try:
            self.at = {(int(e), int(s)) for e, s in at}
        except TypeError:
            raise TypeError(
                "at must be a collection of (epoch, step) pairs, e.g. "
                f"at=[(1, 3)]; got {at!r}"
            ) from None
        self.once = once
        self.fired: list[tuple[int, int]] = []

    def __call__(self, epoch: int, step: int, value: float) -> float:
        key = (epoch, step)
        if key in self.at and not (self.once and key in self.fired):
            self.fired.append(key)
            return float("nan")
        return value


class AlwaysNaNLoss:
    """Hook that poisons *every* step of the given epochs — a persistent
    divergence no amount of retrying fixes, for exercising the guard's
    bounded-retry failure path."""

    def __init__(self, epochs: set[int] | list[int]):
        self.epochs = {int(e) for e in epochs}

    def __call__(self, epoch: int, step: int, value: float) -> float:
        return float("nan") if epoch in self.epochs else value


def crash_after_epoch(epoch: int):
    """``after_epoch`` hook raising :class:`SimulatedCrash` once ``epoch`` ends.

    The hook runs *after* the epoch's checkpoint is written, so it models
    the common case: the process dies between one durable checkpoint and
    the next epoch's work.
    """

    def hook(completed_epoch: int, session) -> None:
        if completed_epoch == epoch:
            raise SimulatedCrash(f"simulated crash after epoch {epoch}")

    return hook


# ---------------------------------------------------------------------------
# Serving faults: deterministic failure injection for the serving daemon.
#
# A replica calls ``before_scan(replica_id, call)`` as a scan starts (calls
# are 1-based per replica) and ``transform_response(replica_id, call,
# indices, distances)`` on what it is about to return. Faults match on
# ``(replica, call)`` coordinates, mirroring the (epoch, step) triggers
# above, and record what they did in ``.fired`` for test assertions.
# ---------------------------------------------------------------------------


class ReplicaCrash(RuntimeError):
    """Stand-in for a serving replica dying mid-scan."""


def _normalize_calls(at) -> set[int] | None:
    if at is None:
        return None
    if isinstance(at, int):
        return {int(at)}
    return {int(c) for c in at}


class SlowReplicaFault:
    """Inject straggler latency: sleep ``delay_s`` before chosen scans.

    Fires on replica ``replica`` when the per-replica call number is in
    ``at``, or — with ``every=N`` — on every Nth call. With neither given
    it fires on every call (a persistently slow worker).
    """

    def __init__(
        self,
        replica: int,
        delay_s: float,
        at: int | list[int] | set[int] | None = None,
        every: int | None = None,
    ) -> None:
        if delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        if every is not None and every < 1:
            raise ValueError("every must be at least 1")
        self.replica = int(replica)
        self.delay_s = float(delay_s)
        self.at = _normalize_calls(at)
        self.every = every
        self.fired: list[tuple[int, int]] = []

    def _matches(self, call: int) -> bool:
        if self.at is not None and call in self.at:
            return True
        if self.every is not None and call % self.every == 0:
            return True
        return self.at is None and self.every is None

    def before_scan(self, replica: int, call: int) -> None:
        if replica == self.replica and self._matches(call):
            self.fired.append((replica, call))
            time.sleep(self.delay_s)


class ReplicaKillFault:
    """Replica ``replica`` is dead from call ``at_call`` on: every scan
    raises :class:`ReplicaCrash` until ``revive_at`` (exclusive), modelling
    a crashed worker that a supervisor eventually restarts (``revive_at=
    None`` means it stays down for the run)."""

    def __init__(self, replica: int, at_call: int, revive_at: int | None = None) -> None:
        if at_call < 1:
            raise ValueError("at_call is 1-based and must be >= 1")
        if revive_at is not None and revive_at <= at_call:
            raise ValueError("revive_at must come after at_call")
        self.replica = int(replica)
        self.at_call = int(at_call)
        self.revive_at = revive_at
        self.fired: list[tuple[int, int]] = []

    def before_scan(self, replica: int, call: int) -> None:
        if replica != self.replica or call < self.at_call:
            return
        if self.revive_at is not None and call >= self.revive_at:
            return
        self.fired.append((replica, call))
        raise ReplicaCrash(
            f"simulated crash of replica {replica} at call {call}"
        )


class CorruptResponseFault:
    """Flip bits in a scan response at chosen calls — silent wire corruption.

    ``count`` seeded-random entries of the returned index matrix get one
    bit XORed (which may push them out of range) and their distances set
    to ``-1.0`` (impossible for a squared distance), so a response
    validator has something concrete to catch. Operates on copies; the
    engine's own buffers are never damaged.
    """

    def __init__(
        self,
        replica: int,
        at: int | list[int] | set[int],
        count: int = 2,
        seed: int = 0,
    ) -> None:
        if count < 1:
            raise ValueError("count must be at least 1")
        self.replica = int(replica)
        self.at = _normalize_calls(at)
        self.count = int(count)
        self.seed = int(seed)
        self.fired: list[tuple[int, int]] = []

    def transform_response(
        self,
        replica: int,
        call: int,
        indices: np.ndarray,
        distances: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        if replica != self.replica or call not in self.at or indices.size == 0:
            return indices, distances
        self.fired.append((replica, call))
        indices = indices.copy()
        distances = distances.copy()
        # One RNG per (replica, call) so concurrent replicas can't reorder
        # the draws between runs.
        rng = make_rng(self.seed + 1009 * call + replica)
        flat = rng.choice(indices.size, size=min(self.count, indices.size),
                          replace=False)
        rows, cols = np.unravel_index(flat, indices.shape)
        indices[rows, cols] ^= 1 << int(rng.integers(0, 8))
        distances[rows, cols] = -1.0
        return indices, distances


class ServingFaults:
    """Bundle serving faults behind the two replica hook points.

    The daemon hands each replica one ``ServingFaults``; every fault sees
    every coordinate and decides for itself whether to fire, so one plan
    can script a whole incident (slow worker at calls 3..9, crash at 10,
    corruption on the failover target at 11).
    """

    def __init__(self, *faults) -> None:
        self.faults = list(faults)

    def add(self, fault) -> "ServingFaults":
        self.faults.append(fault)
        return self

    def before_scan(self, replica: int, call: int) -> None:
        for fault in self.faults:
            hook = getattr(fault, "before_scan", None)
            if hook is not None:
                hook(replica, call)

    def transform_response(
        self,
        replica: int,
        call: int,
        indices: np.ndarray,
        distances: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        for fault in self.faults:
            hook = getattr(fault, "transform_response", None)
            if hook is not None:
                indices, distances = hook(replica, call, indices, distances)
        return indices, distances


def truncate_file(path: str, fraction: float = 0.5) -> None:
    """Chop a file to ``fraction`` of its size — a partial/interrupted write."""
    if not 0.0 <= fraction < 1.0:
        raise ValueError("fraction must lie in [0, 1)")
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(int(size * fraction))


def flip_bytes(path: str, count: int = 1, seed: int = 0) -> list[int]:
    """XOR ``count`` seeded-random bytes of a file with 0xFF — silent bit rot.

    Offsets avoid the first 16 bytes so the zip signature survives and the
    damage lands in content rather than being trivially detectable; returns
    the flipped offsets for test assertions.
    """
    size = os.path.getsize(path)
    if size <= 16:
        raise ValueError(f"{path!r} is too small to corrupt meaningfully")
    rng = make_rng(seed)
    # Unique offsets: flipping the same byte twice would undo the damage.
    offsets = sorted(
        int(o) + 16 for o in rng.choice(size - 16, size=min(count, size - 16), replace=False)
    )
    with open(path, "r+b") as handle:
        for offset in offsets:
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0xFF]))
    return offsets
