"""Epoch checkpoints: rotation, atomic persistence, and corrupt-file fallback.

A checkpoint is the complete mutable state of a training session — model and
criterion parameters, optimizer moments, scheduler position, data-loader and
dropout RNG states, and the recorded history — captured after an epoch so an
interrupted run resumes *bit-exactly* where it stopped. The state travels as
a nested dict whose leaves are either ``np.ndarray`` (stored as archive
members) or JSON-able scalars/containers (stored in the archive's meta
document); :func:`flatten_state`/:func:`unflatten_state` convert between the
two representations generically.

:class:`CheckpointManager` owns a directory of ``checkpoint-epochNNNNN.npz``
files, keeps the newest ``keep`` of them, and — because archives are
integrity-checked on load — recovers from a corrupt newest checkpoint by
falling back to the next older valid one.
"""

from __future__ import annotations

import os
import re

import numpy as np

from repro.resilience.artifacts import read_archive, write_archive
from repro.resilience.errors import CorruptArtifactError, IncompatibleStateError

CHECKPOINT_KIND = "training-checkpoint"

_ARRAY_PLACEHOLDER = "__array__"
_FILENAME = "checkpoint-epoch{epoch:05d}.npz"
_FILENAME_RE = re.compile(r"^checkpoint-epoch(\d{5})\.npz$")


def flatten_state(state: dict) -> tuple[dict[str, np.ndarray], dict]:
    """Split a nested state tree into (arrays, JSON-able skeleton).

    Array leaves are replaced in the skeleton by ``{"__array__": key}``
    placeholders pointing into the flat array dict; everything else must be
    JSON-serialisable and stays in the skeleton verbatim.
    """
    arrays: dict[str, np.ndarray] = {}

    def walk(node: object, path: str) -> object:
        if isinstance(node, np.ndarray):
            arrays[path] = node
            return {_ARRAY_PLACEHOLDER: path}
        if isinstance(node, dict):
            return {key: walk(value, f"{path}/{key}") for key, value in node.items()}
        if isinstance(node, (list, tuple)):
            return [walk(item, f"{path}/{i}") for i, item in enumerate(node)]
        if isinstance(node, (np.integer, np.floating)):
            return node.item()
        return node

    skeleton = walk(state, "state")
    return arrays, skeleton


def unflatten_state(arrays: dict[str, np.ndarray], skeleton: dict) -> dict:
    """Inverse of :func:`flatten_state`."""

    def walk(node: object) -> object:
        if isinstance(node, dict):
            if set(node) == {_ARRAY_PLACEHOLDER}:
                key = node[_ARRAY_PLACEHOLDER]
                if key not in arrays:
                    raise CorruptArtifactError(
                        f"checkpoint references missing array {key!r}"
                    )
                return arrays[key]
            return {key: walk(value) for key, value in node.items()}
        if isinstance(node, list):
            return [walk(item) for item in node]
        return node

    return walk(skeleton)


class CheckpointManager:
    """Saves, rotates, and restores training checkpoints in one directory.

    ``keep`` bounds disk use: after each save, only the newest ``keep``
    checkpoints survive. Loading scans newest-to-oldest and transparently
    skips corrupt files (recording them in :attr:`skipped`), so a crash
    mid-``fsync`` or a damaged disk block costs at most one epoch of work.
    """

    def __init__(self, directory: str, keep: int = 3):
        if keep < 1:
            raise ValueError("keep must be at least 1")
        self.directory = directory
        self.keep = keep
        self.skipped: list[tuple[str, str]] = []  # (path, reason) of corrupt files
        os.makedirs(directory, exist_ok=True)
        self._sweep_stale_temps()

    # ------------------------------------------------------------------
    # Inventory
    # ------------------------------------------------------------------
    def checkpoint_path(self, epoch: int) -> str:
        return os.path.join(self.directory, _FILENAME.format(epoch=epoch))

    def list_checkpoints(self) -> list[tuple[int, str]]:
        """All on-disk checkpoints as ``(epoch, path)``, oldest first."""
        found = []
        for name in os.listdir(self.directory):
            match = _FILENAME_RE.match(name)
            if match:
                found.append((int(match.group(1)), os.path.join(self.directory, name)))
        return sorted(found)

    # ------------------------------------------------------------------
    # Save / load
    # ------------------------------------------------------------------
    def save(self, state: dict) -> str:
        """Persist ``state`` (must contain an integer ``"epoch"``); prune old files."""
        epoch = int(state["epoch"])
        arrays, skeleton = flatten_state(state)
        path = self.checkpoint_path(epoch)
        write_archive(path, arrays, kind=CHECKPOINT_KIND, meta=skeleton)
        self._prune()
        return path

    def load(self, path: str) -> dict:
        """Load one checkpoint file, verifying integrity."""
        arrays, skeleton, manifest = read_archive(path, kind=CHECKPOINT_KIND)
        if manifest is None or skeleton is None:
            raise CorruptArtifactError(
                f"{path!r} is not a structured checkpoint archive"
            )
        return unflatten_state(arrays, skeleton)

    def load_latest_valid(self) -> dict | None:
        """Newest checkpoint that passes verification, or None if there is none.

        Corrupt checkpoints encountered on the way are remembered in
        :attr:`skipped`; an :class:`IncompatibleStateError` is *not* skipped
        — older checkpoints would be equally incompatible and silently
        resuming from the distant past would be worse than failing.
        """
        for epoch, path in reversed(self.list_checkpoints()):
            try:
                return self.load(path)
            except CorruptArtifactError as exc:
                self.skipped.append((path, str(exc)))
            except IncompatibleStateError:
                raise
        return None

    def _prune(self) -> None:
        checkpoints = self.list_checkpoints()
        for _, path in checkpoints[: max(len(checkpoints) - self.keep, 0)]:
            os.unlink(path)
        self._sweep_stale_temps()

    def _sweep_stale_temps(self) -> None:
        # A crash mid-write leaves an orphaned temp file next to the real
        # checkpoints; no write of ours is in flight when this runs (manager
        # construction or just after a completed save), so any temp is stale.
        for name in os.listdir(self.directory):
            if ".npz.tmp-" in name and _FILENAME_RE.match(name.split(".npz.tmp-")[0] + ".npz"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:  # pragma: no cover - racing deletion is fine
                    pass
