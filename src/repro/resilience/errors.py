"""Typed failure modes of the fault-tolerant runtime.

Every durable artifact (model state, quantized index, training checkpoint)
can fail in exactly two interesting ways: the bytes on disk are damaged, or
the bytes are intact but describe something other than what the caller is
trying to load. The two exception types below keep those cases distinct so
recovery code can fall back past corruption while refusing to paper over a
genuine incompatibility. Both subclass :class:`ValueError` so pre-existing
callers that caught ``ValueError`` keep working.
"""

from __future__ import annotations


class ResilienceError(Exception):
    """Common base for all fault-tolerance errors."""


class CorruptArtifactError(ResilienceError, ValueError):
    """An on-disk artifact is unreadable or fails integrity verification.

    Raised for truncated archives, zip/zlib-level damage, checksum
    mismatches, and archives whose contents disagree with their embedded
    manifest. Safe to handle by falling back to an older artifact.
    """


class IncompatibleStateError(ResilienceError, ValueError):
    """An artifact is intact but does not match what the caller expects.

    Raised for unknown format versions, wrong artifact kinds (e.g. loading
    an index archive as a model checkpoint), missing/unexpected parameter
    keys, and shape or configuration mismatches. Falling back to an older
    artifact will not help; the caller's expectation is wrong.
    """


class TrainingDivergedError(ResilienceError, RuntimeError):
    """Training kept diverging after the guard exhausted its retries.

    Carries the intervention log so the failure report shows exactly which
    epochs spiked, what was rolled back, and which learning rates were
    attempted before giving up.
    """

    def __init__(self, message: str, interventions: list[dict] | None = None):
        super().__init__(message)
        self.interventions = list(interventions or [])
