"""Extension experiments beyond the paper's evaluation section.

Three analyses the paper motivates but does not run:

1. **Proposition 1 in practice** — the center+ranking surrogate vs the
   direct triplet loss: per-batch wall-clock scaling (O(N) vs O(N³)) and
   the bound itself, measured on real model outputs.
2. **Re-weighting vs re-sampling** (§II-B) — the paper chooses
   class-weighted CE over oversampling; this experiment compares both
   mitigations (and no mitigation) under the same budget.
3. **Head→tail structure** — retrieval quality on a *hierarchical* corpus
   where tail classes sit near head classes in feature space, the regime
   LTHNet's knowledge transfer targets (§I discusses its limits).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.core.losses import LossConfig, center_loss, ranking_loss, triplet_loss
from repro.core.trainer import Trainer, evaluate_map
from repro.data.datasets import RetrievalDataset, Split
from repro.data.loader import BalancedDataLoader
from repro.data.longtail import labels_from_sizes, zipf_class_sizes
from repro.data.registry import load_dataset
from repro.data.synthetic import hierarchy_feature_model
from repro.experiments.config import (
    default_loss_config,
    default_model_config,
    default_training_config,
)
from repro.experiments.reporting import format_table
from repro.nn import Tensor
from repro.rng import make_rng, spawn


# ---------------------------------------------------------------------------
# 1. Proposition 1: surrogate vs triplet loss
# ---------------------------------------------------------------------------

@dataclass
class Proposition1Point:
    """One batch-size measurement."""

    batch_size: int
    surrogate_seconds: float
    triplet_seconds: float
    surrogate_value: float
    triplet_value: float

    @property
    def speedup(self) -> float:
        return self.triplet_seconds / max(self.surrogate_seconds, 1e-12)


def run_proposition1(
    batch_sizes: tuple[int, ...] = (16, 32, 64, 128),
    dim: int = 16,
    num_classes: int = 8,
    repeats: int = 3,
    seed: int = 0,
) -> list[Proposition1Point]:
    """Time L_c + L_r against the direct triplet loss across batch sizes.

    Both losses run forward+backward on identical clustered batches; the
    surrogate should scale linearly in the batch size while the triplet
    loss scales cubically (§III-D's complexity argument).
    """
    rng = make_rng(seed)
    prototypes_np = rng.normal(size=(num_classes, dim)) * 3.0
    results = []
    for batch_size in batch_sizes:
        labels = rng.integers(0, num_classes, size=batch_size)
        points = prototypes_np[labels] + rng.normal(scale=0.5, size=(batch_size, dim))

        def surrogate() -> float:
            embeddings = Tensor(points.copy(), requires_grad=True)
            prototypes = Tensor(prototypes_np)
            value = center_loss(embeddings, labels, prototypes) + ranking_loss(
                embeddings, labels, prototypes
            )
            value.backward()
            return value.item()

        def triplet() -> float:
            embeddings = Tensor(points.copy(), requires_grad=True)
            value = triplet_loss(embeddings, labels, margin=0.0)
            if value.requires_grad:
                value.backward()
            return value.item()

        surrogate_time = min(_time_call(surrogate) for _ in range(repeats))
        triplet_time = min(_time_call(triplet) for _ in range(repeats))
        results.append(
            Proposition1Point(
                batch_size=batch_size,
                surrogate_seconds=surrogate_time,
                triplet_seconds=triplet_time,
                surrogate_value=surrogate(),
                triplet_value=triplet(),
            )
        )
    return results


def _time_call(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def format_proposition1(points: list[Proposition1Point]) -> str:
    headers = ["batch", "L_c+L_r (s)", "triplet (s)", "speedup", "L_c+L_r", "triplet"]
    rows = [
        [
            p.batch_size,
            p.surrogate_seconds,
            p.triplet_seconds,
            p.speedup,
            p.surrogate_value,
            p.triplet_value,
        ]
        for p in points
    ]
    return format_table(
        headers, rows, title="Proposition 1 — surrogate vs triplet loss", float_digits=4
    )


# ---------------------------------------------------------------------------
# 2. Re-weighting vs re-sampling (§II-B)
# ---------------------------------------------------------------------------

def run_mitigation_comparison(
    dataset_name: str = "qba",
    imbalance_factor: int = 100,
    scale: str = "ci",
    seed: int = 0,
    fast: bool = True,
) -> list[tuple[str, float]]:
    """Compare long-tail mitigations under one training budget.

    - ``none``: plain CE, natural sampling.
    - ``re-weighting``: the paper's class-weighted CE (Eqn. 12).
    - ``re-sampling``: plain CE with class-balanced oversampling.
    """
    dataset = load_dataset(dataset_name, imbalance_factor, scale=scale, seed=seed)
    model_config = default_model_config(dataset)
    training_config = default_training_config(dataset, fast=fast)
    base_loss = default_loss_config(dataset)

    results = []
    for label, loss_config, balanced in (
        ("none", replace(base_loss, use_class_weights=False), False),
        ("re-weighting", base_loss, False),
        ("re-sampling", replace(base_loss, use_class_weights=False), True),
    ):
        score = _train_with_mitigation(
            dataset, model_config, loss_config, training_config, balanced, seed
        )
        results.append((label, score))
    return results


def _train_with_mitigation(
    dataset, model_config, loss_config, training_config, balanced: bool, seed: int
) -> float:
    trainer = Trainer(model_config, loss_config, training_config, seed=seed)
    if not balanced:
        model, _, _ = trainer.fit(dataset)
        return evaluate_map(model, dataset)

    # Re-sampling path: hand-rolled loop over a BalancedDataLoader.
    from repro.nn import AdamW

    model, criterion = trainer.build(dataset)
    if training_config.warm_start:
        from repro.core.trainer import warm_start_prototypes
        from repro.core.warmstart import warm_start_codebooks

        warm_start_codebooks(model, dataset.train.features, rng=make_rng(seed))
        warm_start_prototypes(model, criterion, dataset)
    model.train()
    backbone_params = model.backbone.parameters()
    other_params = (
        model.dsq.parameters() + model.classifier.parameters() + criterion.parameters()
    )
    optimizer = AdamW(
        [
            {"params": backbone_params, "lr_scale": training_config.backbone_lr_scale},
            {"params": other_params, "lr_scale": 1.0},
        ],
        lr=training_config.learning_rate,
        weight_decay=training_config.weight_decay,
    )
    loader = BalancedDataLoader(
        dataset.train,
        batch_size=training_config.batch_size,
        rng=spawn(make_rng(seed), 2)[1],
    )
    for _ in range(training_config.epochs):
        for features, labels in loader:
            optimizer.zero_grad()
            output = model(Tensor(features))
            breakdown = criterion(
                output.logits, output.quantized, labels, embedding=output.embedding
            )
            breakdown.total.backward()
            optimizer.step()
    model.eval()
    return evaluate_map(model, dataset)


def format_mitigation(results: list[tuple[str, float]], title: str) -> str:
    return format_table(["mitigation", "MAP"], [list(r) for r in results], title=title)


# ---------------------------------------------------------------------------
# 3. Hierarchical head→tail structure
# ---------------------------------------------------------------------------

def build_hierarchical_dataset(
    num_classes: int = 20,
    num_superclasses: int = 5,
    head_size: int = 120,
    imbalance_factor: float = 40.0,
    dim: int = 32,
    n_query: int = 200,
    n_db: int = 1000,
    seed: int = 0,
) -> RetrievalDataset:
    """A long-tail corpus whose tail classes neighbour head classes.

    Classes are grouped under superclasses with small within-group offsets,
    so rare classes have a semantically-similar frequent sibling — the
    regime in which head→tail knowledge transfer (LTHNet's premise) and
    class weighting interact.
    """
    rng = make_rng(seed)
    model_rng, train_rng, query_rng, db_rng, val_rng = spawn(rng, 5)
    feature_model = hierarchy_feature_model(
        num_classes=num_classes,
        dim=dim,
        num_superclasses=num_superclasses,
        separation=4.0,
        sub_separation=1.4,
        intra_sigma=0.55,
        rng=model_rng,
    )
    train_sizes = zipf_class_sizes(num_classes, head_size, imbalance_factor)
    train_labels = labels_from_sizes(train_sizes, rng=train_rng)
    query_labels = np.tile(np.arange(num_classes), n_query // num_classes)
    db_labels = np.tile(np.arange(num_classes), n_db // num_classes)
    val_labels = np.tile(np.arange(num_classes), 4)
    return RetrievalDataset(
        name="hierarchical",
        num_classes=num_classes,
        target_imbalance_factor=imbalance_factor,
        train=Split(feature_model.sample(train_labels, train_rng), train_labels),
        query=Split(feature_model.sample(query_labels, query_rng), query_labels),
        database=Split(feature_model.sample(db_labels, db_rng), db_labels),
        validation=Split(feature_model.sample(val_labels, val_rng), val_labels),
        metadata={"modality": "image", "scale": "ci", "dim": dim, "seed": seed},
    )


def run_hierarchical_transfer(seed: int = 0, fast: bool = True) -> dict[str, float]:
    """LightLT head/tail MAP on the hierarchical corpus, γ on vs off."""
    from repro.analysis import head_tail_report

    dataset = build_hierarchical_dataset(seed=seed)
    model_config = default_model_config(dataset)
    training_config = default_training_config(dataset, fast=fast)
    outcomes: dict[str, float] = {}
    for label, loss_config in (
        ("unweighted_tail", replace(default_loss_config(dataset), use_class_weights=False)),
        ("weighted_tail", default_loss_config(dataset)),
    ):
        trainer = Trainer(model_config, loss_config, training_config, seed=seed)
        model, _, _ = trainer.fit(dataset)
        report = head_tail_report(model, dataset)
        outcomes[label] = report.tail_map
        outcomes[label.replace("tail", "overall")] = report.overall_map
    return outcomes
