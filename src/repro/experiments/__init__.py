"""``repro.experiments`` — one runner per table/figure in the paper.

| Paper artifact | Runner |
|---|---|
| Table I | :func:`run_table1` |
| Fig. 4 | :func:`run_fig4` |
| Table II | :func:`run_table2` |
| Table III | :func:`run_table3` |
| Fig. 5 | :func:`run_fig5` |
| Table IV | :func:`run_table4` |
| Fig. 6 | :func:`run_fig6` |
| Fig. 7 | :func:`run_fig7` |
| Fig. 8 | :func:`run_fig8` |
"""

from repro.experiments.ablations import (
    AblationResult,
    format_fig5,
    format_fig6,
    format_table4,
    run_fig5,
    run_fig6,
    run_table4,
)
from repro.experiments.comparison import (
    ComparisonResult,
    format_comparison,
    run_comparison,
    run_table2,
    run_table3,
)
from repro.experiments.config import (
    PAPER_FIG7,
    PAPER_MAP,
    PAPER_TABLE4,
    default_ensemble_config,
    default_loss_config,
    default_model_config,
    default_training_config,
)
from repro.experiments.datasets_exp import (
    format_fig4,
    format_table1,
    run_fig4,
    run_table1,
)
from repro.experiments.efficiency import (
    format_fig7,
    measurements_as_dicts,
    run_fig7,
)
from repro.experiments.extensions import (
    Proposition1Point,
    build_hierarchical_dataset,
    format_mitigation,
    format_proposition1,
    run_hierarchical_transfer,
    run_mitigation_comparison,
    run_proposition1,
)
from repro.experiments.reporting import ascii_scatter, format_series, format_table
from repro.experiments.visualization import (
    LOSS_VARIANTS,
    VisualizationResult,
    format_fig8,
    run_fig8,
)

__all__ = [
    "AblationResult",
    "ComparisonResult",
    "LOSS_VARIANTS",
    "PAPER_FIG7",
    "PAPER_MAP",
    "PAPER_TABLE4",
    "Proposition1Point",
    "VisualizationResult",
    "ascii_scatter",
    "build_hierarchical_dataset",
    "default_ensemble_config",
    "default_loss_config",
    "default_model_config",
    "default_training_config",
    "format_comparison",
    "format_fig4",
    "format_fig5",
    "format_fig6",
    "format_fig7",
    "format_fig8",
    "format_mitigation",
    "format_proposition1",
    "format_series",
    "format_table",
    "format_table1",
    "format_table4",
    "measurements_as_dicts",
    "run_comparison",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_hierarchical_transfer",
    "run_mitigation_comparison",
    "run_proposition1",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
]
