"""Tables II and III — MAP comparison of LightLT against all baselines."""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import (
    LightLTEnsembleMethod,
    LightLTMethod,
    RetrievalMethod,
    image_baselines,
    text_baselines,
)
from repro.data.registry import load_dataset
from repro.experiments.config import (
    PAPER_MAP,
    default_ensemble_config,
    default_loss_config,
    default_model_config,
    default_training_config,
)
from repro.experiments.reporting import format_table
from repro.retrieval.metrics import mean_average_precision


@dataclass
class ComparisonResult:
    """MAP of one method on one dataset/IF configuration."""

    dataset: str
    imbalance_factor: int
    method: str
    map_score: float
    paper_map: float | None


def _lightlt_methods(dataset, fast: bool, seed: int) -> list[RetrievalMethod]:
    model_config = default_model_config(dataset)
    loss_config = default_loss_config(dataset)
    training_config = default_training_config(dataset, fast=fast)
    return [
        LightLTMethod(model_config, loss_config, training_config, seed=seed),
        LightLTEnsembleMethod(
            model_config,
            loss_config,
            training_config,
            default_ensemble_config(fast=fast),
            seed=seed,
        ),
    ]


def run_comparison(
    dataset_name: str,
    imbalance_factor: int,
    methods: list[RetrievalMethod] | None = None,
    scale: str = "ci",
    seed: int = 0,
    fast: bool = False,
    include_lightlt: bool = True,
) -> list[ComparisonResult]:
    """Fit every method on one dataset configuration and score MAP."""
    dataset = load_dataset(dataset_name, imbalance_factor, scale=scale, seed=seed)
    if methods is None:
        if dataset.metadata.get("modality") == "text":
            methods = text_baselines(seed=seed, fast=fast)
        else:
            methods = image_baselines(seed=seed, fast=fast)
    if include_lightlt:
        methods = [*methods, *_lightlt_methods(dataset, fast, seed)]

    results = []
    paper_rows = PAPER_MAP.get(dataset_name, {})
    for method in methods:
        method.fit(dataset.train, dataset.num_classes)
        ranked = method.rank(dataset.query.features, dataset.database.features)
        score = mean_average_precision(
            dataset.database.labels[ranked], dataset.query.labels
        )
        results.append(
            ComparisonResult(
                dataset=dataset_name,
                imbalance_factor=imbalance_factor,
                method=method.name,
                map_score=score,
                paper_map=paper_rows.get(method.name, {}).get(imbalance_factor),
            )
        )
    return results


def run_table2(scale: str = "ci", seed: int = 0, fast: bool = False) -> list[ComparisonResult]:
    """Table II: all image configurations (CIFAR-100 / ImageNet-100)."""
    results = []
    for name in ("cifar100", "imagenet100"):
        for imbalance_factor in (50, 100):
            results.extend(
                run_comparison(name, imbalance_factor, scale=scale, seed=seed, fast=fast)
            )
    return results


def run_table3(scale: str = "ci", seed: int = 0, fast: bool = False) -> list[ComparisonResult]:
    """Table III: all text configurations (NC / QBA)."""
    results = []
    for name in ("nc", "qba"):
        for imbalance_factor in (50, 100):
            results.extend(
                run_comparison(name, imbalance_factor, scale=scale, seed=seed, fast=fast)
            )
    return results


def format_comparison(results: list[ComparisonResult], title: str) -> str:
    """Pivot results into the paper's method × (dataset, IF) layout."""
    configs = sorted({(r.dataset, r.imbalance_factor) for r in results})
    methods = []
    for result in results:
        if result.method not in methods:
            methods.append(result.method)
    by_key = {(r.method, r.dataset, r.imbalance_factor): r for r in results}
    headers = ["method"] + [f"{d} IF={f}" for d, f in configs] + ["paper (first cfg)"]
    rows = []
    for method in methods:
        row: list[object] = [method]
        for dataset, factor in configs:
            hit = by_key.get((method, dataset, factor))
            row.append(hit.map_score if hit else float("nan"))
        first = by_key.get((method, *configs[0]))
        row.append(first.paper_map if first and first.paper_map is not None else "-")
        rows.append(row)
    return format_table(headers, rows, title=title)
