"""Fig. 7 — inference speedup and compression vs database scale."""

from __future__ import annotations

from dataclasses import asdict

from repro.core.trainer import Trainer
from repro.data.registry import load_dataset
from repro.experiments.config import (
    PAPER_FIG7,
    default_loss_config,
    default_model_config,
    default_training_config,
)
from repro.experiments.reporting import format_table
from repro.retrieval.costs import EfficiencyMeasurement, efficiency_sweep


def run_fig7(
    dataset_name: str = "qba",
    imbalance_factor: int = 100,
    fractions: tuple[float, ...] = (1e-3, 1e-2, 1e-1, 1.0),
    scale: str = "ci",
    seed: int = 0,
    fast: bool = True,
    repeats: int = 3,
) -> list[EfficiencyMeasurement]:
    """Train LightLT on QBA IF=100 and sweep the database fraction (Fig. 7).

    The *measured* speedup is a wall-clock ratio between exhaustive search
    and ADC lookups over the model's codebooks; the *theoretical* curves
    come from §IV's operation/byte counts.
    """
    dataset = load_dataset(dataset_name, imbalance_factor, scale=scale, seed=seed)
    trainer = Trainer(
        default_model_config(dataset),
        default_loss_config(dataset),
        default_training_config(dataset, fast=fast),
        seed=seed,
    )
    model, _, _ = trainer.fit(dataset)
    queries = model.embed(dataset.query.features)
    database = model.embed(dataset.database.features)
    return efficiency_sweep(
        queries,
        database,
        model.dsq.materialized_codebooks(),
        fractions=fractions,
        repeats=repeats,
    )


def format_fig7(measurements: list[EfficiencyMeasurement]) -> str:
    headers = [
        "db fraction",
        "n_db",
        "speedup (measured)",
        "speedup (theory)",
        "compression",
        "paper speedup",
        "paper compression",
    ]
    rows = []
    for m in measurements:
        paper = PAPER_FIG7.get(m.fraction, {})
        rows.append(
            [
                m.fraction,
                m.n_db,
                m.measured_speedup,
                m.theoretical_speedup,
                m.measured_compression,
                paper.get("speedup", "-"),
                paper.get("compression", "-"),
            ]
        )
    return format_table(
        headers, rows, title="Fig. 7 — efficiency vs database scale", float_digits=2
    )


def measurements_as_dicts(measurements: list[EfficiencyMeasurement]) -> list[dict]:
    """Serializable form for logging/EXPERIMENTS.md generation."""
    return [asdict(m) for m in measurements]
