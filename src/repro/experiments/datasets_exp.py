"""Table I and Fig. 4 — dataset statistics and label distributions."""

from __future__ import annotations

import numpy as np

from repro.data.longtail import zipf_class_sizes
from repro.data.registry import (
    PROFILES,
    SUPPORTED_IMBALANCE_FACTORS,
    available_datasets,
    load_dataset,
)
from repro.experiments.reporting import format_series, format_table


def run_table1(scale: str = "ci", seed: int = 0) -> list[dict]:
    """Materialise all eight dataset variants and report Table I's columns."""
    rows = []
    for name in available_datasets():
        for imbalance_factor in SUPPORTED_IMBALANCE_FACTORS:
            dataset = load_dataset(name, imbalance_factor, scale=scale, seed=seed)
            rows.append(dataset.summary())
    return rows


def format_table1(rows: list[dict]) -> str:
    headers = ["dataset", "IF", "C", "pi_1", "pi_C", "n_train", "n_query", "n_db", "IF measured"]
    body = [
        [
            r["name"],
            int(r["IF_target"]),
            r["C"],
            r["pi_1"],
            r["pi_C"],
            r["n_train"],
            r["n_query"],
            r["n_db"],
            r["IF_measured"],
        ]
        for r in rows
    ]
    return format_table(headers, body, title="Table I — dataset statistics")


def run_fig4(scale: str = "ci") -> dict[str, np.ndarray]:
    """Sorted class-size curves for every dataset/IF combination (Fig. 4).

    Returns log10 class sizes against log class index — straight lines
    confirm the Zipf construction of Definition 1.
    """
    curves: dict[str, np.ndarray] = {}
    for name in available_datasets():
        profile = PROFILES[name]
        head = profile.ci_head_size if scale == "ci" else profile.paper_head_size
        for imbalance_factor in SUPPORTED_IMBALANCE_FACTORS:
            sizes = zipf_class_sizes(profile.num_classes, head, imbalance_factor)
            curves[f"{name} IF={imbalance_factor}"] = np.log10(sizes.astype(float))
    return curves


def format_fig4(curves: dict[str, np.ndarray], samples: int = 8) -> str:
    """Subsampled table of the log-size curves."""
    blocks = []
    for key, curve in curves.items():
        indices = np.unique(
            np.linspace(0, len(curve) - 1, min(samples, len(curve))).astype(int)
        )
        blocks.append(
            format_series(
                "sorted class index",
                ["log10(class size)"],
                [int(i) + 1 for i in indices],
                [[float(curve[i]) for i in indices]],
                title=f"Fig. 4 — {key}",
            )
        )
    return "\n\n".join(blocks)
