"""Canonical experiment configurations and the paper's reference numbers.

Centralises the hyper-parameters every table/figure runner uses, so the
benchmarks, examples, and tests all exercise the same settings. Per §V-A4:
cosine annealing on the image datasets, linear-with-warmup on text, four
codebooks, four ensemble members.
"""

from __future__ import annotations

from repro.core.ensemble import EnsembleConfig
from repro.core.losses import LossConfig
from repro.core.model import LightLTConfig
from repro.core.trainer import TrainingConfig
from repro.data.datasets import RetrievalDataset


def default_model_config(dataset: RetrievalDataset) -> LightLTConfig:
    """LightLT architecture for a dataset (M=4 codebooks, 32-d residual)."""
    return LightLTConfig(
        input_dim=dataset.dim,
        num_classes=dataset.num_classes,
        embed_dim=dataset.dim,
        hidden_dims=(64,),
        num_codebooks=4,
        num_codewords=64,
    )


def default_loss_config(dataset: RetrievalDataset | None = None) -> LossConfig:
    """The combined objective with per-modality tuning.

    Image profiles (100 classes, scarce tail data) run the *conservative*
    regime: a gentle α and a reconstruction anchor (β=1) that keeps the
    codebooks tied to the embedding distribution. Text profiles (few
    classes, abundant per-class data) run the *discriminative* regime the
    paper's text results rely on: stronger α and no reconstruction term —
    the codewords are free to become class-discriminative.
    """
    modality = "image" if dataset is None else dataset.metadata.get("modality", "image")
    if modality == "text":
        return LossConfig(alpha=0.1, gamma=0.999, beta=0.0)
    return LossConfig(alpha=0.01, gamma=0.999, beta=1.0)


def default_training_config(dataset: RetrievalDataset, fast: bool = False) -> TrainingConfig:
    """Optimiser settings; schedule and regime follow the modality (§V-A4).

    Text uses the linear-warmup schedule at a higher learning rate with a
    fully-trained backbone; image uses cosine annealing with the backbone
    fine-tuned two orders of magnitude slower (the paper trains its
    pre-trained backbones at 5e-5) plus k-means codebook warm-starting.
    """
    modality = dataset.metadata.get("modality", "image")
    if modality == "text":
        return TrainingConfig(
            epochs=8 if fast else 15,
            batch_size=64,
            learning_rate=5e-3,
            schedule="linear_warmup",
            backbone_lr_scale=1.0,
            warm_start=False,
        )
    return TrainingConfig(
        epochs=10 if fast else 20,
        batch_size=64,
        learning_rate=2e-3,
        schedule="cosine",
        backbone_lr_scale=0.3,
        warm_start=True,
    )


def default_ensemble_config(fast: bool = False) -> EnsembleConfig:
    """Four ensemble members, as used on all datasets in the paper."""
    return EnsembleConfig(num_members=2 if fast else 4)


# ---------------------------------------------------------------------------
# Reference values from the paper, used by EXPERIMENTS.md and shape checks.
# ---------------------------------------------------------------------------

#: Table II (image) and Table III (text) MAP values from the paper.
PAPER_MAP: dict[str, dict[str, dict[int, float]]] = {
    "cifar100": {
        "LSH": {50: 0.0333, 100: 0.0307},
        "PCAH": {50: 0.0532, 100: 0.0519},
        "ITQ": {50: 0.0709, 100: 0.0677},
        "KNNH": {50: 0.0703, 100: 0.0689},
        "SDH": {50: 0.1115, 100: 0.1006},
        "COSDISH": {50: 0.0695, 100: 0.0583},
        "FastHash": {50: 0.0787, 100: 0.0714},
        "FSSH": {50: 0.1101, 100: 0.0957},
        "SCDH": {50: 0.1282, 100: 0.1138},
        "DPSH": {50: 0.1069, 100: 0.0978},
        "HashNet": {50: 0.1726, 100: 0.1444},
        "DSDH": {50: 0.1119, 100: 0.0940},
        "CSQ": {50: 0.2221, 100: 0.1716},
        "LTHNet": {50: 0.2687, 100: 0.1819},
        "LightLT w/o ensemble": {50: 0.3464, 100: 0.2499},
        "LightLT": {50: 0.3801, 100: 0.2740},
    },
    "imagenet100": {
        "LSH": {50: 0.0606, 100: 0.0556},
        "PCAH": {50: 0.1306, 100: 0.1280},
        "ITQ": {50: 0.1803, 100: 0.1719},
        "KNNH": {50: 0.1830, 100: 0.1766},
        "SDH": {50: 0.3553, 100: 0.3126},
        "COSDISH": {50: 0.2072, 100: 0.1763},
        "FastHash": {50: 0.2462, 100: 0.1932},
        "FSSH": {50: 0.3681, 100: 0.3312},
        "SCDH": {50: 0.3937, 100: 0.3601},
        "DPSH": {50: 0.2186, 100: 0.1788},
        "HashNet": {50: 0.3465, 100: 0.3101},
        "DSDH": {50: 0.2568, 100: 0.1841},
        "CSQ": {50: 0.6629, 100: 0.5989},
        "LTHNet": {50: 0.7612, 100: 0.7146},
        "LightLT w/o ensemble": {50: 0.7532, 100: 0.7148},
        "LightLT": {50: 0.7804, 100: 0.7398},
    },
    "nc": {
        "LSH": {50: 0.1093, 100: 0.1092},
        "PQ": {50: 0.2546, 100: 0.2543},
        "DPQ": {50: 0.5809, 100: 0.5408},
        "KDE": {50: 0.6042, 100: 0.5454},
        "LTHNet": {50: 0.5990, 100: 0.5372},
        "LightLT w/o ensemble": {50: 0.6200, 100: 0.5750},
        "LightLT": {50: 0.6560, 100: 0.6131},
    },
    "qba": {
        "LSH": {50: 0.0417, 100: 0.0416},
        "PQ": {50: 0.0955, 100: 0.0939},
        "DPQ": {50: 0.3707, 100: 0.3346},
        "KDE": {50: 0.3815, 100: 0.3410},
        "LTHNet": {50: 0.3703, 100: 0.3403},
        "LightLT w/o ensemble": {50: 0.3899, 100: 0.3594},
        "LightLT": {50: 0.4097, 100: 0.3824},
    },
}

#: Table IV — DSQ vs vanilla residual MAP (no ensemble).
PAPER_TABLE4 = {
    ("cifar100", 50): {"Residual": 0.3385, "DSQ": 0.3464},
    ("cifar100", 100): {"Residual": 0.2478, "DSQ": 0.2499},
    ("nc", 50): {"Residual": 0.5970, "DSQ": 0.6200},
    ("nc", 100): {"Residual": 0.5606, "DSQ": 0.5750},
}

#: Fig. 7 headline numbers on QBA IF=100.
PAPER_FIG7 = {
    0.1: {"speedup": 28.36, "compression": 54.04},
    1.0: {"speedup": 62.36, "compression": 240.20},
}
