"""Fig. 8 — visualising quantized representations under each loss variant.

Five classes of the CIFAR-100 profile are embedded with t-SNE after
training LightLT with (a) CE only, (b) CE + center, (c) CE + center +
ranking. The paper argues visually that each added term tightens and
separates the clusters; we report the 2-D coordinates, an ASCII scatter,
and quantify the claim with silhouette scores so it is assertable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.cluster.scores import silhouette_score
from repro.cluster.tsne import tsne
from repro.core.trainer import Trainer
from repro.data.registry import load_dataset
from repro.experiments.config import (
    default_loss_config,
    default_model_config,
    default_training_config,
)
from repro.experiments.reporting import ascii_scatter, format_table

LOSS_VARIANTS = ("CE", "CE+center", "CE+center+ranking")


@dataclass
class VisualizationResult:
    """Embedding and cluster quality for one loss variant."""

    variant: str
    coordinates: np.ndarray  # (n, 2) t-SNE embedding
    labels: np.ndarray
    silhouette: float


def run_fig8(
    dataset_name: str = "cifar100",
    imbalance_factor: int = 50,
    classes: tuple[int, ...] = (0, 24, 49, 74, 99),
    points_per_class: int = 30,
    scale: str = "ci",
    seed: int = 0,
    fast: bool = True,
    tsne_iterations: int = 250,
) -> list[VisualizationResult]:
    """Train the three loss variants and embed five classes with t-SNE."""
    dataset = load_dataset(dataset_name, imbalance_factor, scale=scale, seed=seed)
    base_loss = default_loss_config(dataset)
    variants = {
        "CE": replace(base_loss, use_center=False, use_ranking=False),
        "CE+center": replace(base_loss, use_ranking=False),
        "CE+center+ranking": base_loss,
    }
    # Use database items (plentiful and balanced) for the visual.
    rng = np.random.default_rng(seed)
    keep_rows = []
    for class_id in classes:
        rows = np.flatnonzero(dataset.database.labels == class_id)
        take = min(points_per_class, len(rows))
        keep_rows.append(rng.choice(rows, size=take, replace=False))
    keep = np.concatenate(keep_rows)
    features = dataset.database.features[keep]
    labels = dataset.database.labels[keep]

    results = []
    for variant, loss_config in variants.items():
        trainer = Trainer(
            default_model_config(dataset),
            loss_config,
            default_training_config(dataset, fast=fast),
            seed=seed,
        )
        model, _, _ = trainer.fit(dataset)
        quantized = model.quantized_embeddings(features)
        coordinates = tsne(
            quantized, perplexity=15.0, iterations=tsne_iterations, rng=seed
        )
        results.append(
            VisualizationResult(
                variant=variant,
                coordinates=coordinates,
                labels=labels,
                silhouette=silhouette_score(quantized, labels),
            )
        )
    return results


def format_fig8(results: list[VisualizationResult], with_scatter: bool = True) -> str:
    headers = ["variant", "silhouette (quantized reps)"]
    rows = [[r.variant, r.silhouette] for r in results]
    blocks = [format_table(headers, rows, title="Fig. 8 — cluster quality by loss")]
    if with_scatter:
        for result in results:
            blocks.append(f"\n[{result.variant}]")
            blocks.append(ascii_scatter(result.coordinates, result.labels))
    return "\n".join(blocks)
