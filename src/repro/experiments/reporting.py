"""Plain-text result rendering for the experiment runners.

No plotting stack is available offline, so tables are rendered as aligned
ASCII and figures as data series (plus a coarse ASCII scatter for Fig. 8).
"""

from __future__ import annotations

import numpy as np


def format_table(
    headers: list[str],
    rows: list[list[object]],
    title: str | None = None,
    float_digits: int = 4,
) -> str:
    """Render rows as an aligned monospace table."""
    def stringify(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        return str(value)

    cells = [[stringify(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    y_labels: list[str],
    x_values: list[object],
    series: list[list[float]],
    title: str | None = None,
) -> str:
    """Render one or more y-series against shared x values."""
    headers = [x_label, *y_labels]
    rows = [
        [x, *(s[i] for s in series)] for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)


def ascii_scatter(
    points: np.ndarray,
    labels: np.ndarray,
    width: int = 60,
    height: int = 24,
) -> str:
    """Coarse character-grid scatter plot of 2-D points coloured by label.

    Each label is assigned one character; collisions show the most frequent
    label in the cell. Enough to eyeball the Fig. 8 cluster structure in a
    terminal.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("ascii_scatter needs (n, 2) points")
    symbols = "ox+*#@%&$"
    unique = list(np.unique(labels))
    if len(unique) > len(symbols):
        raise ValueError(f"at most {len(symbols)} distinct labels supported")
    lows = points.min(axis=0)
    highs = points.max(axis=0)
    span = np.where(highs - lows < 1e-12, 1.0, highs - lows)
    grid: list[list[dict]] = [[{} for _ in range(width)] for _ in range(height)]
    for (x, y), label in zip(points, labels):
        col = min(int((x - lows[0]) / span[0] * (width - 1)), width - 1)
        row = min(int((y - lows[1]) / span[1] * (height - 1)), height - 1)
        cell = grid[height - 1 - row][col]
        cell[label] = cell.get(label, 0) + 1
    lines = []
    for row_cells in grid:
        line = []
        for cell in row_cells:
            if not cell:
                line.append(" ")
            else:
                majority = max(cell, key=cell.get)
                line.append(symbols[unique.index(majority)])
        lines.append("".join(line))
    legend = "  ".join(
        f"{symbols[i]}=class {label}" for i, label in enumerate(unique)
    )
    return "\n".join(lines) + "\n" + legend
