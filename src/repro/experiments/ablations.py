"""Ablation experiments: Fig. 5 (loss), Table IV (DSQ), Fig. 6 (ensemble)."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.ensemble import EnsembleConfig, train_ensemble
from repro.core.losses import LossConfig
from repro.core.trainer import Trainer, evaluate_map
from repro.data.registry import load_dataset
from repro.experiments.config import (
    PAPER_TABLE4,
    default_loss_config,
    default_model_config,
    default_training_config,
)
from repro.experiments.reporting import format_table


@dataclass
class AblationResult:
    """One (dataset, IF, variant) MAP measurement."""

    dataset: str
    imbalance_factor: int
    variant: str
    map_score: float
    paper_map: float | None = None


def _train_and_score(dataset, model_config, loss_config, training_config, seed: int) -> float:
    trainer = Trainer(model_config, loss_config, training_config, seed=seed)
    model, _, _ = trainer.fit(dataset)
    return evaluate_map(model, dataset)


# ---------------------------------------------------------------------------
# Fig. 5 — loss function ablation
# ---------------------------------------------------------------------------

def run_fig5(
    dataset_names: tuple[str, ...] = ("cifar100", "nc"),
    imbalance_factors: tuple[int, ...] = (50, 100),
    scale: str = "ci",
    seed: int = 0,
    fast: bool = False,
) -> list[AblationResult]:
    """LightLT with only the cross-entropy loss vs the full objective."""
    results = []
    for name in dataset_names:
        for factor in imbalance_factors:
            dataset = load_dataset(name, factor, scale=scale, seed=seed)
            model_config = default_model_config(dataset)
            training_config = default_training_config(dataset, fast=fast)
            base = default_loss_config(dataset)
            variants = {
                "CE only": replace(base, use_center=False, use_ranking=False),
                "full loss": base,
            }
            for label, loss_config in variants.items():
                score = _train_and_score(
                    dataset, model_config, loss_config, training_config, seed
                )
                results.append(AblationResult(name, factor, label, score))
    return results


def format_fig5(results: list[AblationResult]) -> str:
    headers = ["dataset", "IF", "variant", "MAP"]
    rows = [
        [r.dataset, r.imbalance_factor, r.variant, r.map_score] for r in results
    ]
    return format_table(headers, rows, title="Fig. 5 — loss-function ablation")


# ---------------------------------------------------------------------------
# Table IV — DSQ vs vanilla residual
# ---------------------------------------------------------------------------

def run_table4(
    dataset_names: tuple[str, ...] = ("cifar100", "nc"),
    imbalance_factors: tuple[int, ...] = (50, 100),
    scale: str = "ci",
    seed: int = 0,
    fast: bool = False,
) -> list[AblationResult]:
    """DSQ (both skips) vs the vanilla residual mechanism (no codebook skip).

    As in the paper, the ensemble module is removed to isolate the DSQ
    effect.
    """
    results = []
    for name in dataset_names:
        for factor in imbalance_factors:
            dataset = load_dataset(name, factor, scale=scale, seed=seed)
            training_config = default_training_config(dataset, fast=fast)
            loss_config = default_loss_config(dataset)
            base_config = default_model_config(dataset)
            variants = {
                "Residual": replace(base_config, use_codebook_skip=False),
                "DSQ": base_config,
            }
            paper = PAPER_TABLE4.get((name, factor), {})
            for label, model_config in variants.items():
                score = _train_and_score(
                    dataset, model_config, loss_config, training_config, seed
                )
                results.append(
                    AblationResult(name, factor, label, score, paper.get(label))
                )
    return results


def format_table4(results: list[AblationResult]) -> str:
    headers = ["dataset", "IF", "variant", "MAP", "paper"]
    rows = [
        [
            r.dataset,
            r.imbalance_factor,
            r.variant,
            r.map_score,
            r.paper_map if r.paper_map is not None else "-",
        ]
        for r in results
    ]
    return format_table(headers, rows, title="Table IV — DSQ vs vanilla residual")


# ---------------------------------------------------------------------------
# Fig. 6 — number of ensemble models
# ---------------------------------------------------------------------------

def run_fig6(
    dataset_names: tuple[str, ...] = ("cifar100", "nc"),
    imbalance_factors: tuple[int, ...] = (50, 100),
    member_counts: tuple[int, ...] = (1, 2, 4),
    scale: str = "ci",
    seed: int = 0,
    fast: bool = False,
) -> list[AblationResult]:
    """MAP as a function of the number of ensemble members.

    ``1`` member means LightLT without the ensemble step.
    """
    results = []
    for name in dataset_names:
        for factor in imbalance_factors:
            dataset = load_dataset(name, factor, scale=scale, seed=seed)
            model_config = default_model_config(dataset)
            loss_config = default_loss_config(dataset)
            training_config = default_training_config(dataset, fast=fast)
            for count in member_counts:
                if count <= 1:
                    score = _train_and_score(
                        dataset, model_config, loss_config, training_config, seed
                    )
                    label = "w/o ensemble"
                else:
                    outcome = train_ensemble(
                        dataset,
                        model_config,
                        loss_config,
                        training_config,
                        EnsembleConfig(num_members=count),
                        seed=seed,
                    )
                    score = evaluate_map(outcome.model, dataset)
                    label = f"{count} models"
                results.append(AblationResult(name, factor, label, score))
    return results


def format_fig6(results: list[AblationResult]) -> str:
    headers = ["dataset", "IF", "ensemble", "MAP"]
    rows = [
        [r.dataset, r.imbalance_factor, r.variant, r.map_score] for r in results
    ]
    return format_table(headers, rows, title="Fig. 6 — ensemble size sweep")
