"""Module system: parameter containers with named state and train/eval modes.

The API intentionally mirrors the small subset of ``torch.nn.Module`` the
paper's training procedure needs: recursive parameter discovery, state dicts
for the weight-averaging ensemble (§III-E), per-subtree freezing for the DSQ
fine-tuning step, and a train/eval switch for dropout.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a learnable leaf of a module tree."""

    def __init__(self, data: object, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered automatically by the traversal methods
    below. No metaclass magic — attribute scanning keeps the implementation
    explicit and debuggable.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs in attribute order."""
        for attr_name, value in vars(self).items():
            qualified = f"{prefix}{attr_name}"
            if isinstance(value, Parameter):
                yield qualified, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{qualified}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{qualified}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{qualified}.{i}.")

    def parameters(self) -> list[Parameter]:
        """All learnable parameters in the subtree."""
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant module."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter's value, keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load values produced by :meth:`state_dict`; shapes must match."""
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        unexpected = sorted(set(state) - set(own))
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={missing}, unexpected={unexpected}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()

    def zero_grad(self, set_to_none: bool = False) -> None:
        """Clear gradients on every parameter in the subtree.

        Existing gradient buffers are zeroed in place and reused by the
        next backward pass; pass ``set_to_none=True`` to drop them instead.
        """
        for param in self.parameters():
            param.zero_grad(set_to_none)

    def freeze(self) -> None:
        """Exclude this subtree's parameters from future backward passes."""
        for param in self.parameters():
            param.requires_grad = False

    def unfreeze(self) -> None:
        """Re-enable gradients for this subtree's parameters."""
        for param in self.parameters():
            param.requires_grad = True

    # ------------------------------------------------------------------
    # Modes
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        """Switch the subtree to training mode (enables dropout)."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Switch the subtree to evaluation mode (disables dropout)."""
        for module in self.modules():
            module.training = False
        return self

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


def average_state_dicts(states: list[dict[str, np.ndarray]]) -> dict[str, np.ndarray]:
    """Elementwise mean of parameter states (Eqn. 23, the model ensemble).

    All dictionaries must share the same keys and shapes; the result is the
    uniform average used by the paper's weight-ensemble step.
    """
    if not states:
        raise ValueError("need at least one state dict to average")
    keys = set(states[0])
    for state in states[1:]:
        if set(state) != keys:
            raise KeyError("state dicts have differing parameter sets")
    return {
        key: np.mean([state[key] for state in states], axis=0) for key in sorted(keys)
    }
