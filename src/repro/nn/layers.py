"""Standard neural network layers built on the Module system.

These are the building blocks of the LightLT backbone, classification head,
and the codebook skip-connection FFN of Eqn. (10), as well as of every deep
baseline in :mod:`repro.baselines`.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.autograd import accumulate_grad
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class Identity(Module):
    """Pass-through layer; useful as a configurable no-op."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Affine transform ``y = x W + b``.

    Weights use Kaiming-uniform initialisation; the bias starts at zero.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((in_features, out_features), rng), name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Hyperbolic tangent activation (used by hashing baselines)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Dropout(Module):
    """Inverted dropout, active only in training mode."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self._rng, self.training)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(dim), name="gamma")
        self.beta = Parameter(np.zeros(dim), name="beta")

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalised = centered / (variance + self.eps).sqrt()
        return normalised * self.gamma + self.beta


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class FeedForward(Module):
    """One-hidden-layer FFN with ReLU, as required by Eqn. (10).

    ``FFN(C) = ReLU(C W1 + b1) W2 + b2`` applied row-wise to a codebook.
    """

    def __init__(self, dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.fc1 = Linear(dim, hidden_dim, rng)
        self.fc2 = Linear(hidden_dim, dim, rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.fc1(x).relu())


class MLP(Module):
    """Multi-layer perceptron with ReLU activations and optional dropout.

    Serves as the trainable backbone ``f(.)`` on top of the (simulated)
    pre-trained features — the role ResNet-34 / BERT play in the paper.

    With ``fused=True`` (and no dropout layers) the whole Linear/ReLU stack
    runs as one autograd node: the forward mirrors the layer ops bit for
    bit and one backward closure walks the stack in reverse, accumulating
    weight/bias gradients directly. Dropout keeps the reference path — its
    RNG draw order is part of the training trajectory contract.
    """

    def __init__(
        self,
        dims: list[int],
        rng: np.random.Generator,
        dropout: float = 0.0,
        final_activation: bool = False,
    ):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        layers: list[Module] = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(d_in, d_out, rng))
            is_last = i == len(dims) - 2
            if not is_last or final_activation:
                layers.append(ReLU())
                if dropout > 0:
                    layers.append(Dropout(dropout, rng))
        self.net = Sequential(*layers)
        self.fused = False
        self._stack_fusable = all(
            isinstance(layer, (Linear, ReLU)) for layer in self.net
        )
        # Dict-wrapped so Module's attribute scan does not register the
        # cached parameter tuple a second time.
        self._fused_cache: dict[str, tuple] = {}

    def _fused_params(self) -> tuple:
        params = self._fused_cache.get("params")
        if params is None:
            params = self._fused_cache["params"] = tuple(self.parameters())
        return params

    def forward(self, x: Tensor) -> Tensor:
        if self.fused and self._stack_fusable:
            out, cache = self._stack_forward(x.data)

            def backward(grad: np.ndarray) -> None:
                g_input = self._stack_backward(grad, cache)
                if x.requires_grad:
                    accumulate_grad(x, g_input)

            return Tensor._from_op(out, (x, *self._fused_params()), backward)
        return self.net(x)

    def _stack_forward(self, data: np.ndarray) -> tuple[np.ndarray, list]:
        """Run the Linear/ReLU stack in plain NumPy, caching for backward.

        Same op order as the tape (``x @ W + b``, then ``pre * (pre > 0)``),
        so outputs are bit-identical to the reference path.
        """
        cache: list[tuple] = []
        out = data
        for layer in self.net:
            if isinstance(layer, Linear):
                cache.append((layer, out))
                out = out @ layer.weight.data
                if layer.bias is not None:
                    out = out + layer.bias.data
            else:  # ReLU
                mask = out > 0
                cache.append((None, mask))
                out = out * mask
        return out, cache

    def _stack_backward(self, grad: np.ndarray, cache: list) -> np.ndarray:
        """Reverse walk of :meth:`_stack_forward`; returns the input grad."""
        g = grad
        for layer, saved in reversed(cache):
            if layer is None:  # ReLU: saved is the mask
                g = g * saved
            else:  # Linear: saved is the layer input
                if layer.bias is not None and layer.bias.requires_grad:
                    accumulate_grad(layer.bias, g.sum(axis=0))
                if layer.weight.requires_grad:
                    accumulate_grad(layer.weight, saved.T @ g)
                g = g @ layer.weight.data.T
        return g


class ResidualMLP(Module):
    """Gated residual network ``f(x) = x + g · MLP(x)`` with ``g`` starting at 0.

    Models *fine-tuning a pre-trained encoder*: at initialisation the output
    equals the input features (the simulated pre-trained representation), so
    training starts from the pre-trained retrieval quality instead of from a
    random embedding — matching the paper's setup where ResNet-34/BERT
    backbones begin already trained.
    """

    def __init__(self, dim: int, hidden_dims: list[int], rng: np.random.Generator, dropout: float = 0.0):
        super().__init__()
        self.inner = MLP([dim, *hidden_dims, dim], rng, dropout=dropout)
        self.gate = Parameter(np.zeros(1), name="gate")
        self.fused = False

    def forward(self, x: Tensor) -> Tensor:
        if self.fused and self.inner._stack_fusable:
            inner_out, cache = self.inner._stack_forward(x.data)
            out = x.data + inner_out * self.gate.data

            def backward(grad: np.ndarray) -> None:
                if self.gate.requires_grad:
                    accumulate_grad(self.gate, np.array([(grad * inner_out).sum()]))
                g_input = self.inner._stack_backward(grad * self.gate.data, cache)
                if x.requires_grad:
                    accumulate_grad(x, grad + g_input)

            return Tensor._from_op(
                out, (x, self.gate, *self.inner._fused_params()), backward
            )
        return x + self.inner(x) * self.gate


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator):
        super().__init__()
        self.weight = Parameter(init.normal((num_embeddings, dim), rng), name="weight")

    def forward(self, ids: np.ndarray) -> Tensor:
        return self.weight[np.asarray(ids)]
