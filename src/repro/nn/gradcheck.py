"""Numerical gradient checking.

Compares reverse-mode gradients against central finite differences. This is
the correctness anchor for the whole autograd substrate: every op and loss
in the repository is validated through it in the test suite.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.tensor import Tensor


def numerical_gradient(
    fn: Callable[[Tensor], Tensor],
    x: np.ndarray,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of a scalar-valued function at ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(Tensor(x)).item()
        flat[i] = original - eps
        minus = fn(Tensor(x)).item()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradient(
    fn: Callable[[Tensor], Tensor],
    x: np.ndarray,
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> tuple[bool, float]:
    """Compare autograd vs numerical gradients of ``fn`` at ``x``.

    Returns ``(ok, max_abs_error)``. ``fn`` must map a tensor to a scalar
    tensor and be deterministic (no dropout / RNG inside).
    """
    x = np.asarray(x, dtype=np.float64)
    leaf = Tensor(x.copy(), requires_grad=True)
    out = fn(leaf)
    if out.size != 1:
        raise ValueError("check_gradient requires a scalar-valued function")
    out.backward()
    analytic = leaf.grad if leaf.grad is not None else np.zeros_like(x)
    numeric = numerical_gradient(fn, x, eps=eps)
    error = np.abs(analytic - numeric)
    tolerance = atol + rtol * np.abs(numeric)
    return bool((error <= tolerance).all()), float(error.max(initial=0.0))
