"""Reverse-mode automatic differentiation machinery.

This module holds the plumbing shared by every differentiable operation:
broadcast-aware gradient reduction, the topological walk used by
:meth:`repro.nn.tensor.Tensor.backward`, and a context manager that globally
disables gradient recording (the equivalent of ``torch.no_grad``).

The design follows the classic tape-free formulation: every tensor produced
by an operation stores the parent tensors it was derived from and a closure
that, given the gradient of the loss with respect to the output, accumulates
gradients into the parents. ``backward`` then visits the graph in reverse
topological order.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.nn.tensor import Tensor


class _GradMode:
    """Process-wide switch that controls whether operations record a graph."""

    enabled: bool = True


def is_grad_enabled() -> bool:
    """Return ``True`` when operations currently record the autograd graph."""
    return _GradMode.enabled


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables graph recording within its body.

    Tensors created inside the block have ``requires_grad=False`` regardless
    of their inputs, which both saves memory and marks the values as
    constants for later backward passes (used by the straight-through
    estimator and by evaluation loops).
    """
    previous = _GradMode.enabled
    _GradMode.enabled = False
    try:
        yield
    finally:
        _GradMode.enabled = previous


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape``.

    NumPy broadcasting stretches size-1 (or missing) axes during the forward
    pass; the chain rule therefore requires summing the incoming gradient
    over every stretched axis on the way back.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading axes that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were size 1 in the original shape.
    reduced_axes = tuple(
        axis for axis, size in enumerate(shape) if size == 1 and grad.shape[axis] != 1
    )
    if reduced_axes:
        grad = grad.sum(axis=reduced_axes, keepdims=True)
    return grad.reshape(shape)


def topological_order(root: "Tensor") -> list["Tensor"]:
    """Return the graph reachable from ``root`` in topological order.

    Only tensors that participate in gradient computation (``requires_grad``)
    are visited; constant branches are pruned early, which keeps backward
    passes cheap when most of the graph is frozen (e.g. ensemble fine-tuning
    where the backbone is fixed).
    """
    order: list["Tensor"] = []
    visited: set[int] = set()
    stack: list[tuple["Tensor", bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited or not node.requires_grad:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited and parent.requires_grad:
                stack.append((parent, False))
    return order


def accumulate_grad(tensor: "Tensor", grad: np.ndarray) -> None:
    """Add ``grad`` into ``tensor.grad``, allocating on first touch."""
    if tensor.grad is None:
        tensor.grad = grad.copy()
    else:
        tensor.grad += grad


def collect_parents(candidates: Iterable[object]) -> tuple["Tensor", ...]:
    """Filter an iterable down to the Tensor instances requiring grad."""
    from repro.nn.tensor import Tensor

    return tuple(
        item
        for item in candidates
        if isinstance(item, Tensor) and item.requires_grad
    )
