"""Single-node fused training kernels.

The reference implementations in :mod:`repro.nn.functional` and
:mod:`repro.core.losses` build every loss out of primitive tensor ops, so
one softmax-cross-entropy costs a dozen autograd nodes and the backward
pass walks (and allocates through) each of them. At the paper's training
scale — §V-D measures exactly this phase — that Python-level tape walk, not
the arithmetic, dominates each step.

Each op below computes its forward pass in plain NumPy and installs ONE
backward closure with the hand-derived gradient. The reference tape stays
untouched and acts as the oracle: every kernel is parity-checked in
``tests/nn/test_fused.py``, via numerical gradient checks where the op is
truly differentiable and via comparison against the unfused tape for the
straight-through paths (whose forward value is intentionally piecewise
constant, so finite differences say nothing about the STE gradient).

Numerical contract: forward *values* match the reference bit for bit
except where documented (the fused straight-through assignment is an exact
one-hot while the tape's ``soft + (hard - soft)`` carries ~1e-16 residue
into its decode matmul); gradients match up to summation-order rounding,
i.e. to ~1e-12 relative rather than bitwise.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import accumulate_grad
from repro.nn.functional import one_hot, stable_softmax_array
from repro.nn.tensor import Tensor


def fused_softmax(logits: Tensor, axis: int = -1, temperature: float = 1.0) -> Tensor:
    """Tempered softmax as a single autograd node.

    Same forward values as :func:`repro.nn.functional.softmax`; the
    backward applies the softmax Jacobian ``p * (g - <g, p>) / t`` in one
    shot instead of routing through exp/sum/div nodes.
    """
    soft = stable_softmax_array(logits.data, axis=axis, temperature=temperature)
    inv_t = 1.0 / temperature

    def backward(grad: np.ndarray) -> None:
        inner = (grad * soft).sum(axis=axis, keepdims=True)
        accumulate_grad(logits, soft * (grad - inner) * inv_t)

    return Tensor._from_op(soft, (logits,), backward)


def fused_softmax_ste(
    logits: Tensor, temperature: float = 1.0
) -> tuple[Tensor, np.ndarray, np.ndarray]:
    """Fused tempered-softmax + straight-through estimator (Eqns. 5-6).

    Operates over the last axis of ``logits`` (any leading shape — the
    batched DSQ kernel feeds ``(M, B, K)``). Returns ``(assignment, codes,
    soft)``: the assignment tensor's forward value is an *exact* one-hot of
    the argmax while its gradient is the tempered-softmax Jacobian, and
    ``codes`` / ``soft`` are the plain argmax ids and softmax probabilities
    for diagnostics.
    """
    scores = logits.data
    soft = stable_softmax_array(scores, axis=-1, temperature=temperature)
    codes = scores.argmax(axis=-1)
    hard = one_hot(codes, scores.shape[-1])
    inv_t = 1.0 / temperature

    def backward(grad: np.ndarray) -> None:
        inner = (grad * soft).sum(axis=-1, keepdims=True)
        accumulate_grad(logits, soft * (grad - inner) * inv_t)

    return Tensor._from_op(hard, (logits,), backward), codes, soft


def fused_cross_entropy(
    logits: Tensor, labels: np.ndarray, weights: np.ndarray | None = None
) -> Tensor:
    """Class-weighted softmax cross-entropy as one node (Eqn. 12).

    Forward value matches :func:`repro.nn.functional.cross_entropy`
    exactly; the backward is the closed form ``w_y (p - onehot(y)) / n``
    with no exp/log/sum chain.
    """
    labels = np.asarray(labels)
    n = len(labels)
    x = logits.data
    shifted = x - x.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    denom = exp.sum(axis=-1, keepdims=True)
    log_probs = shifted - np.log(denom)
    picked = log_probs[np.arange(n), labels]
    # Scalar reductions mirror the tape exactly: Tensor.mean computes
    # ``sum * (1/n)`` (not ``sum / n``), and the weighted form divides —
    # the two differ in the last ulp.
    if weights is None:
        sample_weights = None
        value = -(picked.sum() * (1.0 / float(n)))
    else:
        sample_weights = np.asarray(weights, dtype=np.float64)[labels]
        value = -(picked * sample_weights).sum() / float(n)

    def backward(grad: np.ndarray) -> None:
        g_logits = exp / denom
        g_logits[np.arange(n), labels] -= 1.0
        if sample_weights is not None:
            g_logits *= sample_weights[:, None]
        g_logits *= grad / float(n)
        accumulate_grad(logits, g_logits)

    return Tensor._from_op(np.asarray(value), (logits,), backward)


def fused_center_loss(
    embeddings: Tensor, labels: np.ndarray, prototypes: Tensor, p: int = 2
) -> Tensor:
    """Eqn. (13) as one node: mean ℓ_p distance to the own-class prototype.

    The backward scatters prototype gradients with one one-hot matmul
    instead of the tape's full-matrix indexing round trip.
    """
    if p not in (1, 2):
        raise ValueError(f"p must be 1 or 2, got {p}")
    labels = np.asarray(labels)
    n = len(labels)
    diff = embeddings.data - prototypes.data[labels]
    if p == 2:
        sq = (diff * diff).sum(axis=1)
        distances = np.sqrt(sq + 1e-12)
        value = distances.sum() * (1.0 / float(n))  # = Tensor.mean, bit for bit
    else:
        value = np.abs(diff).sum(axis=1).sum() * (1.0 / float(n))

    def backward(grad: np.ndarray) -> None:
        if p == 2:
            g_diff = diff * (grad / (float(n) * distances))[:, None]
        else:
            g_diff = np.sign(diff) * (grad / float(n))
        if embeddings.requires_grad:
            accumulate_grad(embeddings, g_diff)
        if prototypes.requires_grad:
            # One-hot matmul scatter: rows of -g_diff summed per class
            # (faster than np.add.at's buffered fancy-index path).
            onehot = np.zeros((n, len(prototypes.data)))
            onehot[np.arange(n), labels] = 1.0
            accumulate_grad(prototypes, onehot.T @ (-g_diff))

    return Tensor._from_op(np.asarray(value), (embeddings, prototypes), backward)


def fused_ranking_loss(
    embeddings: Tensor,
    labels: np.ndarray,
    prototypes: Tensor,
    tau: float = 1.0,
    p: int = 2,
) -> Tensor:
    """Eqn. (14) as one node: softmax CE over negative prototype distances.

    Mirrors :func:`repro.core.losses.ranking_loss` including the tape's
    subgradient conventions: the ℓ2 branch splits the ``max(·, 0)``
    gradient 50/50 at exact zeros and keeps the ``+1e-12`` smoothing under
    the square root.
    """
    if tau <= 0:
        raise ValueError("tau must be positive")
    if p not in (1, 2):
        raise ValueError(f"p must be 1 or 2, got {p}")
    labels = np.asarray(labels)
    n = len(labels)
    emb, protos = embeddings.data, prototypes.data
    if p == 2:
        sq = (
            (emb * emb).sum(axis=1, keepdims=True)
            + (protos * protos).sum(axis=1)
            - 2.0 * (emb @ protos.T)
        )
        clip_mask = (sq > 0) + 0.5 * (sq == 0)
        distances = np.sqrt(np.maximum(sq, 0.0) + 1e-12)
        diff = None
    else:
        diff = emb[:, None, :] - protos[None, :, :]
        distances = np.abs(diff).sum(axis=2)
        clip_mask = None
    logits = distances * (-1.0 / tau)
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    denom = exp.sum(axis=1, keepdims=True)
    picked = (shifted - np.log(denom))[np.arange(n), labels]
    value = -(picked.sum() * (1.0 / float(n)))  # = -Tensor.mean, bit for bit

    def backward(grad: np.ndarray) -> None:
        g_logits = exp / denom
        g_logits[np.arange(n), labels] -= 1.0
        g_logits *= grad / float(n)
        g_dist = g_logits * (-1.0 / tau)
        if p == 2:
            g_sq = g_dist * (0.5 / distances) * clip_mask
            if embeddings.requires_grad:
                accumulate_grad(
                    embeddings,
                    2.0 * emb * g_sq.sum(axis=1, keepdims=True) - 2.0 * (g_sq @ protos),
                )
            if prototypes.requires_grad:
                accumulate_grad(
                    prototypes,
                    2.0 * protos * g_sq.sum(axis=0)[:, None] - 2.0 * (g_sq.T @ emb),
                )
        else:
            g_diff = np.sign(diff) * g_dist[:, :, None]
            if embeddings.requires_grad:
                accumulate_grad(embeddings, g_diff.sum(axis=1))
            if prototypes.requires_grad:
                accumulate_grad(prototypes, -g_diff.sum(axis=0))

    return Tensor._from_op(np.asarray(value), (embeddings, prototypes), backward)


def fused_commitment_loss(
    embedding: Tensor, quantized: Tensor, commitment: float = 0.25
) -> Tensor:
    """The VQ-VAE-style reconstruction term of the criterion as one node.

    Value equals ``mean‖sg(e) - q‖² + commitment · mean‖e - sg(q)‖²``; both
    squared norms share the same array, so the forward is a single pass and
    the backward routes ``-2(e-q)/n`` to the quantized side and
    ``+2c(e-q)/n`` to the embedding side, exactly as the detach-split tape
    does.
    """
    diff = embedding.data - quantized.data
    n = float(len(diff))
    term = (diff * diff).sum(axis=1).sum() * (1.0 / n)  # = Tensor.mean, bit for bit
    value = term + term * commitment

    def backward(grad: np.ndarray) -> None:
        base = diff * (2.0 * grad / n)
        if embedding.requires_grad:
            accumulate_grad(embedding, base * commitment)
        if quantized.requires_grad:
            accumulate_grad(quantized, -base)

    return Tensor._from_op(np.asarray(value), (embedding, quantized), backward)


def fused_scaled_sum(terms: list[Tensor], scales: list[float]) -> Tensor:
    """Left-to-right ``Σ scale_i · term_i`` over scalar tensors as one node.

    Replaces the criterion's chain of scalar mul/add tape nodes when
    combining loss terms. The forward accumulates in the reference order
    (``t_0·s_0``, then ``+ t_i·s_i``), so with ``s_0 = 1.0`` the total is
    bit-identical to ``t_0 + t_1·s_1 + ...`` as the tape computes it; the
    backward hands each term ``grad · s_i``.
    """
    if len(terms) != len(scales) or not terms:
        raise ValueError("need one scale per term and at least one term")
    value = terms[0].data * scales[0]
    for term, scale in zip(terms[1:], scales[1:]):
        value = value + term.data * scale

    def backward(grad: np.ndarray) -> None:
        for term, scale in zip(terms, scales):
            if term.requires_grad:
                accumulate_grad(term, grad * scale)

    return Tensor._from_op(np.asarray(value), tuple(terms), backward)
