"""``repro.nn`` — a from-scratch NumPy autograd and neural-network substrate.

Stands in for PyTorch in this reproduction: reverse-mode autodiff tensors,
modules/layers, optimisers (including AdamW as used by the paper), learning
rate schedules, straight-through-estimator support, and numerical gradient
checking.
"""

from repro.nn.autograd import is_grad_enabled, no_grad
from repro.nn.functional import (
    cosine_similarity,
    cross_entropy,
    dropout,
    l2_normalize,
    log_softmax,
    mse,
    one_hot,
    pairwise_distances,
    pairwise_sq_distances,
    softmax,
    stable_softmax_array,
    straight_through,
)
from repro.nn.fused import (
    fused_center_loss,
    fused_commitment_loss,
    fused_cross_entropy,
    fused_ranking_loss,
    fused_scaled_sum,
    fused_softmax,
    fused_softmax_ste,
)
from repro.nn.gradcheck import check_gradient, numerical_gradient
from repro.nn.layers import (
    MLP,
    Dropout,
    Embedding,
    FeedForward,
    Identity,
    LayerNorm,
    Linear,
    ReLU,
    ResidualMLP,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.module import Module, Parameter, average_state_dicts
from repro.nn.optim import SGD, Adam, AdamW, Optimizer
from repro.nn.schedulers import (
    ConstantLR,
    CosineAnnealingLR,
    LinearWarmupLR,
    LRScheduler,
    StepLR,
    WarmupCosineLR,
)
from repro.nn.serialization import load_state, save_state
from repro.nn.tensor import Tensor, concat, maximum, stack, where

__all__ = [
    "Adam",
    "AdamW",
    "ConstantLR",
    "CosineAnnealingLR",
    "Dropout",
    "Embedding",
    "FeedForward",
    "Identity",
    "LRScheduler",
    "LayerNorm",
    "Linear",
    "LinearWarmupLR",
    "MLP",
    "Module",
    "Optimizer",
    "Parameter",
    "ReLU",
    "ResidualMLP",
    "SGD",
    "Sequential",
    "Sigmoid",
    "StepLR",
    "Tanh",
    "Tensor",
    "WarmupCosineLR",
    "average_state_dicts",
    "check_gradient",
    "concat",
    "cosine_similarity",
    "cross_entropy",
    "dropout",
    "fused_center_loss",
    "fused_commitment_loss",
    "fused_cross_entropy",
    "fused_ranking_loss",
    "fused_scaled_sum",
    "fused_softmax",
    "fused_softmax_ste",
    "is_grad_enabled",
    "l2_normalize",
    "load_state",
    "log_softmax",
    "maximum",
    "mse",
    "no_grad",
    "numerical_gradient",
    "one_hot",
    "pairwise_distances",
    "pairwise_sq_distances",
    "save_state",
    "softmax",
    "stable_softmax_array",
    "stack",
    "straight_through",
    "where",
]
