"""Learning-rate schedules.

§V-A4 of the paper uses cosine annealing on the image datasets and a linear
schedule with warmup on the text datasets; both are provided, plus the
constant and step schedules used in ablations.
"""

from __future__ import annotations

import math

from repro.nn.optim import Optimizer


class LRScheduler:
    """Base class: computes a multiplier of the optimiser's base LR."""

    def __init__(self, optimizer: Optimizer, total_steps: int):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.total_steps = total_steps
        self.current_step = 0

    def multiplier(self, step: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step and apply the new learning rate; returns it."""
        self.current_step = min(self.current_step + 1, self.total_steps)
        new_lr = self.base_lr * self.multiplier(self.current_step)
        self.optimizer.lr = new_lr
        return new_lr

    def state_dict(self) -> dict:
        """Mutable schedule position, sufficient to resume mid-run.

        ``base_lr`` is included (not just the step counter) because the
        training guard lowers it when backing off after a loss spike, and
        that adjustment must survive a checkpoint/restore cycle.
        """
        return {
            "current_step": self.current_step,
            "base_lr": self.base_lr,
            "total_steps": self.total_steps,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state produced by :meth:`state_dict`."""
        if int(state["total_steps"]) != self.total_steps:
            raise ValueError(
                f"scheduler horizon mismatch: checkpoint has "
                f"{int(state['total_steps'])} total steps, this run has "
                f"{self.total_steps}"
            )
        self.current_step = int(state["current_step"])
        self.base_lr = float(state["base_lr"])
        if self.current_step > 0:
            self.optimizer.lr = self.base_lr * self.multiplier(self.current_step)


class ConstantLR(LRScheduler):
    """No-op schedule; keeps the base learning rate."""

    def multiplier(self, step: int) -> float:
        return 1.0


class StepLR(LRScheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, total_steps: int, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer, total_steps)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def multiplier(self, step: int) -> float:
        return self.gamma ** (step // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``min_lr`` over the full horizon."""

    def __init__(self, optimizer: Optimizer, total_steps: int, min_lr_ratio: float = 0.0):
        super().__init__(optimizer, total_steps)
        self.min_lr_ratio = min_lr_ratio

    def multiplier(self, step: int) -> float:
        progress = step / self.total_steps
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr_ratio + (1.0 - self.min_lr_ratio) * cosine


class LinearWarmupLR(LRScheduler):
    """Linear ramp from 0 to the base LR, then linear decay to 0.

    Matches the "linear schedule with warm up" used on NC and QBA.
    """

    def __init__(self, optimizer: Optimizer, total_steps: int, warmup_steps: int):
        super().__init__(optimizer, total_steps)
        if not 0 <= warmup_steps <= total_steps:
            raise ValueError("warmup_steps must lie within [0, total_steps]")
        self.warmup_steps = warmup_steps

    def multiplier(self, step: int) -> float:
        if self.warmup_steps and step < self.warmup_steps:
            return step / self.warmup_steps
        remaining = self.total_steps - step
        decay_span = max(self.total_steps - self.warmup_steps, 1)
        return max(remaining / decay_span, 0.0)


class WarmupCosineLR(LRScheduler):
    """Linear warmup followed by cosine decay (used for image profiles)."""

    def __init__(
        self,
        optimizer: Optimizer,
        total_steps: int,
        warmup_steps: int,
        min_lr_ratio: float = 0.0,
    ):
        super().__init__(optimizer, total_steps)
        if not 0 <= warmup_steps <= total_steps:
            raise ValueError("warmup_steps must lie within [0, total_steps]")
        self.warmup_steps = warmup_steps
        self.min_lr_ratio = min_lr_ratio

    def multiplier(self, step: int) -> float:
        if self.warmup_steps and step < self.warmup_steps:
            return step / self.warmup_steps
        decay_span = max(self.total_steps - self.warmup_steps, 1)
        progress = (step - self.warmup_steps) / decay_span
        cosine = 0.5 * (1.0 + math.cos(math.pi * min(progress, 1.0)))
        return self.min_lr_ratio + (1.0 - self.min_lr_ratio) * cosine
