"""Weight initialisation schemes.

All initialisers take an explicit :class:`numpy.random.Generator` so every
experiment in the repository is reproducible from a single seed.
"""

from __future__ import annotations

import math

import numpy as np


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for (fan_in, fan_out) layers."""
    fan_in, fan_out = _fans(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation suited to ReLU networks."""
    fan_in, _ = _fans(shape)
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Zero-mean Gaussian initialisation (used for codebooks)."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases, gates)."""
    return np.zeros(shape, dtype=np.float64)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """Infer fan-in/fan-out from a weight shape."""
    if len(shape) < 1:
        raise ValueError("cannot infer fans from a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive
