"""First-order optimisers: SGD (with momentum), Adam, and AdamW.

The paper trains LightLT with AdamW (§V-A4); the baselines reuse the same
implementations. Each optimiser stores its state per parameter so training
can be paused, inspected, and resumed deterministically.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class holding parameters, per-parameter LR scales, and a base LR.

    ``params`` may be a flat list of :class:`Parameter`, or a list of group
    dicts ``{"params": [...], "lr_scale": s}``. Group scales multiply the
    base learning rate — the mechanism used to fine-tune the backbone at a
    much smaller step size than the codebooks (the paper trains its
    pre-trained backbone at 5e-5 while the rest of the model adapts faster).
    """

    def __init__(self, params, lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params: list[Parameter] = []
        self.lr_scales: list[float] = []
        for entry in params:
            if isinstance(entry, dict):
                scale = float(entry.get("lr_scale", 1.0))
                for param in entry["params"]:
                    self.params.append(param)
                    self.lr_scales.append(scale)
            else:
                self.params.append(entry)
                self.lr_scales.append(1.0)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = lr

    def zero_grad(self, set_to_none: bool = False) -> None:
        """Clear gradients on all managed parameters.

        Gradient buffers are zeroed in place (and reused by the next
        backward pass) unless ``set_to_none=True`` drops them entirely.
        """
        for param in self.params:
            param.zero_grad(set_to_none)

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Mutable optimisation state (not configuration), as copies.

        Subclasses extend this with their per-parameter buffers; together
        with the parameters themselves this is everything needed to resume
        an interrupted run bit-exactly.
        """
        return {"lr": self.lr}

    def load_state_dict(self, state: dict) -> None:
        """Restore state produced by :meth:`state_dict`."""
        self.lr = float(state["lr"])

    def _load_buffers(
        self, stored: list[np.ndarray], own: list[np.ndarray], name: str
    ) -> list[np.ndarray]:
        if len(stored) != len(own):
            raise ValueError(
                f"optimizer state mismatch: {len(stored)} stored {name} buffers "
                f"for {len(own)} parameters"
            )
        restored = []
        for i, (new, current) in enumerate(zip(stored, own)):
            new = np.asarray(new, dtype=np.float64)
            if new.shape != current.shape:
                raise ValueError(
                    f"optimizer {name}[{i}] shape mismatch: "
                    f"stored {new.shape}, expected {current.shape}"
                )
            restored.append(new.copy())
        return restored


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity, scale in zip(self.params, self._velocity, self.lr_scales):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * scale * grad

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._velocity = self._load_buffers(state["velocity"], self._velocity, "velocity")


class Adam(Optimizer):
    """Adam with bias-corrected first/second moment estimates."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._step_count
        bias2 = 1.0 - beta2**self._step_count
        for param, m, v, scale in zip(self.params, self._m, self._v, self.lr_scales):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                # Classic (L2) coupling; AdamW decouples it instead.
                grad = grad + self.weight_decay * param.data
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * scale * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["step_count"] = self._step_count
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._step_count = int(state["step_count"])
        self._m = self._load_buffers(state["m"], self._m, "m")
        self._v = self._load_buffers(state["v"], self._v, "v")


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter).

    This is the optimiser the paper uses for all LightLT training runs.

    With ``fused=True`` the optimiser views every parameter (and its
    gradient and both moment buffers) through one contiguous float64
    arena: ``step`` then runs a handful of whole-arena in-place ufuncs
    instead of a Python loop over per-parameter ndarrays. The arena update
    mirrors the reference loop's exact operation order and grouping, so
    the two paths produce bit-identical parameter trajectories whenever
    every managed parameter receives a gradient each step (the training
    loop's invariant). The one documented semantic difference: a
    parameter whose gradient is ``None`` at ``step`` time is *skipped* by
    the reference loop but treated as having a zero gradient by the fused
    path (its moments decay and weight decay still applies). State dicts
    are interchangeable between the two paths.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 5e-5,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 1e-2,
        fused: bool = False,
    ):
        super().__init__(params, lr=lr, betas=betas, eps=eps, weight_decay=0.0)
        self.decoupled_weight_decay = weight_decay
        self.fused = bool(fused)
        if self.fused:
            self._build_arena()

    # ------------------------------------------------------------------
    # Flat-buffer (fused) machinery
    # ------------------------------------------------------------------
    def _build_arena(self) -> None:
        """Repack data/grad/moment storage into contiguous arenas."""
        sizes = [p.data.size for p in self.params]
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        total = int(offsets[-1])
        self._flat_data = np.empty(total, dtype=np.float64)
        self._flat_grad = np.zeros(total, dtype=np.float64)
        self._flat_m = np.zeros(total, dtype=np.float64)
        self._flat_v = np.zeros(total, dtype=np.float64)
        self._flat_scale = np.empty(total, dtype=np.float64)
        self._scratch_num = np.empty(total, dtype=np.float64)
        self._scratch_den = np.empty(total, dtype=np.float64)
        self._data_views: list[np.ndarray] = []
        self._grad_views: list[np.ndarray] = []
        m_views, v_views = [], []
        for param, start, stop, scale, m, v in zip(
            self.params, offsets[:-1], offsets[1:], self.lr_scales, self._m, self._v
        ):
            shape = param.data.shape
            data_view = self._flat_data[start:stop].reshape(shape)
            data_view[...] = param.data
            param.data = data_view
            grad_view = self._flat_grad[start:stop].reshape(shape)
            if param.grad is not None:
                grad_view[...] = param.grad
            param.grad = grad_view
            m_view = self._flat_m[start:stop].reshape(shape)
            m_view[...] = m
            v_view = self._flat_v[start:stop].reshape(shape)
            v_view[...] = v
            self._flat_scale[start:stop] = scale
            self._data_views.append(data_view)
            self._grad_views.append(grad_view)
            m_views.append(m_view)
            v_views.append(v_view)
        # Per-parameter moment lists stay the public interface (state_dict,
        # inspection); they are now views into the flat arenas.
        self._m = m_views
        self._v = v_views

    def _sync_arena(self) -> None:
        """Re-adopt parameters whose arrays were replaced out-of-band.

        ``load_state_dict`` / checkpoint restore rebind ``param.data`` (and
        ``zero_grad(set_to_none=True)`` drops ``param.grad``); the arena
        copies the fresh values back into its views and re-binds them so
        whole-arena ops stay valid.
        """
        for param, data_view, grad_view in zip(
            self.params, self._data_views, self._grad_views
        ):
            if param.data is not data_view:
                data_view[...] = param.data
                param.data = data_view
            if param.grad is not grad_view:
                if param.grad is None:
                    grad_view[...] = 0.0
                else:
                    grad_view[...] = param.grad
                param.grad = grad_view

    def zero_grad(self, set_to_none: bool = False) -> None:
        if self.fused and not set_to_none:
            self._sync_arena()
            self._flat_grad[...] = 0.0
        else:
            super().zero_grad(set_to_none)

    def step(self) -> None:
        if not self.fused:
            if self.decoupled_weight_decay:
                for param, scale in zip(self.params, self.lr_scales):
                    if param.grad is not None:
                        param.data -= (
                            self.lr * scale * self.decoupled_weight_decay * param.data
                        )
            super().step()
            return
        self._sync_arena()
        self._step_count += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._step_count
        bias2 = 1.0 - beta2**self._step_count
        data, grad = self._flat_data, self._flat_grad
        m, v = self._flat_m, self._flat_v
        num, den = self._scratch_num, self._scratch_den
        # Every expression below mirrors the reference loop's grouping
        # ((lr * scale) first, scalars folded the same way) so the fused
        # trajectory is bit-identical to the per-parameter one.
        np.multiply(self._flat_scale, self.lr, out=num)  # num = lr * scale
        if self.decoupled_weight_decay:
            np.multiply(num, self.decoupled_weight_decay, out=den)
            den *= data
            data -= den
        m *= beta1
        np.multiply(grad, 1.0 - beta1, out=den)
        m += den
        v *= beta2
        np.multiply(grad, grad, out=den)
        den *= 1.0 - beta2
        v += den
        np.divide(m, bias1, out=den)  # m_hat
        num *= den  # (lr * scale) * m_hat
        np.divide(v, bias2, out=den)  # v_hat
        np.sqrt(den, out=den)
        den += self.eps
        num /= den
        data -= num

    def load_state_dict(self, state: dict) -> None:
        if not self.fused:
            super().load_state_dict(state)
            return
        Optimizer.load_state_dict(self, state)
        self._step_count = int(state["step_count"])
        for view, value in zip(self._m, self._load_buffers(state["m"], self._m, "m")):
            view[...] = value
        for view, value in zip(self._v, self._load_buffers(state["v"], self._v, "v")):
            view[...] = value
