"""First-order optimisers: SGD (with momentum), Adam, and AdamW.

The paper trains LightLT with AdamW (§V-A4); the baselines reuse the same
implementations. Each optimiser stores its state per parameter so training
can be paused, inspected, and resumed deterministically.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class holding parameters, per-parameter LR scales, and a base LR.

    ``params`` may be a flat list of :class:`Parameter`, or a list of group
    dicts ``{"params": [...], "lr_scale": s}``. Group scales multiply the
    base learning rate — the mechanism used to fine-tune the backbone at a
    much smaller step size than the codebooks (the paper trains its
    pre-trained backbone at 5e-5 while the rest of the model adapts faster).
    """

    def __init__(self, params, lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params: list[Parameter] = []
        self.lr_scales: list[float] = []
        for entry in params:
            if isinstance(entry, dict):
                scale = float(entry.get("lr_scale", 1.0))
                for param in entry["params"]:
                    self.params.append(param)
                    self.lr_scales.append(scale)
            else:
                self.params.append(entry)
                self.lr_scales.append(1.0)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Mutable optimisation state (not configuration), as copies.

        Subclasses extend this with their per-parameter buffers; together
        with the parameters themselves this is everything needed to resume
        an interrupted run bit-exactly.
        """
        return {"lr": self.lr}

    def load_state_dict(self, state: dict) -> None:
        """Restore state produced by :meth:`state_dict`."""
        self.lr = float(state["lr"])

    def _load_buffers(
        self, stored: list[np.ndarray], own: list[np.ndarray], name: str
    ) -> list[np.ndarray]:
        if len(stored) != len(own):
            raise ValueError(
                f"optimizer state mismatch: {len(stored)} stored {name} buffers "
                f"for {len(own)} parameters"
            )
        restored = []
        for i, (new, current) in enumerate(zip(stored, own)):
            new = np.asarray(new, dtype=np.float64)
            if new.shape != current.shape:
                raise ValueError(
                    f"optimizer {name}[{i}] shape mismatch: "
                    f"stored {new.shape}, expected {current.shape}"
                )
            restored.append(new.copy())
        return restored


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity, scale in zip(self.params, self._velocity, self.lr_scales):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * scale * grad

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._velocity = self._load_buffers(state["velocity"], self._velocity, "velocity")


class Adam(Optimizer):
    """Adam with bias-corrected first/second moment estimates."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._step_count
        bias2 = 1.0 - beta2**self._step_count
        for param, m, v, scale in zip(self.params, self._m, self._v, self.lr_scales):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                # Classic (L2) coupling; AdamW decouples it instead.
                grad = grad + self.weight_decay * param.data
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * scale * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["step_count"] = self._step_count
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._step_count = int(state["step_count"])
        self._m = self._load_buffers(state["m"], self._m, "m")
        self._v = self._load_buffers(state["v"], self._v, "v")


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter).

    This is the optimiser the paper uses for all LightLT training runs.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 5e-5,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 1e-2,
    ):
        super().__init__(params, lr=lr, betas=betas, eps=eps, weight_decay=0.0)
        self.decoupled_weight_decay = weight_decay

    def step(self) -> None:
        if self.decoupled_weight_decay:
            for param, scale in zip(self.params, self.lr_scales):
                if param.grad is not None:
                    param.data -= self.lr * scale * self.decoupled_weight_decay * param.data
        super().step()
