"""Composite differentiable functions built from tensor primitives.

Everything here is expressed in terms of the ops defined in
:mod:`repro.nn.tensor`, so gradients come for free and the implementations
stay close to the equations in the paper (softmax with temperature for
Eqn. (5), the straight-through estimator for Eqn. (6), distance kernels for
the center/ranking losses of Eqns. (13)-(14)).
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, maximum


def stable_softmax_array(
    scores: np.ndarray,
    axis: int = -1,
    temperature: float = 1.0,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Plain-ndarray tempered softmax, matching :func:`softmax` bit for bit.

    Shared by the reference ops here and the single-node kernels in
    :mod:`repro.nn.fused`: both scale by ``1/temperature`` (a multiply, not
    a divide) and subtract the max before exponentiating, so values agree
    exactly and only gradient *accumulation order* can differ between the
    two paths. ``out`` receives the result in place (and is returned),
    letting hot callers reuse a scratch buffer.
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    scaled = np.multiply(scores, 1.0 / temperature, out=out)
    scaled -= scaled.max(axis=axis, keepdims=True)
    np.exp(scaled, out=scaled)
    scaled /= scaled.sum(axis=axis, keepdims=True)
    return scaled


def softmax(logits: Tensor, axis: int = -1, temperature: float = 1.0) -> Tensor:
    """Tempered softmax, numerically stabilised by subtracting the max.

    ``temperature`` below 1 sharpens the distribution towards one-hot; the
    paper uses this to approximate argmax during DSQ encoding (Eqn. 5).
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    scaled = logits * (1.0 / temperature)
    shifted = scaled - Tensor(scaled.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))``."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Dense one-hot encoding as a plain (non-differentiable) array."""
    indices = np.asarray(indices)
    if indices.size and (indices.min() < 0 or indices.max() >= num_classes):
        raise ValueError("one_hot indices out of range")
    encoded = np.zeros((*indices.shape, num_classes), dtype=np.float64)
    np.put_along_axis(encoded, indices[..., None], 1.0, axis=-1)
    return encoded


def straight_through(hard: np.ndarray, soft: Tensor) -> Tensor:
    """Straight-through estimator: forward ``hard``, backprop through ``soft``.

    Implements Eqn. (6) of the paper:
    ``b = soft + Sg(one_hot(argmax) - soft)``. The stop-gradient term is a
    constant tensor, so the output's value equals ``hard`` while its gradient
    equals the gradient of ``soft``.
    """
    if hard.shape != soft.shape:
        raise ValueError(
            f"straight-through shapes differ: hard {hard.shape} vs soft {soft.shape}"
        )
    return soft + Tensor(hard - soft.data)


def cross_entropy(logits: Tensor, labels: np.ndarray, weights: np.ndarray | None = None) -> Tensor:
    """(Optionally class-weighted) cross-entropy over integer labels.

    Parameters
    ----------
    logits:
        ``(n, C)`` unnormalised scores.
    labels:
        ``(n,)`` integer class ids.
    weights:
        Optional ``(C,)`` per-class weights; when given, the loss is the
        weighted mean, matching Eqn. (12) with weights ``(1-γ)/(1-γ^{π_c})``.
    """
    labels = np.asarray(labels)
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(len(labels)), labels]
    if weights is None:
        return -picked.mean()
    sample_weights = np.asarray(weights, dtype=np.float64)[labels]
    return -(picked * Tensor(sample_weights)).sum() / float(len(labels))


def mse(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error over every element."""
    diff = prediction - target
    return (diff * diff).mean()


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Scale rows to unit Euclidean norm."""
    norm = (x * x).sum(axis=axis, keepdims=True).sqrt()
    return x / (norm + eps)


def pairwise_sq_distances(a: Tensor, b: Tensor) -> Tensor:
    """Squared Euclidean distances between row sets ``a (n,d)`` and ``b (m,d)``.

    Uses the expansion ``|a-b|^2 = |a|^2 + |b|^2 - 2 a·b`` (Eqn. 24), the same
    identity the ADC search exploits at inference time.
    """
    a_sq = (a * a).sum(axis=1, keepdims=True)
    b_sq = (b * b).sum(axis=1, keepdims=True)
    cross = a @ b.T
    distances = a_sq + b_sq.T - cross * 2.0
    # Guard against tiny negative values introduced by cancellation.
    return maximum(distances, 0.0)


def pairwise_distances(a: Tensor, b: Tensor, eps: float = 1e-12) -> Tensor:
    """Euclidean distances between row sets; differentiable everywhere > 0."""
    return (pairwise_sq_distances(a, b) + eps).sqrt()


def cosine_similarity(a: Tensor, b: Tensor) -> Tensor:
    """Cosine similarity matrix between row sets ``a (n,d)`` and ``b (m,d)``."""
    return l2_normalize(a, axis=1) @ l2_normalize(b, axis=1).T


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout; identity when evaluating or when ``rate`` is 0."""
    if not training or rate <= 0.0:
        return x
    if rate >= 1.0:
        raise ValueError("dropout rate must be < 1")
    mask = (rng.random(x.shape) >= rate) / (1.0 - rate)
    return x * Tensor(mask)
