"""Saving and loading module state to ``.npz`` archives.

Used by the examples to persist trained LightLT models and by the ensemble
workflow to shuttle member weights around without keeping all member graphs
alive simultaneously.

Archives are written through :mod:`repro.resilience.artifacts`: atomically
(temp file + fsync + rename) and with an embedded per-array SHA-256
manifest, so a truncated or bit-rotted file raises
:class:`~repro.resilience.errors.CorruptArtifactError` at load time instead
of yielding garbage weights. Loads additionally validate the archive
against the *target* module — missing keys, unexpected keys, and shape
mismatches raise :class:`~repro.resilience.errors.IncompatibleStateError`
before any parameter is touched, so a failed load never leaves the module
partially overwritten.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.resilience.artifacts import read_archive, write_archive
from repro.resilience.errors import IncompatibleStateError

MODULE_STATE_KIND = "module-state"


def save_state(module: Module, path: str) -> None:
    """Write ``module.state_dict()`` to ``path`` as a durable archive."""
    state = module.state_dict()
    write_archive(
        path,
        state,
        kind=MODULE_STATE_KIND,
        meta={"num_parameters": len(state)},
    )


def validate_state(module: Module, state: dict[str, np.ndarray], source: str) -> None:
    """Check that ``state`` fits ``module`` exactly; raise a typed error if not."""
    own = {name: param.data.shape for name, param in module.named_parameters()}
    missing = sorted(set(own) - set(state))
    unexpected = sorted(set(state) - set(own))
    if missing or unexpected:
        raise IncompatibleStateError(
            f"{source} does not match the target module: "
            f"missing keys {missing}, unexpected keys {unexpected}"
        )
    mismatched = [
        f"{name}: archive has {np.asarray(state[name]).shape}, module expects {shape}"
        for name, shape in own.items()
        if np.asarray(state[name]).shape != shape
    ]
    if mismatched:
        raise IncompatibleStateError(
            f"{source} has shape mismatches: " + "; ".join(mismatched)
        )


def load_state(module: Module, path: str) -> None:
    """Load an archive produced by :func:`save_state` into ``module``.

    Verifies archive integrity (checksums, manifest) and compatibility with
    ``module`` (key set, shapes) up front; the module is only modified once
    every check has passed. Legacy archives written by earlier versions
    (bare ``np.savez_compressed``) remain loadable, minus the checksum
    verification.
    """
    state, _, _ = read_archive(path, kind=MODULE_STATE_KIND)
    validate_state(module, state, source=f"archive {path!r}")
    module.load_state_dict(state)
