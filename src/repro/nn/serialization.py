"""Saving and loading module state to ``.npz`` archives.

Used by the examples to persist trained LightLT models and by the ensemble
workflow to shuttle member weights around without keeping all member graphs
alive simultaneously.
"""

from __future__ import annotations

import os

import numpy as np

from repro.nn.module import Module


def save_state(module: Module, path: str) -> None:
    """Write ``module.state_dict()`` to ``path`` as a compressed archive."""
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **state)


def load_state(module: Module, path: str) -> None:
    """Load an archive produced by :func:`save_state` into ``module``."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
