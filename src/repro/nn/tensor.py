"""A NumPy-backed tensor with reverse-mode automatic differentiation.

This is the foundation the rest of the repository is built on: the paper's
models (backbone MLPs, DSQ codebooks, classifiers) and losses are all
expressed as compositions of the primitive operations defined here, and the
trainer relies on :meth:`Tensor.backward` to produce exact gradients.

Only the operations the reproduction actually needs are implemented, but
each one supports full NumPy broadcasting and is covered by numerical
gradient checks in ``tests/nn/test_gradcheck.py``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.autograd import (
    accumulate_grad,
    is_grad_enabled,
    topological_order,
    unbroadcast,
)

ArrayLike = "np.ndarray | float | int | list | tuple | Tensor"


def _as_array(value: object) -> np.ndarray:
    """Coerce a python scalar / sequence / array into a float64 ndarray."""
    if isinstance(value, np.ndarray):
        if value.dtype != np.float64:
            return value.astype(np.float64)
        return value
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A multidimensional array that records the operations applied to it.

    Parameters
    ----------
    data:
        Anything convertible to a float64 ``np.ndarray``.
    requires_grad:
        When ``True`` the tensor participates in backward passes. Gradients
        accumulate into :attr:`grad`, mirroring the PyTorch convention.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data: object, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._raise_item()

    @staticmethod
    def _raise_item() -> float:
        raise ValueError("item() is only valid for tensors with one element")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @classmethod
    def _from_op(
        cls,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result tensor wired into the autograd graph."""
        grad_parents = tuple(p for p in parents if p.requires_grad)
        out = cls(data, requires_grad=bool(grad_parents))
        if out.requires_grad:
            out._parents = grad_parents
            out._backward = backward
        return out

    def detach(self) -> "Tensor":
        """Return a view of this tensor severed from the autograd graph.

        Used to implement the stop-gradient operator ``Sg`` of Eqn. (6): the
        straight-through estimator forwards the hard one-hot code while
        routing gradients through the tempered softmax.
        """
        return Tensor(self.data, requires_grad=False)

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)
        accumulate_grad(self, grad)
        for node in reversed(topological_order(self)):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Free interior graph state eagerly; leaves keep their grads.
                node._backward = None
                node._parents = ()

    def zero_grad(self, set_to_none: bool = False) -> None:
        """Clear the accumulated gradient.

        By default an existing gradient buffer is zeroed *in place* and
        kept, so the next backward pass accumulates into the same array
        instead of reallocating one per parameter per step (the flat-buffer
        optimiser additionally relies on the buffer staying put inside its
        arena). ``set_to_none=True`` restores the old drop-the-array
        behaviour; a tensor that never received a gradient stays at
        ``None`` either way.
        """
        if set_to_none or self.grad is None:
            self.grad = None
        else:
            self.grad[...] = 0.0

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: object) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                accumulate_grad(self, unbroadcast(grad, self.shape))
            if other_t.requires_grad:
                accumulate_grad(other_t, unbroadcast(grad, other_t.shape))

        return Tensor._from_op(out_data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            accumulate_grad(self, -grad)

        return Tensor._from_op(-self.data, (self,), backward)

    def __sub__(self, other: object) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                accumulate_grad(self, unbroadcast(grad, self.shape))
            if other_t.requires_grad:
                accumulate_grad(other_t, unbroadcast(-grad, other_t.shape))

        return Tensor._from_op(out_data, (self, other_t), backward)

    def __rsub__(self, other: object) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: object) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                accumulate_grad(self, unbroadcast(grad * other_t.data, self.shape))
            if other_t.requires_grad:
                accumulate_grad(other_t, unbroadcast(grad * self.data, other_t.shape))

        return Tensor._from_op(out_data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: object) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                accumulate_grad(self, unbroadcast(grad / other_t.data, self.shape))
            if other_t.requires_grad:
                accumulate_grad(
                    other_t,
                    unbroadcast(-grad * self.data / (other_t.data**2), other_t.shape),
                )

        return Tensor._from_op(out_data, (self, other_t), backward)

    def __rtruediv__(self, other: object) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            accumulate_grad(self, grad * exponent * self.data ** (exponent - 1))

        return Tensor._from_op(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other_t.data.ndim == 1:
                    accumulate_grad(self, np.outer(grad, other_t.data) if self.data.ndim == 2 else grad * other_t.data)
                else:
                    grad_self = grad @ np.swapaxes(other_t.data, -1, -2)
                    accumulate_grad(self, unbroadcast(grad_self, self.shape))
            if other_t.requires_grad:
                if self.data.ndim == 1:
                    accumulate_grad(other_t, np.outer(self.data, grad) if other_t.data.ndim == 2 else self.data * grad)
                else:
                    grad_other = np.swapaxes(self.data, -1, -2) @ grad
                    accumulate_grad(other_t, unbroadcast(grad_other, other_t.shape))

        return Tensor._from_op(out_data, (self, other_t), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis=axis)
            accumulate_grad(self, np.broadcast_to(expanded, self.shape).copy())

        return Tensor._from_op(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else np.prod(
            [self.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded_out = out_data if keepdims or axis is None else np.expand_dims(out_data, axis)
            expanded_grad = grad if keepdims or axis is None else np.expand_dims(grad, axis)
            mask = (self.data == expanded_out).astype(np.float64)
            # Split gradient evenly among ties to keep the operator linear.
            mask /= mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            accumulate_grad(self, mask * expanded_grad)

        return Tensor._from_op(out_data, (self,), backward)

    def min(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            accumulate_grad(self, grad * out_data)

        return Tensor._from_op(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            accumulate_grad(self, grad / self.data)

        return Tensor._from_op(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            accumulate_grad(self, grad * 0.5 / out_data)

        return Tensor._from_op(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            accumulate_grad(self, grad * np.sign(self.data))

        return Tensor._from_op(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            accumulate_grad(self, grad * mask)

        return Tensor._from_op(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            accumulate_grad(self, grad * (1.0 - out_data**2))

        return Tensor._from_op(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            accumulate_grad(self, grad * out_data * (1.0 - out_data))

        return Tensor._from_op(out_data, (self,), backward)

    def clip(self, low: float | None = None, high: float | None = None) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = np.ones_like(self.data)
        if low is not None:
            mask *= self.data >= low
        if high is not None:
            mask *= self.data <= high

        def backward(grad: np.ndarray) -> None:
            accumulate_grad(self, grad * mask)

        return Tensor._from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            accumulate_grad(self, grad.reshape(original_shape))

        return Tensor._from_op(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes_tuple)
        inverse = np.argsort(axes_tuple)

        def backward(grad: np.ndarray) -> None:
            accumulate_grad(self, grad.transpose(inverse))

        return Tensor._from_op(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index: object) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            accumulate_grad(self, full)

        return Tensor._from_op(np.array(out_data, copy=True), (self,), backward)

    # ------------------------------------------------------------------
    # Comparisons (non-differentiable; return plain arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other: object) -> np.ndarray:
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data > other_data

    def __lt__(self, other: object) -> np.ndarray:
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data < other_data

    def argmax(self, axis: int | None = None) -> np.ndarray:
        """Index of the maximum; non-differentiable by construction."""
        return self.data.argmax(axis=axis)

    def argmin(self, axis: int | None = None) -> np.ndarray:
        return self.data.argmin(axis=axis)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    arrays = [t.data for t in tensors]
    out_data = np.concatenate(arrays, axis=axis)
    sizes = [a.shape[axis] for a in arrays]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer: list = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                accumulate_grad(tensor, grad[tuple(slicer)])

    return Tensor._from_op(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        moved = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, moved):
            if tensor.requires_grad:
                accumulate_grad(tensor, piece)

    return Tensor._from_op(out_data, tuple(tensors), backward)


def where(condition: np.ndarray, if_true: Tensor, if_false: Tensor) -> Tensor:
    """Differentiable selection: gradients flow to the chosen branch only."""
    true_t = if_true if isinstance(if_true, Tensor) else Tensor(if_true)
    false_t = if_false if isinstance(if_false, Tensor) else Tensor(if_false)
    out_data = np.where(condition, true_t.data, false_t.data)

    def backward(grad: np.ndarray) -> None:
        if true_t.requires_grad:
            accumulate_grad(true_t, unbroadcast(grad * condition, true_t.shape))
        if false_t.requires_grad:
            accumulate_grad(false_t, unbroadcast(grad * (~condition), false_t.shape))

    return Tensor._from_op(out_data, (true_t, false_t), backward)


def maximum(a: Tensor, b: Tensor | float) -> Tensor:
    """Elementwise maximum with subgradient split evenly at ties."""
    b_t = b if isinstance(b, Tensor) else Tensor(b)
    out_data = np.maximum(a.data, b_t.data)
    a_mask = (a.data > b_t.data) + 0.5 * (a.data == b_t.data)
    b_mask = 1.0 - a_mask

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            accumulate_grad(a, unbroadcast(grad * a_mask, a.shape))
        if b_t.requires_grad:
            accumulate_grad(b_t, unbroadcast(grad * b_mask, b_t.shape))

    return Tensor._from_op(out_data, (a, b_t), backward)
