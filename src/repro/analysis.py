"""Post-hoc analysis of trained LightLT models and their indexes.

The paper's evaluation reports one MAP number per configuration; operating
a long-tail retrieval system needs more: *where* the quality lives (head vs
tail classes), whether the codebooks are healthy (usage entropy, dead
codewords), and how much reconstruction error the quantizer leaves. This
module packages those diagnostics behind a single report object used by the
examples and the extended benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.model import LightLT
from repro.core.quantize import codebook_usage, usage_entropy
from repro.data.datasets import RetrievalDataset
from repro.data.longtail import class_counts, head_tail_split
from repro.retrieval.metrics import mean_average_precision, per_class_average_precision


@dataclass
class HeadTailReport:
    """Retrieval quality split by class frequency."""

    overall_map: float
    head_map: float
    tail_map: float
    per_class_map: dict[int, float]
    head_classes: list[int]
    tail_classes: list[int]

    @property
    def head_tail_gap(self) -> float:
        """How much worse tail queries fare than head queries."""
        return self.head_map - self.tail_map


def head_tail_report(
    model: LightLT,
    dataset: RetrievalDataset,
    head_fraction: float = 0.5,
) -> HeadTailReport:
    """MAP broken down into head-class and tail-class queries.

    Head classes are the smallest set of largest classes holding
    ``head_fraction`` of the training data (the working definition used
    throughout the long-tail literature).
    """
    counts = class_counts(dataset.train.labels, dataset.num_classes)
    head, tail = head_tail_split(counts, head_fraction=head_fraction)
    index = model.build_index(
        dataset.database.features, labels=dataset.database.labels
    )
    ranked = model.search_ranked_labels(dataset.query.features, index)
    per_class = per_class_average_precision(ranked, dataset.query.labels)

    def mean_over(classes: np.ndarray) -> float:
        scores = [per_class[int(c)] for c in classes if int(c) in per_class]
        return float(np.mean(scores)) if scores else 0.0

    return HeadTailReport(
        overall_map=mean_average_precision(ranked, dataset.query.labels),
        head_map=mean_over(head),
        tail_map=mean_over(tail),
        per_class_map=per_class,
        head_classes=[int(c) for c in head],
        tail_classes=[int(c) for c in tail],
    )


@dataclass
class CodebookHealth:
    """Per-level codebook usage diagnostics."""

    usage_entropies: list[float]
    dead_codewords: list[int]
    num_codewords: int
    reconstruction_error: float
    embedding_variance: float

    @property
    def relative_error(self) -> float:
        """Reconstruction MSE as a fraction of the embedding variance."""
        if self.embedding_variance <= 0:
            return float("inf")
        return self.reconstruction_error / self.embedding_variance

    @property
    def healthy(self) -> bool:
        """Heuristic: no fully-collapsed level and bounded relative error."""
        return min(self.usage_entropies) > 0.1 and self.relative_error < 1.0


def codebook_health(model: LightLT, features: np.ndarray) -> CodebookHealth:
    """Diagnose codebook collapse and compression quality on ``features``."""
    codes = model.encode(features)
    embeddings = model.embed(features)
    k = model.dsq.num_codewords
    entropies = []
    dead = []
    for level in range(model.dsq.num_codebooks):
        level_codes = codes[:, level]
        entropies.append(usage_entropy(level_codes, k))
        dead.append(int((codebook_usage(level_codes, k) == 0).sum()))
    return CodebookHealth(
        usage_entropies=entropies,
        dead_codewords=dead,
        num_codewords=k,
        reconstruction_error=model.dsq.reconstruction_error(embeddings),
        embedding_variance=float(embeddings.var()),
    )


@dataclass
class ModelReport:
    """Combined diagnostic report for a trained model on a dataset."""

    head_tail: HeadTailReport
    health: CodebookHealth
    extras: dict = field(default_factory=dict)

    def summary_lines(self) -> list[str]:
        """Human-readable digest for logs and examples."""
        ht = self.head_tail
        health = self.health
        return [
            f"overall MAP {ht.overall_map:.4f} "
            f"(head {ht.head_map:.4f} / tail {ht.tail_map:.4f}, "
            f"gap {ht.head_tail_gap:+.4f})",
            "codebook usage entropy per level: "
            + ", ".join(f"{e:.2f}" for e in health.usage_entropies),
            f"dead codewords per level: {health.dead_codewords} of {health.num_codewords}",
            f"relative reconstruction error {health.relative_error:.2f} "
            f"({'healthy' if health.healthy else 'DEGENERATE'})",
        ]


def analyze(model: LightLT, dataset: RetrievalDataset) -> ModelReport:
    """Full diagnostic pass over a trained model."""
    return ModelReport(
        head_tail=head_tail_report(model, dataset),
        health=codebook_health(model, dataset.database.features),
    )
