"""Cross-query reuse of per-query ADC lookup tables.

Every ADC scan starts by building one ``(M, K)`` inner-product table per
query (:func:`repro.retrieval.adc.build_lookup_tables`). Serving traffic
is heavy-tailed the same way the data is: a handful of head queries
repeat constantly — retried requests, hedged scans, popular items — and
each repeat pays the full table build again. :class:`LUTCache` keys the
float64 table *rows* by the query vector's bytes so a repeated query (in
the same micro-batch or a later one) skips the einsum entirely.

Bit-exactness. ``np.einsum("qd,mkd->qmk", ...)`` with the default
``optimize=False`` reduces over ``d`` in a fixed order *per output
element*, independent of which other query rows share the batch — so a
table assembled from cached rows plus a subset einsum over the miss rows
is bit-identical to a fresh full-batch build, and every downstream
consumer (the float32 scan cast, the uint8 quantization, the float64
rerank) sees identical inputs. ``tests/retrieval/test_lut_cache.py``
asserts this end to end on :func:`~repro.retrieval.adc.adc_distances`.

Invalidation. A cache is bound to the codebook array it last saw: the
engine and the IVF layer hold their codebooks in one stable float64
array, so an identity change (rebuild, compaction swap) drops every
cached row. Batches larger than the cache capacity bypass it — they
could only thrash the LRU, and the per-row bookkeeping would cost more
than the one batched einsum it replaces.

Hit/miss totals land on the ``query.lut.cache.*`` counters
(:mod:`repro.obs.names`) and on the instance's ``hits`` / ``misses``
attributes for pool workers running without a registry.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from repro.obs import get_obs
from repro.obs import names as metric_names

__all__ = ["DEFAULT_CAPACITY", "LUTCache"]

#: Default number of per-query LUT rows retained (LRU).
DEFAULT_CAPACITY = 256


class LUTCache:
    """LRU cache of float64 ``(M, K)`` lookup-table rows keyed by query.

    Parameters
    ----------
    capacity:
        Maximum rows retained; least-recently-used rows are evicted.
        Batches with more queries than ``capacity`` bypass the cache.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._rows: OrderedDict[bytes, np.ndarray] = OrderedDict()
        self._codebooks: np.ndarray | None = None
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._rows)

    @staticmethod
    def _key(row: np.ndarray) -> bytes:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(row.tobytes())
        return digest.digest()

    def reset(self) -> None:
        """Drop every cached row (counters are cumulative and survive)."""
        self._rows.clear()
        self._codebooks = None

    def tables(self, queries: np.ndarray, codebooks: np.ndarray) -> np.ndarray:
        """The ``(n_q, M, K)`` float64 LUT block, reusing cached rows.

        Drop-in for the call sites' ``np.einsum("qd,mkd->qmk", queries,
        codebooks)`` — same shape, same dtype, bit-identical values.
        """
        queries = np.ascontiguousarray(queries, dtype=np.float64)
        codebooks = np.asarray(codebooks, dtype=np.float64)
        if self._codebooks is not codebooks:
            # New codebook array (rebuild/compaction): every row is stale.
            self.reset()
            self._codebooks = codebooks
        n_q = len(queries)
        if n_q == 0 or n_q > self.capacity:
            return np.einsum("qd,mkd->qmk", queries, codebooks)
        out = np.empty(
            (n_q, codebooks.shape[0], codebooks.shape[1]), dtype=np.float64
        )
        keys = [self._key(queries[i]) for i in range(n_q)]
        miss: list[int] = []
        first_miss: dict[bytes, int] = {}
        dup_of: list[tuple[int, int]] = []
        batch_hits = 0
        for i, key in enumerate(keys):
            row = self._rows.get(key)
            if row is not None:
                self._rows.move_to_end(key)
                out[i] = row
                batch_hits += 1
            elif key in first_miss:
                # Repeat *within* the batch: identical bytes, identical
                # row — serve it from the first occurrence's build.
                dup_of.append((i, first_miss[key]))
                batch_hits += 1
            else:
                first_miss[key] = i
                miss.append(i)
        if miss:
            fresh = np.einsum("qd,mkd->qmk", queries[miss], codebooks)
            out[miss] = fresh
            for pos, i in enumerate(miss):
                # Copy detaches the stored row from the batch-sized block.
                self._rows[keys[i]] = fresh[pos].copy()
                self._rows.move_to_end(keys[i])
            while len(self._rows) > self.capacity:
                self._rows.popitem(last=False)
        for i, src in dup_of:
            out[i] = out[src]
        self.hits += batch_hits
        self.misses += len(miss)
        obs = get_obs()
        if obs.enabled:
            if batch_hits:
                obs.registry.counter(metric_names.QUERY_LUT_CACHE_HITS).inc(
                    batch_hits
                )
            if miss:
                obs.registry.counter(metric_names.QUERY_LUT_CACHE_MISSES).inc(
                    len(miss)
                )
        return out
