"""Persisting quantized indexes to disk.

A deployed LightLT system stores exactly what §IV budgets for: the
codebooks, the per-item codeword ids, the per-item norms, and (optionally)
labels. This module round-trips a :class:`QuantizedIndex` through a single
``.npz`` archive so indexes can be built offline and served elsewhere.

Serving correctness depends on these archives being trustworthy, so writes
go through :mod:`repro.resilience.artifacts` (atomic rename, embedded
SHA-256 manifest) and loads validate everything a served index relies on:
archive integrity, format version, and mutual shape/dtype consistency of
``codes``/``codebooks``/``db_sq_norms``/``labels``. A damaged archive
raises :class:`~repro.resilience.errors.CorruptArtifactError`; an archive
from an unknown format raises
:class:`~repro.resilience.errors.IncompatibleStateError` — never a
garbage index.
"""

from __future__ import annotations

import os

import numpy as np

from repro.resilience.artifacts import read_archive, write_archive
from repro.resilience.errors import CorruptArtifactError, IncompatibleStateError
from repro.retrieval.index import QuantizedIndex

_FORMAT_VERSION = 1
_MUTABLE_FORMAT_VERSION = 1

INDEX_KIND = "quantized-index"
MUTABLE_INDEX_KIND = "mutable-index"


def save_index(index: QuantizedIndex, path: str) -> None:
    """Write an index to ``path`` as a durable compressed ``.npz`` archive.

    Codes are stored in the smallest unsigned integer dtype that fits the
    codebook size, mirroring the ``M·log2(K)/8`` bytes-per-item budget.
    """
    if index.num_codewords <= 256:
        code_dtype = np.uint8
    elif index.num_codewords <= 65536:
        code_dtype = np.uint16
    else:
        code_dtype = np.uint32
    payload = {
        "version": np.array([_FORMAT_VERSION]),
        "codebooks": index.codebooks.astype(np.float32),
        "codes": index.codes.astype(code_dtype),
        "db_sq_norms": index.db_sq_norms.astype(np.float32),
    }
    if index.labels is not None:
        payload["labels"] = index.labels
    write_archive(
        path,
        payload,
        kind=INDEX_KIND,
        meta={
            "num_items": len(index),
            "num_codebooks": index.num_codebooks,
            "num_codewords": index.num_codewords,
            "dim": index.dim,
        },
    )


def _validate_index_arrays(path: str, arrays: dict[str, np.ndarray]) -> None:
    """Reject archives whose members cannot form a consistent index."""
    required = ("version", "codebooks", "codes", "db_sq_norms")
    missing = [key for key in required if key not in arrays]
    if missing:
        raise CorruptArtifactError(
            f"index archive {path!r} is missing required arrays: {missing}"
        )
    version = int(np.asarray(arrays["version"]).reshape(-1)[0])
    if version != _FORMAT_VERSION:
        raise IncompatibleStateError(
            f"unsupported index format version {version} "
            f"(expected {_FORMAT_VERSION})"
        )
    codebooks = arrays["codebooks"]
    codes = arrays["codes"]
    norms = arrays["db_sq_norms"]
    if codebooks.ndim != 3:
        raise CorruptArtifactError(
            f"index archive {path!r}: codebooks must be (M, K, d), "
            f"got shape {codebooks.shape}"
        )
    m, k, _ = codebooks.shape
    if codes.ndim != 2 or codes.shape[1] != m:
        raise CorruptArtifactError(
            f"index archive {path!r}: codes shape {codes.shape} disagrees with "
            f"{m} codebooks (expected (n, {m}))"
        )
    if not np.issubdtype(codes.dtype, np.integer):
        raise CorruptArtifactError(
            f"index archive {path!r}: codes must be integer, got {codes.dtype}"
        )
    if codes.size and (codes.min() < 0 or codes.max() >= k):
        raise CorruptArtifactError(
            f"index archive {path!r}: codes reference codewords outside "
            f"[0, {k}) — archive and codebooks disagree"
        )
    if norms.ndim != 1 or len(norms) != len(codes):
        raise CorruptArtifactError(
            f"index archive {path!r}: db_sq_norms shape {norms.shape} disagrees "
            f"with {len(codes)} coded items"
        )
    if "labels" in arrays and len(arrays["labels"]) != len(codes):
        raise CorruptArtifactError(
            f"index archive {path!r}: {len(arrays['labels'])} labels for "
            f"{len(codes)} coded items"
        )


def load_index(path: str) -> QuantizedIndex:
    """Load and validate an archive produced by :func:`save_index`."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    arrays, _, _ = read_archive(path, kind=INDEX_KIND)
    _validate_index_arrays(path, arrays)
    return QuantizedIndex(
        codebooks=arrays["codebooks"].astype(np.float64),
        codes=arrays["codes"].astype(np.int64),
        db_sq_norms=arrays["db_sq_norms"].astype(np.float64),
        labels=arrays["labels"] if "labels" in arrays else None,
    )


def save_mutable_index(index, path: str) -> None:
    """Write a :class:`~repro.retrieval.mutable.MutableIndex` to ``path``.

    Unlike :func:`save_index` (which narrows to float32, matching the §IV
    serving budget), mutable archives keep codebooks and norms at float64:
    the mutable index's contract is *bit-identical* parity with a
    from-scratch rebuild, and that survives a round trip only if the scan
    inputs do. Segments are stored as-is — ``segment{i}_codes/norms/ids/
    dead`` (+ optional labels) — so a load resumes mid-lifecycle with
    tombstones and pending compaction intact.
    """
    # Imported here (not at module top) to keep the immutable-index path
    # free of the mutable module and its engine dependencies.
    from repro.retrieval.mutable import MutableIndex

    if not isinstance(index, MutableIndex):
        raise TypeError("save_mutable_index requires a MutableIndex")
    gen = index._gen
    baseline = index._drift_baseline
    payload: dict[str, np.ndarray] = {
        "version": np.array([_MUTABLE_FORMAT_VERSION]),
        "codebooks": index.codebooks,
        "state": np.array(
            [gen.number, index._next_id, int(index._refresh_flagged)],
            dtype=np.int64,
        ),
        "drift": np.array(
            [np.nan if baseline is None else baseline, index._drift_ratio],
            dtype=np.float64,
        ),
    }
    for i, segment in enumerate(gen.segments):
        payload[f"segment{i}_codes"] = segment.codes
        payload[f"segment{i}_norms"] = segment.norms
        payload[f"segment{i}_ids"] = segment.ids
        payload[f"segment{i}_dead"] = segment.dead
        if segment.labels is not None:
            payload[f"segment{i}_labels"] = segment.labels
    write_archive(
        path,
        payload,
        kind=MUTABLE_INDEX_KIND,
        meta={
            "num_segments": len(gen.segments),
            "live": gen.live_count,
            "tombstones": gen.dead_count,
            "generation": gen.number,
            "dim": index.dim,
        },
    )


def load_mutable_index(path: str, *, engine_kwargs: dict | None = None):
    """Load an archive produced by :func:`save_mutable_index`.

    ``engine_kwargs`` is a runtime concern (process pools, IVF cells) and
    is not persisted; pass it here to attach an engine to the restored
    base segment.
    """
    from repro.retrieval.mutable import MutableIndex, Segment, _Generation

    if not os.path.exists(path):
        raise FileNotFoundError(path)
    arrays, meta, _ = read_archive(path, kind=MUTABLE_INDEX_KIND)
    meta = meta or {}
    for key in ("version", "codebooks", "state", "drift"):
        if key not in arrays:
            raise CorruptArtifactError(
                f"mutable-index archive {path!r} is missing {key!r}"
            )
    version = int(np.asarray(arrays["version"]).reshape(-1)[0])
    if version != _MUTABLE_FORMAT_VERSION:
        raise IncompatibleStateError(
            f"unsupported mutable-index format version {version} "
            f"(expected {_MUTABLE_FORMAT_VERSION})"
        )
    num_segments = int(meta.get("num_segments", 0))
    if num_segments < 1:
        raise CorruptArtifactError(
            f"mutable-index archive {path!r} declares no segments"
        )
    codebooks = np.asarray(arrays["codebooks"], dtype=np.float64)
    if codebooks.ndim != 3:
        raise CorruptArtifactError(
            f"mutable-index archive {path!r}: codebooks must be (M, K, d), "
            f"got shape {codebooks.shape}"
        )
    m, k, _ = codebooks.shape
    segments = []
    for i in range(num_segments):
        members = {}
        for member in ("codes", "norms", "ids", "dead"):
            key = f"segment{i}_{member}"
            if key not in arrays:
                raise CorruptArtifactError(
                    f"mutable-index archive {path!r} is missing {key!r}"
                )
            members[member] = arrays[key]
        codes = np.asarray(members["codes"], dtype=np.int64)
        n = len(codes)
        if codes.ndim != 2 or codes.shape[1] != m:
            raise CorruptArtifactError(
                f"mutable-index archive {path!r}: segment {i} codes shape "
                f"{codes.shape} disagrees with {m} codebooks"
            )
        if codes.size and (codes.min() < 0 or codes.max() >= k):
            raise CorruptArtifactError(
                f"mutable-index archive {path!r}: segment {i} codes reference "
                f"codewords outside [0, {k})"
            )
        for member in ("norms", "ids", "dead"):
            if len(members[member]) != n:
                raise CorruptArtifactError(
                    f"mutable-index archive {path!r}: segment {i} {member} "
                    f"disagrees with {n} coded rows"
                )
        labels = arrays.get(f"segment{i}_labels")
        if labels is not None and len(labels) != n:
            raise CorruptArtifactError(
                f"mutable-index archive {path!r}: segment {i} labels "
                f"disagree with {n} coded rows"
            )
        segments.append(
            Segment.seal(
                codes,
                np.asarray(members["norms"], dtype=np.float64),
                np.asarray(members["ids"], dtype=np.int64),
                labels=labels,
                dead=np.asarray(members["dead"], dtype=bool),
            )
        )
    state = np.asarray(arrays["state"], dtype=np.int64).reshape(-1)
    drift = np.asarray(arrays["drift"], dtype=np.float64).reshape(-1)
    if len(state) != 3 or len(drift) != 2:
        raise CorruptArtifactError(
            f"mutable-index archive {path!r}: malformed state/drift members"
        )
    locations: dict[int, tuple[int, int]] = {}
    for position, segment in enumerate(segments):
        for row, ext in enumerate(segment.ids):
            if not segment.dead[row]:
                if int(ext) in locations:
                    raise CorruptArtifactError(
                        f"mutable-index archive {path!r}: id {int(ext)} is "
                        f"live in two segments"
                    )
                locations[int(ext)] = (position, row)
    index = MutableIndex(
        codebooks,
        engine_kwargs=engine_kwargs,
        labels_required=segments[0].labels is not None,
    )
    with index._lock:
        index._install_generation(
            _Generation(number=int(state[0]), segments=tuple(segments)),
            rebuild_engine=True,
        )
        index._locations = locations
        index._next_id = int(state[1])
        index._refresh_flagged = bool(state[2])
        index._drift_baseline = None if np.isnan(drift[0]) else float(drift[0])
        index._drift_ratio = float(drift[1])
    return index


def index_file_size(path: str) -> int:
    """On-disk byte size of a saved index."""
    return os.path.getsize(path)
