"""Persisting quantized indexes to disk.

A deployed LightLT system stores exactly what §IV budgets for: the
codebooks, the per-item codeword ids, the per-item norms, and (optionally)
labels. This module round-trips a :class:`QuantizedIndex` through a single
``.npz`` archive so indexes can be built offline and served elsewhere.
"""

from __future__ import annotations

import os

import numpy as np

from repro.retrieval.index import QuantizedIndex

_FORMAT_VERSION = 1


def save_index(index: QuantizedIndex, path: str) -> None:
    """Write an index to ``path`` as a compressed ``.npz`` archive.

    Codes are stored in the smallest unsigned integer dtype that fits the
    codebook size, mirroring the ``M·log2(K)/8`` bytes-per-item budget.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    if index.num_codewords <= 256:
        code_dtype = np.uint8
    elif index.num_codewords <= 65536:
        code_dtype = np.uint16
    else:
        code_dtype = np.uint32
    payload = {
        "version": np.array([_FORMAT_VERSION]),
        "codebooks": index.codebooks.astype(np.float32),
        "codes": index.codes.astype(code_dtype),
        "db_sq_norms": index.db_sq_norms.astype(np.float32),
    }
    if index.labels is not None:
        payload["labels"] = index.labels
    np.savez_compressed(path, **payload)


def load_index(path: str) -> QuantizedIndex:
    """Load an archive produced by :func:`save_index`."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    with np.load(path) as archive:
        version = int(archive["version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported index format version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        return QuantizedIndex(
            codebooks=archive["codebooks"].astype(np.float64),
            codes=archive["codes"].astype(np.int64),
            db_sq_norms=archive["db_sq_norms"].astype(np.float64),
            labels=archive["labels"] if "labels" in archive.files else None,
        )


def index_file_size(path: str) -> int:
    """On-disk byte size of a saved index."""
    return os.path.getsize(path)
