"""Persisting quantized indexes to disk.

A deployed LightLT system stores exactly what §IV budgets for: the
codebooks, the per-item codeword ids, the per-item norms, and (optionally)
labels. This module round-trips a :class:`QuantizedIndex` through a single
``.npz`` archive so indexes can be built offline and served elsewhere.

Serving correctness depends on these archives being trustworthy, so writes
go through :mod:`repro.resilience.artifacts` (atomic rename, embedded
SHA-256 manifest) and loads validate everything a served index relies on:
archive integrity, format version, and mutual shape/dtype consistency of
``codes``/``codebooks``/``db_sq_norms``/``labels``. A damaged archive
raises :class:`~repro.resilience.errors.CorruptArtifactError`; an archive
from an unknown format raises
:class:`~repro.resilience.errors.IncompatibleStateError` — never a
garbage index.
"""

from __future__ import annotations

import os

import numpy as np

from repro.resilience.artifacts import read_archive, write_archive
from repro.resilience.errors import CorruptArtifactError, IncompatibleStateError
from repro.retrieval.index import QuantizedIndex

_FORMAT_VERSION = 1

INDEX_KIND = "quantized-index"


def save_index(index: QuantizedIndex, path: str) -> None:
    """Write an index to ``path`` as a durable compressed ``.npz`` archive.

    Codes are stored in the smallest unsigned integer dtype that fits the
    codebook size, mirroring the ``M·log2(K)/8`` bytes-per-item budget.
    """
    if index.num_codewords <= 256:
        code_dtype = np.uint8
    elif index.num_codewords <= 65536:
        code_dtype = np.uint16
    else:
        code_dtype = np.uint32
    payload = {
        "version": np.array([_FORMAT_VERSION]),
        "codebooks": index.codebooks.astype(np.float32),
        "codes": index.codes.astype(code_dtype),
        "db_sq_norms": index.db_sq_norms.astype(np.float32),
    }
    if index.labels is not None:
        payload["labels"] = index.labels
    write_archive(
        path,
        payload,
        kind=INDEX_KIND,
        meta={
            "num_items": len(index),
            "num_codebooks": index.num_codebooks,
            "num_codewords": index.num_codewords,
            "dim": index.dim,
        },
    )


def _validate_index_arrays(path: str, arrays: dict[str, np.ndarray]) -> None:
    """Reject archives whose members cannot form a consistent index."""
    required = ("version", "codebooks", "codes", "db_sq_norms")
    missing = [key for key in required if key not in arrays]
    if missing:
        raise CorruptArtifactError(
            f"index archive {path!r} is missing required arrays: {missing}"
        )
    version = int(np.asarray(arrays["version"]).reshape(-1)[0])
    if version != _FORMAT_VERSION:
        raise IncompatibleStateError(
            f"unsupported index format version {version} "
            f"(expected {_FORMAT_VERSION})"
        )
    codebooks = arrays["codebooks"]
    codes = arrays["codes"]
    norms = arrays["db_sq_norms"]
    if codebooks.ndim != 3:
        raise CorruptArtifactError(
            f"index archive {path!r}: codebooks must be (M, K, d), "
            f"got shape {codebooks.shape}"
        )
    m, k, _ = codebooks.shape
    if codes.ndim != 2 or codes.shape[1] != m:
        raise CorruptArtifactError(
            f"index archive {path!r}: codes shape {codes.shape} disagrees with "
            f"{m} codebooks (expected (n, {m}))"
        )
    if not np.issubdtype(codes.dtype, np.integer):
        raise CorruptArtifactError(
            f"index archive {path!r}: codes must be integer, got {codes.dtype}"
        )
    if codes.size and (codes.min() < 0 or codes.max() >= k):
        raise CorruptArtifactError(
            f"index archive {path!r}: codes reference codewords outside "
            f"[0, {k}) — archive and codebooks disagree"
        )
    if norms.ndim != 1 or len(norms) != len(codes):
        raise CorruptArtifactError(
            f"index archive {path!r}: db_sq_norms shape {norms.shape} disagrees "
            f"with {len(codes)} coded items"
        )
    if "labels" in arrays and len(arrays["labels"]) != len(codes):
        raise CorruptArtifactError(
            f"index archive {path!r}: {len(arrays['labels'])} labels for "
            f"{len(codes)} coded items"
        )


def load_index(path: str) -> QuantizedIndex:
    """Load and validate an archive produced by :func:`save_index`."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    arrays, _, _ = read_archive(path, kind=INDEX_KIND)
    _validate_index_arrays(path, arrays)
    return QuantizedIndex(
        codebooks=arrays["codebooks"].astype(np.float64),
        codes=arrays["codes"].astype(np.int64),
        db_sq_norms=arrays["db_sq_norms"].astype(np.float64),
        labels=arrays["labels"] if "labels" in arrays else None,
    )


def index_file_size(path: str) -> int:
    """On-disk byte size of a saved index."""
    return os.path.getsize(path)
