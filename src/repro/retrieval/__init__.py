"""``repro.retrieval`` — search, metrics, and the §IV efficiency model."""

from repro.retrieval.adc import (
    adc_distances,
    build_lookup_tables,
    encode_nearest,
    reconstruct,
    validate_codes,
)
from repro.retrieval.costs import (
    EfficiencyMeasurement,
    StorageCost,
    asymptotic_compression_ratio,
    efficiency_sweep,
    measure_search_times,
    storage_cost,
    theoretical_speedup,
)
from repro.retrieval.engine import (
    QueryEngine,
    ShardedIndex,
    compact_code_dtype,
    merge_topk,
    shard_bounds,
    topk_tie_stable,
)
from repro.retrieval.index import QuantizedIndex
from repro.retrieval.ivf import IVFIndex, default_num_cells, quantize_lut
from repro.retrieval.mutable import (
    MutableIndex,
    MutationRequest,
    MutationResult,
    Segment,
)
from repro.retrieval.metrics import (
    average_precision,
    mean_average_precision,
    per_class_average_precision,
    precision_at_k,
    recall_at_k,
)
from repro.retrieval.search import (
    SearchRequest,
    SearchResult,
    exhaustive_search,
    hamming_distances,
    rank_by_distance,
    squared_distances,
)

__all__ = [
    "EfficiencyMeasurement",
    "IVFIndex",
    "MutableIndex",
    "MutationRequest",
    "MutationResult",
    "QuantizedIndex",
    "QueryEngine",
    "SearchRequest",
    "SearchResult",
    "Segment",
    "ShardedIndex",
    "StorageCost",
    "compact_code_dtype",
    "default_num_cells",
    "merge_topk",
    "quantize_lut",
    "shard_bounds",
    "topk_tie_stable",
    "adc_distances",
    "asymptotic_compression_ratio",
    "average_precision",
    "build_lookup_tables",
    "efficiency_sweep",
    "encode_nearest",
    "exhaustive_search",
    "hamming_distances",
    "mean_average_precision",
    "measure_search_times",
    "per_class_average_precision",
    "precision_at_k",
    "rank_by_distance",
    "recall_at_k",
    "reconstruct",
    "squared_distances",
    "storage_cost",
    "theoretical_speedup",
    "validate_codes",
]
