"""IVF-pruned ADC search: the coarse inverted-file layer over a quantized index.

The exhaustive paths (:func:`repro.retrieval.adc.adc_distances` and
:class:`repro.retrieval.engine.QueryEngine`) score *every* database code per
query — ``O(n_db · M)`` lookups no matter how the scan is sharded. This
module adds the standard PQ serving architecture's missing layer: a coarse
quantizer (plain :func:`repro.cluster.kmeans` over the reconstructed
database) splits the database into ``num_cells`` inverted lists, and a query
scans only the ``nprobe`` lists whose centroids sit nearest to it. Work per
query drops from ``n_db · M`` to roughly ``(nprobe / num_cells) · n_db · M``
lookups plus one tiny ``(n_q, num_cells)`` centroid scan.

Layout. Database rows are permuted so each cell is one contiguous column
range of the transposed code matrix (``codes_t``), exactly the layout the
sharded engine scans — a probe is a cheap contiguous slice, and ``ids``
maps positions back to global row numbers so returned indices match the
exhaustive paths.

Accuracy. Inside the probed cells the arithmetic is the engine's: a float32
gather-scan over the per-query lookup tables followed by an exact float64
rerank of the candidate pool, so rankings among candidates are identical to
the serial reference. Recall is lost only to *pruning* — a true neighbour
whose cell was not probed. That trade is measured, not asserted:
``repro bench --profile ivf-large`` sweeps ``nprobe`` and records the
recall@k-vs-speedup curve against the exact exhaustive oracle
(``docs/tuning.md`` explains how to choose a point on it).

Quantized lookup tables. With ``lut_dtype="uint8"`` the per-query float32
LUT is quantized to uint8 with one scale per query and one offset per
codebook (``lut ≈ offset_j + scale · q``); the scan then gathers one byte
per code instead of four and accumulates in int32, shrinking the scan
working set 4x. Because ``Σ_j lut[j, c_j] ≈ Σ_j offset_j + scale · Σ_j q``,
dequantization is two scalars per query. Quantization shifts each distance
by at most ``M · scale``, so the rerank pool keeps every candidate within
``2 · M · scale`` of the k-th smallest quantized distance and the float64
rerank then removes the error from the final ranking entirely — uint8 pays
with a wider rerank pool, not with recall. The float32 path is kept as the
reference (``lut_dtype="float32"``, the default).

Observability: the ``ivf.*`` metric family catalogued in
:mod:`repro.obs.names` (build/train/assign times, per-query probed-cell and
candidate counts, scan time, probe expansions).
"""

from __future__ import annotations

import time

import numpy as np

from repro.cluster.kmeans import assign_to_centroids, kmeans
from repro.obs import get_obs
from repro.obs import names as metric_names
from repro.retrieval.index import QuantizedIndex
from repro.retrieval.lut_cache import DEFAULT_CAPACITY as LUT_CACHE_CAPACITY
from repro.retrieval.lut_cache import LUTCache
from repro.retrieval.search import (
    SearchRequest,
    SearchResult,
    warn_legacy_search_kwargs,
)

__all__ = [
    "IVFIndex",
    "default_num_cells",
    "quantize_lut",
]

#: Extra candidates carried into the float64 rerank, mirroring the engine.
RERANK_PAD = 8

#: Rows of reconstructions materialised at once during build/assignment.
ASSIGN_CHUNK = 65_536

#: Default cap on the coarse-quantizer training sample.
TRAIN_SAMPLE = 65_536


def default_num_cells(n_db: int) -> int:
    """The ``√n`` rule of thumb, clamped to ``[1, 4096]``.

    Balances the two per-query costs: the centroid scan grows with
    ``num_cells`` while the per-cell scan shrinks with it; ``√n`` equalises
    them for ``nprobe ≈ 1``.
    """
    if n_db <= 0:
        return 1
    return int(min(4096, max(1, round(np.sqrt(n_db)))))


def quantize_lut(lut32: np.ndarray) -> tuple[np.ndarray, np.ndarray, float]:
    """Quantize one query's ``(M, K)`` float32 LUT to uint8.

    Returns ``(q8, offsets, scale)`` with ``lut ≈ offsets[:, None] +
    scale · q8`` — one offset per codebook (tables have very different
    ranges when codebooks encode residuals of shrinking norm) and a single
    scale so the scan can accumulate raw integer sums.
    """
    offsets = lut32.min(axis=1)
    shifted = lut32 - offsets[:, None]
    span = float(shifted.max())
    scale = span / 255.0 if span > 0 else 1.0
    q8 = np.rint(shifted / scale).astype(np.uint8)
    return q8, offsets, scale


class IVFIndex:
    """An inverted-file coarse layer over a :class:`QuantizedIndex`.

    Build with :meth:`IVFIndex.build` (trains the coarse quantizer); the
    constructor takes the already-laid-out arrays. An ``IVFIndex`` serves
    queries directly (:meth:`search` / :meth:`search_with_distances`) and
    plugs into :class:`repro.retrieval.engine.QueryEngine` via its ``ivf=``
    parameter, which is how the serving daemon and the bench reach it.

    Attributes
    ----------
    centroids:
        ``(num_cells, d)`` coarse codebook (float64).
    cell_offsets:
        ``(num_cells + 1,)`` prefix offsets; cell ``c`` owns columns
        ``[cell_offsets[c], cell_offsets[c+1])`` of ``codes_t`` / ``ids``.
    codes_t:
        ``(M, n_db)`` compact-dtype codes, columns permuted cell-by-cell.
    ids:
        ``(n_db,)`` global database row of each permuted column.
    nprobe:
        Default number of cells probed per query.
    lut_dtype:
        ``"float32"`` (reference) or ``"uint8"`` (quantized tables).
    """

    def __init__(
        self,
        *,
        centroids: np.ndarray,
        cell_offsets: np.ndarray,
        codes_t: np.ndarray,
        ids: np.ndarray,
        norms64: np.ndarray,
        codebooks64: np.ndarray,
        nprobe: int = 8,
        lut_dtype: str = "float32",
        rerank: bool = True,
        rerank_pad: int = RERANK_PAD,
        lut_cache: int | None = LUT_CACHE_CAPACITY,
    ) -> None:
        if lut_dtype not in ("float32", "uint8"):
            raise ValueError("lut_dtype must be 'float32' or 'uint8'")
        if nprobe < 1:
            raise ValueError("nprobe must be at least 1")
        self.centroids = np.asarray(centroids, dtype=np.float64)
        self.cell_offsets = np.asarray(cell_offsets, dtype=np.int64)
        self.codes_t = codes_t
        self.ids = np.asarray(ids, dtype=np.int64)
        self.norms64 = np.asarray(norms64, dtype=np.float64)
        self.norms32 = self.norms64.astype(np.float32)
        self.codebooks64 = np.asarray(codebooks64, dtype=np.float64)
        self.nprobe = int(nprobe)
        self.lut_dtype = lut_dtype
        self.rerank = bool(rerank)
        self.rerank_pad = int(rerank_pad)
        if len(self.cell_offsets) != self.num_cells + 1:
            raise ValueError("cell_offsets must have num_cells + 1 entries")
        if self.cell_offsets[-1] != self.codes_t.shape[1]:
            raise ValueError("cell_offsets do not cover the code matrix")
        # Cached centroid norms for the probe scan.
        self._centroid_sq = (self.centroids**2).sum(axis=1)
        #: Cross-query LUT reuse (bit-identical; see repro.retrieval.lut_cache).
        self.lut_cache = LUTCache(lut_cache) if lut_cache else None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        index: QuantizedIndex,
        num_cells: int | None = None,
        *,
        nprobe: int = 8,
        lut_dtype: str = "float32",
        rerank: bool = True,
        rerank_pad: int = RERANK_PAD,
        train_sample: int = TRAIN_SAMPLE,
        kmeans_iterations: int = 25,
        seed: int = 0,
        centroids: np.ndarray | None = None,
        chunk_size: int = ASSIGN_CHUNK,
    ) -> "IVFIndex":
        """Train the coarse quantizer and lay out the inverted lists.

        The quantizer is :func:`repro.cluster.kmeans` over (a sample of)
        the database *reconstructions* — the vectors ADC actually ranks —
        and assignment then streams the full database through it in
        ``chunk_size`` blocks, so a memory-mapped corpus never materialises
        entirely. Pass ``centroids`` to skip training and use a fixed
        coarse codebook (tests use this to force empty cells).
        """
        from repro.retrieval.engine import compact_code_dtype

        obs = get_obs()
        build_start = time.perf_counter()
        n_db = len(index)
        rng = np.random.default_rng(seed)

        train_elapsed = 0.0
        if centroids is None:
            k = num_cells if num_cells is not None else default_num_cells(n_db)
            k = max(1, min(int(k), max(n_db, 1)))
            train_start = time.perf_counter()
            if n_db > train_sample:
                sample_rows = rng.choice(n_db, size=train_sample, replace=False)
                sample_rows.sort()
            else:
                sample_rows = np.arange(n_db)
            sample = _reconstruct_rows(index, sample_rows)
            if len(sample) == 0:
                centroids = np.zeros((1, index.dim))
            else:
                k = min(k, len(sample))
                centroids = kmeans(
                    sample, k, rng=rng, max_iterations=kmeans_iterations
                ).centroids
            train_elapsed = time.perf_counter() - train_start
        else:
            centroids = np.asarray(centroids, dtype=np.float64)
            if centroids.ndim != 2 or centroids.shape[1] != index.dim:
                raise ValueError(
                    f"centroids must be (num_cells, {index.dim}), "
                    f"got shape {centroids.shape}"
                )

        assign_start = time.perf_counter()
        n_cells = len(centroids)
        assignments = np.empty(n_db, dtype=np.int64)
        for lo in range(0, n_db, chunk_size):
            hi = min(lo + chunk_size, n_db)
            rows = _reconstruct_rows(index, np.arange(lo, hi))
            assignments[lo:hi] = assign_to_centroids(rows, centroids)
        # Stable sort: within a cell, global ids stay ascending, so the
        # per-cell scan meets candidates in the tie-stable order.
        order = np.argsort(assignments, kind="stable")
        counts = np.bincount(assignments, minlength=n_cells)
        cell_offsets = np.zeros(n_cells + 1, dtype=np.int64)
        np.cumsum(counts, out=cell_offsets[1:])
        code_dtype = compact_code_dtype(index.num_codewords)
        codes_t = np.ascontiguousarray(index.codes[order].T.astype(code_dtype))
        assign_elapsed = time.perf_counter() - assign_start

        ivf = cls(
            centroids=centroids,
            cell_offsets=cell_offsets,
            codes_t=codes_t,
            ids=order,
            norms64=index.db_sq_norms[order],
            codebooks64=index.codebooks,
            nprobe=nprobe,
            lut_dtype=lut_dtype,
            rerank=rerank,
            rerank_pad=rerank_pad,
        )
        if obs.enabled:
            registry = obs.registry
            registry.histogram(metric_names.IVF_TRAIN_TIME).observe(train_elapsed)
            registry.histogram(metric_names.IVF_ASSIGN_TIME).observe(assign_elapsed)
            registry.histogram(metric_names.IVF_BUILD_TIME).observe(
                time.perf_counter() - build_start
            )
        return ivf

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.codes_t.shape[1]

    @property
    def num_cells(self) -> int:
        return len(self.centroids)

    @property
    def num_codebooks(self) -> int:
        return self.codebooks64.shape[0]

    @property
    def num_codewords(self) -> int:
        return self.codebooks64.shape[1]

    @property
    def dim(self) -> int:
        return self.codebooks64.shape[2]

    @property
    def nbytes(self) -> int:
        """Serving-side footprint: codes, id map, norms, centroids."""
        return (
            self.codes_t.nbytes
            + self.ids.nbytes
            + self.norms32.nbytes
            + self.centroids.nbytes
        )

    def cell_sizes(self) -> np.ndarray:
        """``(num_cells,)`` items per inverted list (empty cells are 0)."""
        return np.diff(self.cell_offsets)

    def matches(self, index: QuantizedIndex) -> bool:
        """Cheap identity check: same geometry as ``index``."""
        return (
            len(self) == len(index)
            and self.num_codebooks == index.num_codebooks
            and self.num_codewords == index.num_codewords
            and self.dim == index.dim
        )

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self,
        queries: "np.ndarray | SearchRequest",
        k: int | None = None,
        *,
        nprobe: int | None = None,
        rerank: bool | None = None,
    ) -> "np.ndarray | SearchResult":
        """Ranked database indices per query over the probed cells.

        The canonical form takes a
        :class:`~repro.retrieval.search.SearchRequest` and returns a
        :class:`~repro.retrieval.search.SearchResult`; the legacy array
        form returns bare indices, its ``nprobe=``/``rerank=`` kwargs kept
        as deprecated shims (``DeprecationWarning``).

        Shapes and tie-breaking match the exhaustive paths — ``(n_q,
        min(k, n_db))``, ordered by (distance, global index) — but only
        candidates from the probed cells compete, so results are
        approximate with a measured recall (see ``docs/tuning.md``). When
        the probed cells hold fewer than ``k`` candidates the probe set
        widens in centroid-distance order until ``k`` is met, so the shape
        contract always holds. ``k=None`` (the exhaustive paths' full
        ranking) is not served by a pruned index; pass an explicit ``k``.
        """
        if isinstance(queries, SearchRequest):
            if k is not None or nprobe is not None or rerank is not None:
                raise TypeError(
                    "pass search parameters inside the SearchRequest, not "
                    "alongside it"
                )
            return self.serve(queries)
        warn_legacy_search_kwargs(
            "IVFIndex.search", nprobe=nprobe, rerank=rerank
        )
        indices, _ = self.search_with_distances(
            queries, k=k, nprobe=nprobe, rerank=rerank
        )
        return indices

    def serve(self, request: SearchRequest) -> SearchResult:
        """Serve one :class:`SearchRequest` through the pruned path."""
        if request.engine is not None and request.engine is not self:
            raise ValueError(
                "request carries an engine hint for a different engine"
            )
        if request.encoder is not None:
            raise ValueError(
                "the IVF layer scans embeddings; encoder hints are served "
                "by the serving daemon (repro.serving)"
            )
        start = time.perf_counter()
        indices, distances = self.search_with_distances(
            request.queries,
            k=request.k,
            nprobe=request.nprobe,
            rerank=request.rerank,
        )
        return SearchResult(
            indices=indices,
            distances=distances,
            k=request.k,
            source="ivf",
            elapsed_s=time.perf_counter() - start,
        )

    def search_with_distances(
        self,
        queries: np.ndarray,
        k: int | None = None,
        *,
        nprobe: int | None = None,
        rerank: bool | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Like :meth:`search` but also returns the squared distances."""
        if k is None:
            raise ValueError(
                "IVF search prunes the database and cannot produce the "
                "full ranking; pass an explicit k (or use the exhaustive "
                "QueryEngine path)"
            )
        if k < 0:
            raise ValueError("k must be non-negative")
        nprobe = self.nprobe if nprobe is None else int(nprobe)
        if nprobe < 1:
            raise ValueError("nprobe must be at least 1")
        nprobe = min(nprobe, self.num_cells)
        use_rerank = self.rerank if rerank is None else bool(rerank)

        n_db = len(self)
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or (queries.size and queries.shape[1] != self.dim):
            raise ValueError(
                f"queries must be (n, {self.dim}), got shape {queries.shape}"
            )
        n_q = len(queries)
        k_eff = min(k, n_db)
        if n_q == 0 or n_db == 0 or k_eff == 0:
            return (np.empty((n_q, k_eff), dtype=np.int64),
                    np.empty((n_q, k_eff), dtype=np.float64))

        obs = get_obs()
        scan_start = time.perf_counter() if obs.enabled else 0.0

        if self.lut_cache is not None:
            lut64 = self.lut_cache.tables(queries, self.codebooks64)
        else:
            lut64 = np.einsum("qd,mkd->qmk", queries, self.codebooks64)
        q_sq64 = (queries**2).sum(axis=1)
        lut32 = np.ascontiguousarray(lut64, dtype=np.float32)
        q_sq32 = q_sq64.astype(np.float32)

        # Probe scan: rank every centroid per query (num_cells is small, a
        # full argsort costs microseconds and probe expansion needs the
        # complete order anyway).
        probe_order = np.argsort(
            self._centroid_sq[None, :] - 2.0 * (queries @ self.centroids.T),
            axis=1,
            kind="stable",
        )

        shard_k = min(k_eff + (self.rerank_pad if use_rerank else 0), n_db)
        quantize_elapsed = 0.0
        probed_counts = np.empty(n_q, dtype=np.int64)
        candidate_counts = np.empty(n_q, dtype=np.int64)
        expansions = 0
        out_indices = np.empty((n_q, k_eff), dtype=np.int64)
        out_values = np.empty((n_q, k_eff), dtype=np.float64)
        for qi in range(n_q):
            # Widen past nprobe only if the probed cells cannot fill k —
            # empty cells make this reachable even at moderate nprobe.
            n_cells_used = nprobe
            cand = self._gather_candidates(probe_order[qi], n_cells_used)
            while len(cand) < shard_k and n_cells_used < self.num_cells:
                n_cells_used = min(self.num_cells, max(n_cells_used * 2, 1))
                cand = self._gather_candidates(probe_order[qi], n_cells_used)
            if n_cells_used > nprobe:
                expansions += 1
            probed_counts[qi] = n_cells_used
            candidate_counts[qi] = len(cand)

            scale = 0.0
            if self.lut_dtype == "uint8":
                q_start = time.perf_counter() if obs.enabled else 0.0
                q8, offsets, scale = quantize_lut(lut32[qi])
                if obs.enabled:
                    quantize_elapsed += time.perf_counter() - q_start
                acc = q8[0, self.codes_t[0, cand]].astype(np.int32)
                for j in range(1, self.num_codebooks):
                    acc += q8[j, self.codes_t[j, cand]]
                cross = offsets.sum() + scale * acc.astype(np.float32)
                d = q_sq32[qi] + self.norms32[cand] - 2.0 * cross
            else:
                cross = lut32[qi, 0, self.codes_t[0, cand]].copy()
                for j in range(1, self.num_codebooks):
                    cross += lut32[qi, j, self.codes_t[j, cand]]
                d = q_sq32[qi] + self.norms32[cand] - 2.0 * cross
            np.maximum(d, 0.0, out=d)

            take = min(shard_k, len(cand))
            global_ids = self.ids[cand]
            if take < len(cand):
                if self.lut_dtype == "uint8" and use_rerank:
                    # Quantization shifts each distance by at most M·scale/2
                    # per table lookup times the factor 2 on the cross term,
                    # so any true top-k candidate sits within 2·M·scale of
                    # the k-th smallest quantized distance. Keeping that
                    # whole band makes the float64 rerank exact within the
                    # probed cells — uint8 trades rerank-pool size, not
                    # recall, against the float32 reference.
                    kth = np.partition(d, k_eff - 1)[k_eff - 1]
                    margin = 2.0 * self.num_codebooks * scale
                    keep = np.flatnonzero(d <= kth + margin)
                    sel_ids, sel_d = global_ids[keep], d[keep]
                else:
                    part = np.argpartition(d, take - 1)[:take]
                    sel_ids, sel_d = global_ids[part], d[part]
            else:
                sel_ids, sel_d = global_ids, d
            if use_rerank:
                sel_ids, sel_d = self._rerank_exact(
                    lut64[qi], float(q_sq64[qi]), sel_ids, k_eff
                )
            else:
                order = np.lexsort((sel_ids, sel_d))[:k_eff]
                sel_ids = sel_ids[order]
                sel_d = sel_d[order].astype(np.float64)
            out_indices[qi] = sel_ids
            out_values[qi] = sel_d

        if obs.enabled:
            registry = obs.registry
            elapsed = time.perf_counter() - scan_start
            registry.histogram(metric_names.IVF_SCAN_TIME).observe(elapsed)
            if self.lut_dtype == "uint8":
                registry.histogram(metric_names.IVF_LUT_QUANTIZE_TIME).observe(
                    quantize_elapsed
                )
            cells_hist = registry.histogram(metric_names.IVF_CELLS_PROBED)
            cand_hist = registry.histogram(metric_names.IVF_CANDIDATES_SCANNED)
            for qi in range(n_q):
                cells_hist.observe(float(probed_counts[qi]))
                cand_hist.observe(float(candidate_counts[qi]))
            registry.counter(metric_names.IVF_BATCHES_TOTAL).inc()
            if expansions:
                registry.counter(metric_names.IVF_PROBES_EXPANDED).inc(expansions)
        return out_indices, out_values

    def _gather_candidates(self, cell_order: np.ndarray, n_cells: int) -> np.ndarray:
        """Column positions of every item in the first ``n_cells`` cells."""
        parts = []
        for cell in cell_order[:n_cells]:
            lo, hi = self.cell_offsets[cell], self.cell_offsets[cell + 1]
            if hi > lo:
                parts.append(np.arange(lo, hi))
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def _rerank_exact(
        self, lut64: np.ndarray, q_sq: float, candidate_ids: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Re-score candidate *global* ids in float64; tie-stable top-k.

        Uses the permuted layout via the inverse position of each id —
        candidates arrive as global rows, so gather their columns back.
        """
        positions = self._positions_of(candidate_ids)
        cross = lut64[0, self.codes_t[0, positions]].copy()
        for j in range(1, self.num_codebooks):
            cross += lut64[j, self.codes_t[j, positions]]
        d = q_sq + self.norms64[positions] - 2.0 * cross
        np.maximum(d, 0.0, out=d)
        order = np.lexsort((candidate_ids, d))[:k]
        return candidate_ids[order], d[order]

    def _positions_of(self, global_ids: np.ndarray) -> np.ndarray:
        """Permuted column positions of global database rows."""
        if not hasattr(self, "_inverse"):
            inverse = np.empty(len(self), dtype=np.int64)
            inverse[self.ids] = np.arange(len(self))
            self._inverse = inverse
        return self._inverse[global_ids]


def _reconstruct_rows(index: QuantizedIndex, rows: np.ndarray) -> np.ndarray:
    """Decode selected database rows without materialising the full matrix."""
    codes = index.codes[rows]
    m = index.num_codebooks
    gathered = index.codebooks[np.arange(m)[None, :], codes]
    return gathered.sum(axis=1)
