"""Ranking metrics for retrieval evaluation.

Implements the paper's evaluation protocol (§V-A3): Average Precision per
query over the full database with label-equality relevance, and Mean
Average Precision (MAP) over the query set. Precision/recall at fixed
cutoffs are provided for supplementary analyses.
"""

from __future__ import annotations

import numpy as np


def average_precision(relevance: np.ndarray, cutoff: int | None = None) -> float:
    """AP of one ranked relevance vector.

    ``AP@n = (Σ_i P(i) · δ(i)) / (Σ_i δ(i))`` where ``P(i)`` is precision at
    rank ``i`` and ``δ(i)`` marks relevant results, exactly as defined in
    §V-A3. Queries with no relevant item in the ranking score 0.
    """
    relevance = np.asarray(relevance, dtype=np.float64)
    if relevance.ndim != 1:
        raise ValueError("relevance must be a 1-D ranked vector")
    if cutoff is not None:
        relevance = relevance[:cutoff]
    total_relevant = relevance.sum()
    if total_relevant == 0:
        return 0.0
    ranks = np.arange(1, len(relevance) + 1, dtype=np.float64)
    precision_at_i = np.cumsum(relevance) / ranks
    return float((precision_at_i * relevance).sum() / total_relevant)


def mean_average_precision(
    ranked_db_labels: np.ndarray,
    query_labels: np.ndarray,
    cutoff: int | None = None,
) -> float:
    """MAP over a query set.

    Parameters
    ----------
    ranked_db_labels:
        ``(n_query, n_db)`` labels of database items in ranked order for
        each query (output of a search function composed with db labels).
    query_labels:
        ``(n_query,)`` ground-truth labels; relevance is label equality.
    cutoff:
        Optional rank cutoff (``AP@cutoff``); ``None`` uses the full
        database as in the paper.
    """
    ranked_db_labels = np.asarray(ranked_db_labels)
    query_labels = np.asarray(query_labels)
    if ranked_db_labels.shape[0] != query_labels.shape[0]:
        raise ValueError("ranked labels and query labels disagree on n_query")
    relevance = (ranked_db_labels == query_labels[:, None]).astype(np.float64)
    scores = [average_precision(row, cutoff=cutoff) for row in relevance]
    return float(np.mean(scores)) if scores else 0.0


def precision_at_k(
    ranked_db_labels: np.ndarray, query_labels: np.ndarray, k: int
) -> float:
    """Mean fraction of relevant items among each query's top-k results.

    Convention: the denominator is the *requested* ``k`` even when the
    ranking holds fewer than ``k`` items — missing slots count as
    irrelevant. (Truncating the denominator to the database size, as a
    naive ``[:, :k].mean()`` does, silently inflates the score whenever
    ``k > n_db``.)
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    ranked_db_labels = np.asarray(ranked_db_labels)
    k_eff = min(k, ranked_db_labels.shape[1])
    relevance = ranked_db_labels[:, :k_eff] == np.asarray(query_labels)[:, None]
    return float(relevance.sum(axis=1).mean() / k)


def recall_at_k(
    ranked_db_labels: np.ndarray,
    query_labels: np.ndarray,
    db_labels: np.ndarray,
    k: int,
) -> float:
    """Mean fraction of each query's relevant items found in the top-k.

    Convention: ``k`` is clamped to the ranking width — a cutoff past the
    end of the database retrieves the whole ranking, and the denominator
    stays the true relevant count, so ``k > n_db`` cannot inflate recall.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    query_labels = np.asarray(query_labels)
    db_labels = np.asarray(db_labels)
    ranked_db_labels = np.asarray(ranked_db_labels)
    totals = np.array([(db_labels == label).sum() for label in query_labels])
    k_eff = min(k, ranked_db_labels.shape[1])
    hits = (ranked_db_labels[:, :k_eff] == query_labels[:, None]).sum(axis=1)
    valid = totals > 0
    if not valid.any():
        return 0.0
    return float((hits[valid] / totals[valid]).mean())


def per_class_average_precision(
    ranked_db_labels: np.ndarray, query_labels: np.ndarray
) -> dict[int, float]:
    """MAP broken down by query class.

    Used to verify the long-tail claim directly: tail-class queries should
    benefit most from the class-weighted loss.
    """
    ranked_db_labels = np.asarray(ranked_db_labels)
    query_labels = np.asarray(query_labels)
    result: dict[int, float] = {}
    for label in np.unique(query_labels):
        mask = query_labels == label
        result[int(label)] = mean_average_precision(
            ranked_db_labels[mask], query_labels[mask]
        )
    return result
