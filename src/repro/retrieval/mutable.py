"""Segmented mutable index: online add/remove over the immutable ADC stack.

Every index in the repo below this module is build-once/read-only — a
:class:`~repro.retrieval.index.QuantizedIndex` and its engine/IVF layouts
never change after construction. Long-tail corpora do: new tail classes
arrive, stale items leave, and a serving tier cannot afford a full rebuild
per change. :class:`MutableIndex` closes that gap with the standard
LSM-style decomposition:

- ``add(vectors, ids)`` encodes the batch with the *existing* codebooks
  (:func:`~repro.retrieval.adc.encode_nearest` is deterministic, so the
  codes are bit-identical to what a from-scratch rebuild would produce)
  and seals it into an immutable :class:`Segment`, rows sorted by external
  id.
- ``remove(ids)`` never touches row storage: it flips tombstone bits in a
  copy-on-write mask, so a dead row simply scans at distance ``+inf``.
- ``compact()`` merges every segment's live rows into one fresh base
  segment in ascending-id order, drops tombstones, rebuilds the attached
  engine (and its IVF cell layout) over the compacted rows, and swaps the
  whole generation in with a single reference assignment — in-flight
  searches keep the snapshot they started with, so queries are never
  interrupted.

**Exactness.** Search results are *bit-identical* to a from-scratch
rebuild over the live rows (parity-tested in
``tests/retrieval/test_mutable.py``): ADC distances are per-row
independent, segment rows are id-sorted so the tie-stable per-segment
top-k's column order is id order, and the cross-segment merge is a
``lexsort`` on ``(distance, external id)`` — the exact order the rebuilt
index's stable ranking produces. Tombstones cannot perturb live rows: a
dead row's norm is ``+inf``, which only ever loses comparisons.

**Drift.** Each add batch's mean quantization error is compared against a
baseline (the first batch, unless set explicitly); the ratio lands in the
``mutable.drift.ratio`` gauge, and crossing ``drift_threshold`` flags that
the DSQ codebooks should be fine-tuned and the index refreshed
(``mutable.refresh.flagged``).

Thread-safety: mutations serialise on an internal lock and publish a new
immutable generation; searches read the generation reference once and
never block. Metrics land in the ``mutable.*`` family
(``docs/metrics.md``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.obs import get_obs
from repro.obs import names as metric_names
from repro.retrieval.adc import adc_distances, encode_nearest, reconstruct
from repro.retrieval.index import QuantizedIndex
from repro.retrieval.search import (
    SearchRequest,
    SearchResult,
    topk_tie_stable,
)

__all__ = [
    "MutableIndex",
    "MutationRequest",
    "MutationResult",
    "Segment",
]

_MUTATION_OPS = ("add", "remove", "compact")


@dataclass(frozen=True)
class MutationRequest:
    """One mutation, as data — the write-side twin of ``SearchRequest``.

    Attributes
    ----------
    op:
        ``"add"``, ``"remove"``, or ``"compact"``.
    vectors:
        ``(n, d)`` float vectors to append (``add`` only).
    ids:
        External ids: the rows to append under (``add``; auto-assigned
        when omitted) or the live rows to tombstone (``remove``).
    labels:
        Optional per-row labels carried alongside added vectors.
    """

    op: str
    vectors: np.ndarray | None = None
    ids: np.ndarray | None = None
    labels: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.op not in _MUTATION_OPS:
            raise ValueError(
                f"op must be one of {_MUTATION_OPS}, got {self.op!r}"
            )
        if self.op == "add" and self.vectors is None:
            raise ValueError("add requires vectors")
        if self.op == "remove" and self.ids is None:
            raise ValueError("remove requires ids")


@dataclass(frozen=True)
class MutationResult:
    """What one mutation did, with the segment stats after it.

    Attributes
    ----------
    op:
        The operation performed.
    added:
        Rows appended by this mutation.
    removed:
        Rows tombstoned by this mutation (for ``compact``: tombstones
        dropped).
    live:
        Live (searchable) rows after the mutation.
    tombstones:
        Tombstoned rows still awaiting compaction.
    segments:
        Sealed segments (base included) in the new generation.
    segment_sizes:
        Stored row count per segment, in segment order.
    generation:
        Monotone generation number published by this mutation.
    elapsed_s:
        Wall time of the mutation.
    drift_ratio:
        Quantization-error drift ratio after the mutation (``nan`` until a
        baseline exists).
    """

    op: str
    added: int
    removed: int
    live: int
    tombstones: int
    segments: int
    segment_sizes: tuple[int, ...]
    generation: int
    elapsed_s: float
    drift_ratio: float


@dataclass(frozen=True)
class Segment:
    """One sealed, immutable run of encoded rows.

    Rows are sorted by ascending external id at seal time, so the
    tie-stable per-segment top-k (which breaks distance ties by column
    index) breaks them by external id — the invariant the cross-segment
    merge and the rebuild-parity contract rest on. ``dead`` is the
    tombstone mask; ``scan_norms`` bakes it in as ``+inf`` norms so the
    scan itself needs no masking pass.
    """

    codes: np.ndarray
    norms: np.ndarray
    ids: np.ndarray
    labels: np.ndarray | None
    dead: np.ndarray
    scan_norms: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]
    n_dead: int = 0

    @classmethod
    def seal(
        cls,
        codes: np.ndarray,
        norms: np.ndarray,
        ids: np.ndarray,
        labels: np.ndarray | None = None,
        dead: np.ndarray | None = None,
    ) -> "Segment":
        """Sort rows by external id and freeze the segment."""
        ids = np.asarray(ids, dtype=np.int64)
        order = np.argsort(ids, kind="stable")
        codes = np.ascontiguousarray(np.asarray(codes, dtype=np.int64)[order])
        norms = np.ascontiguousarray(np.asarray(norms, dtype=np.float64)[order])
        ids = np.ascontiguousarray(ids[order])
        if labels is not None:
            labels = np.asarray(labels)[order]
        if dead is None:
            dead = np.zeros(len(ids), dtype=bool)
        else:
            dead = np.asarray(dead, dtype=bool)[order]
        return cls._assemble(codes, norms, ids, labels, dead)

    @classmethod
    def _assemble(cls, codes, norms, ids, labels, dead) -> "Segment":
        scan_norms = np.where(dead, np.inf, norms)
        return cls(
            codes=codes,
            norms=norms,
            ids=ids,
            labels=labels,
            dead=dead,
            scan_norms=scan_norms,
            n_dead=int(dead.sum()),
        )

    def with_dead(self, rows: np.ndarray) -> "Segment":
        """Copy-on-write tombstoning: a new segment with ``rows`` dead."""
        dead = self.dead.copy()
        dead[rows] = True
        return type(self)._assemble(
            self.codes, self.norms, self.ids, self.labels, dead
        )

    def __len__(self) -> int:
        return len(self.codes)

    @property
    def n_live(self) -> int:
        return len(self.codes) - self.n_dead


@dataclass(frozen=True)
class _Generation:
    """An immutable snapshot of the whole index: base + sealed segments.

    ``segments[0]`` is the base (the last compaction's output, possibly
    empty); later entries are add batches sealed since. Searches capture
    one ``_Generation`` reference and are immune to concurrent mutations.
    """

    number: int
    segments: tuple[Segment, ...]

    @property
    def live_count(self) -> int:
        return sum(segment.n_live for segment in self.segments)

    @property
    def dead_count(self) -> int:
        return sum(segment.n_dead for segment in self.segments)


class MutableIndex:
    """A quantized index that accepts online ``add``/``remove``/``compact``.

    Parameters
    ----------
    codebooks:
        ``(M, K, d)`` codeword tables all segments encode against.
    engine_kwargs:
        When given, a :class:`~repro.retrieval.engine.QueryEngine` with
        these kwargs is kept over the base segment and rebuilt at every
        compaction (pass ``ivf=<cells>`` for a coarse IVF layer whose cell
        blocks are re-balanced with each compacted base). Freshly added
        segments are always scanned exactly in-process; the engine
        accelerates the (large) base.
    auto_compact_segments:
        Compact automatically when the generation exceeds this many
        segments (``None`` disables; ``compact()`` stays available).
    auto_compact_dead_fraction:
        Compact automatically when tombstones exceed this fraction of
        stored rows (``None`` disables).
    drift_threshold:
        Flag a DSQ refresh when an add batch's mean quantization error
        exceeds ``threshold × baseline``.
    labels_required:
        Set when constructing from a labelled index so every add batch
        must carry labels (keeps :meth:`rebuild` label-complete).
    """

    def __init__(
        self,
        codebooks: np.ndarray,
        *,
        engine_kwargs: dict | None = None,
        auto_compact_segments: int | None = None,
        auto_compact_dead_fraction: float | None = None,
        drift_threshold: float = 2.0,
        labels_required: bool = False,
    ) -> None:
        self.codebooks = np.asarray(codebooks, dtype=np.float64)
        if self.codebooks.ndim != 3:
            raise ValueError("codebooks must be (M, K, d)")
        if auto_compact_segments is not None and auto_compact_segments < 1:
            raise ValueError("auto_compact_segments must be at least 1")
        if auto_compact_dead_fraction is not None and not (
            0.0 < auto_compact_dead_fraction <= 1.0
        ):
            raise ValueError("auto_compact_dead_fraction must lie in (0, 1]")
        if drift_threshold <= 1.0:
            raise ValueError("drift_threshold must exceed 1")
        self._engine_kwargs = dict(engine_kwargs) if engine_kwargs else None
        self.auto_compact_segments = auto_compact_segments
        self.auto_compact_dead_fraction = auto_compact_dead_fraction
        self.drift_threshold = float(drift_threshold)
        self.labels_required = bool(labels_required)

        m = self.codebooks.shape[0]
        empty_base = Segment.seal(
            np.empty((0, m), dtype=np.int64),
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.int64),
            labels=None,
        )
        self._gen = _Generation(number=0, segments=(empty_base,))
        self._lock = threading.Lock()
        # Live id -> (segment position in the generation tuple, row).
        self._locations: dict[int, tuple[int, int]] = {}
        self._next_id = 0
        self._engine = None
        self._engine_base: Segment | None = None
        self._retired_engines: list = []
        self._closed = False

        self._drift_baseline: float | None = None
        self._drift_ratio = float("nan")
        self._refresh_flagged = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_index(
        cls,
        index: QuantizedIndex,
        ids: np.ndarray | None = None,
        **kwargs,
    ) -> "MutableIndex":
        """Adopt an existing immutable index as the base segment.

        ``ids`` names the external id of each index row (defaults to the
        row number). The rows are adopted as-is — codes and norms are
        reused, not re-encoded.
        """
        if ids is None:
            ids = np.arange(len(index), dtype=np.int64)
        kwargs.setdefault("labels_required", index.labels is not None)
        mutable = cls(index.codebooks, **kwargs)
        with mutable._lock:
            base = Segment.seal(
                index.codes, index.db_sq_norms, ids, labels=index.labels
            )
            mutable._install_generation(
                _Generation(number=1, segments=(base,)), rebuild_engine=True
            )
            mutable._locations = {
                int(ext): (0, row) for row, ext in enumerate(base.ids)
            }
            mutable._next_id = int(base.ids.max()) + 1 if len(base) else 0
        return mutable

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._gen.live_count

    @property
    def n_db(self) -> int:
        """Live (searchable) rows — the engine-protocol database size."""
        return self._gen.live_count

    @property
    def dim(self) -> int:
        return self.codebooks.shape[2]

    @property
    def num_codebooks(self) -> int:
        return self.codebooks.shape[0]

    @property
    def num_codewords(self) -> int:
        return self.codebooks.shape[1]

    @property
    def id_bound(self) -> int:
        """Exclusive upper bound on any id a search can return."""
        return self._next_id

    @property
    def is_mutable(self) -> bool:
        """Engine-protocol marker: result ids are external, counts move."""
        return True

    @property
    def generation(self) -> int:
        return self._gen.number

    @property
    def num_segments(self) -> int:
        return len(self._gen.segments)

    @property
    def tombstone_count(self) -> int:
        return self._gen.dead_count

    @property
    def drift_ratio(self) -> float:
        """Latest add batch's quantization error over the baseline."""
        return self._drift_ratio

    @property
    def refresh_recommended(self) -> bool:
        """True once drift has crossed ``drift_threshold`` (latched)."""
        return self._refresh_flagged

    @property
    def ivf(self):
        """The base engine's IVF layer, if one is attached."""
        return getattr(self._engine, "ivf", None)

    def segment_sizes(self) -> tuple[int, ...]:
        return tuple(len(segment) for segment in self._gen.segments)

    def live_ids(self) -> np.ndarray:
        """Sorted external ids of every live row."""
        gen = self._gen
        parts = [segment.ids[~segment.dead] for segment in gen.segments]
        ids = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        return np.sort(ids)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the base engine (and any engines retired by compaction)."""
        if self._closed:
            return
        self._closed = True
        for engine in [self._engine, *self._retired_engines]:
            if engine is not None:
                engine.close()
        self._engine = None
        self._retired_engines = []

    def __enter__(self) -> "MutableIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def apply(self, request: MutationRequest) -> MutationResult:
        """Dispatch one :class:`MutationRequest`."""
        if request.op == "add":
            return self.add(request.vectors, ids=request.ids, labels=request.labels)
        if request.op == "remove":
            return self.remove(request.ids)
        return self.compact()

    def add(
        self,
        vectors: np.ndarray,
        ids: np.ndarray | None = None,
        labels: np.ndarray | None = None,
    ) -> MutationResult:
        """Encode ``vectors`` with the existing codebooks and seal a segment.

        ``ids`` must not collide with any *live* id (an id freed by
        ``remove`` may be reused immediately — the tombstoned row stays
        dead). Auto-assigned ids continue from the highest ever assigned.
        """
        start = time.perf_counter()
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or (vectors.size and vectors.shape[1] != self.dim):
            raise ValueError(
                f"vectors must be (n, {self.dim}), got shape {vectors.shape}"
            )
        if self.labels_required and labels is None and len(vectors):
            raise ValueError("this index carries labels; add batches must too")
        if labels is not None and len(labels) != len(vectors):
            raise ValueError("labels and vectors disagree on batch size")
        with self._lock:
            self._check_open()
            n = len(vectors)
            if ids is None:
                ids = np.arange(self._next_id, self._next_id + n, dtype=np.int64)
            else:
                ids = np.asarray(ids, dtype=np.int64)
                if ids.shape != (n,):
                    raise ValueError("ids and vectors disagree on batch size")
                if n and len(np.unique(ids)) != n:
                    raise ValueError("add batch contains duplicate ids")
                if ids.size and ids.min() < 0:
                    raise ValueError("ids must be non-negative")
                clashes = [int(i) for i in ids if int(i) in self._locations]
                if clashes:
                    raise ValueError(
                        f"ids already live in the index: {clashes[:5]}"
                    )
            if n == 0:
                # Nothing to seal: an empty segment would only slow scans.
                return self._result("add", 0, 0, start)
            codes = encode_nearest(vectors, self.codebooks, residual=True)
            reconstructions = reconstruct(codes, self.codebooks)
            norms = (reconstructions**2).sum(axis=1)
            self._update_drift(vectors, reconstructions)
            segment = Segment.seal(codes, norms, ids, labels=labels)
            gen = self._gen
            position = len(gen.segments)
            self._install_generation(
                replace(
                    gen,
                    number=gen.number + 1,
                    segments=gen.segments + (segment,),
                ),
                rebuild_engine=False,
            )
            for row, ext in enumerate(segment.ids):
                self._locations[int(ext)] = (position, row)
            self._next_id = max(self._next_id, int(ids.max()) + 1)
            obs = get_obs()
            if obs.enabled:
                obs.registry.counter(metric_names.MUTABLE_ADDS_TOTAL).inc(n)
                obs.registry.histogram(metric_names.MUTABLE_ADD_TIME).observe(
                    time.perf_counter() - start
                )
            result = self._result("add", n, 0, start)
        self._maybe_auto_compact()
        return result

    def remove(self, ids: np.ndarray) -> MutationResult:
        """Tombstone live rows; storage is reclaimed by ``compact()``."""
        start = time.perf_counter()
        ids = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        with self._lock:
            self._check_open()
            missing = [int(i) for i in ids if int(i) not in self._locations]
            if missing:
                raise ValueError(
                    f"ids are not live in the index: {missing[:5]}"
                )
            by_segment: dict[int, list[int]] = {}
            for ext in ids:
                position, row = self._locations[int(ext)]
                by_segment.setdefault(position, []).append(row)
            gen = self._gen
            segments = list(gen.segments)
            for position, rows in by_segment.items():
                segments[position] = segments[position].with_dead(
                    np.asarray(rows, dtype=np.int64)
                )
            self._install_generation(
                replace(gen, number=gen.number + 1, segments=tuple(segments)),
                rebuild_engine=False,
            )
            for ext in ids:
                del self._locations[int(ext)]
            obs = get_obs()
            if obs.enabled:
                obs.registry.counter(metric_names.MUTABLE_REMOVES_TOTAL).inc(
                    len(ids)
                )
            result = self._result("remove", 0, len(ids), start)
        self._maybe_auto_compact()
        return result

    def compact(self) -> MutationResult:
        """Merge live rows into one base segment and swap generations.

        Live rows from every segment are gathered in ascending-id order
        (the layout :meth:`rebuild` produces), tombstones are dropped, and
        the attached engine — including any IVF cell layout — is rebuilt
        over the new base *before* the atomic generation swap, so searches
        only ever see a complete generation.
        """
        start = time.perf_counter()
        with self._lock:
            self._check_open()
            gen = self._gen
            dropped = gen.dead_count
            merged = self._merged_live_segment(gen)
            self._install_generation(
                _Generation(number=gen.number + 1, segments=(merged,)),
                rebuild_engine=True,
            )
            self._locations = {
                int(ext): (0, row) for row, ext in enumerate(merged.ids)
            }
            obs = get_obs()
            if obs.enabled:
                obs.registry.counter(metric_names.MUTABLE_COMPACTIONS_TOTAL).inc()
                obs.registry.histogram(metric_names.MUTABLE_COMPACT_TIME).observe(
                    time.perf_counter() - start
                )
            return self._result("compact", 0, dropped, start)

    def rebuild(self) -> tuple[QuantizedIndex, np.ndarray]:
        """The from-scratch equivalent: ``(index, ids)`` over live rows.

        Rows come out in ascending external-id order; codes are reused
        (re-encoding would produce the same ones — the encoder is
        deterministic). This is what the parity contract compares against
        and what compaction installs as the new base.
        """
        merged = self._merged_live_segment(self._gen)
        return (
            QuantizedIndex(
                codebooks=self.codebooks,
                codes=merged.codes,
                db_sq_norms=merged.norms,
                labels=merged.labels,
            ),
            merged.ids,
        )

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self,
        queries: "np.ndarray | SearchRequest",
        k: int | None = None,
    ) -> "np.ndarray | SearchResult":
        """Tie-stable top-k over live rows, as external ids.

        Takes a :class:`SearchRequest` (returning a full
        :class:`SearchResult`) or a raw query array with ``k`` (returning
        bare ids) — the same convention as every other search surface.
        """
        if isinstance(queries, SearchRequest):
            if k is not None:
                raise TypeError(
                    "pass search parameters inside the SearchRequest, not "
                    "alongside it"
                )
            return self.serve(queries)
        indices, _ = self.search_with_distances(queries, k=k)
        return indices

    def serve(self, request: SearchRequest) -> SearchResult:
        if request.engine is not None:
            raise ValueError(
                "MutableIndex owns its engine; requests cannot carry an "
                "engine hint"
            )
        if request.encoder is not None:
            raise ValueError(
                "MutableIndex scans embeddings; encoder hints are served "
                "by the serving daemon (repro.serving)"
            )
        start = time.perf_counter()
        indices, distances = self.search_with_distances(
            request.queries,
            k=request.k,
            rerank=request.rerank,
            nprobe=request.nprobe,
        )
        return SearchResult(
            indices=indices,
            distances=distances,
            k=request.k,
            source="mutable",
            elapsed_s=time.perf_counter() - start,
        )

    def search_with_distances(
        self,
        queries: np.ndarray,
        k: int | None = None,
        *,
        rerank: bool | None = None,
        nprobe: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-k ``(external ids, squared distances)`` over live rows.

        Bit-identical to searching the :meth:`rebuild` index (which maps
        positions to the same external ids) as long as the base path is
        exact — i.e. unless ``nprobe`` prunes the base through an attached
        IVF layer. ``k`` is capped at the live count; tombstoned rows can
        never appear.
        """
        gen = self._gen
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or (queries.size and queries.shape[1] != self.dim):
            raise ValueError(
                f"queries must be (n, {self.dim}), got shape {queries.shape}"
            )
        engine = self._engine
        engine_base = self._engine_base
        if nprobe is not None and getattr(engine, "ivf", None) is None:
            raise ValueError(
                "nprobe requires an IVF layer (construct the MutableIndex "
                "with engine_kwargs={'ivf': ...})"
            )
        n_q = len(queries)
        live = gen.live_count
        k_eff = live if k is None else min(k, live)
        if n_q == 0 or k_eff == 0:
            return (np.empty((n_q, k_eff), dtype=np.int64),
                    np.empty((n_q, k_eff), dtype=np.float64))

        id_blocks: list[np.ndarray] = []
        dist_blocks: list[np.ndarray] = []
        for segment in gen.segments:
            if len(segment) == 0 or segment.n_live == 0:
                continue
            if engine is not None and segment is engine_base:
                # The engine cannot mask tombstones, so over-fetch by the
                # base's dead count: among the top (k_eff + n_dead) rows at
                # least k_eff are live (or every live base row is included).
                base_k = min(len(segment), k_eff + segment.n_dead)
                hints: dict = {}
                if nprobe is not None:
                    hints["nprobe"] = nprobe
                if rerank is not None:
                    hints["rerank"] = rerank
                rows, dists = engine.search_with_distances(
                    queries, k=base_k, **hints
                )
                dists = np.where(segment.dead[rows], np.inf, dists)
                id_blocks.append(segment.ids[rows])
                dist_blocks.append(dists)
                continue
            distances = adc_distances(
                queries,
                segment.codes,
                self.codebooks,
                db_sq_norms=segment.scan_norms,
            )
            local, values = topk_tie_stable(distances, min(k_eff, len(segment)))
            id_blocks.append(segment.ids[local])
            dist_blocks.append(values)

        all_ids = np.concatenate(id_blocks, axis=1)
        all_dists = np.concatenate(dist_blocks, axis=1)
        order = np.lexsort((all_ids, all_dists), axis=-1)[:, :k_eff]
        rows = np.arange(n_q)[:, None]
        return (
            all_ids[rows, order],
            np.asarray(all_dists[rows, order], dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("mutable index is closed")

    def _result(
        self, op: str, added: int, removed: int, start: float
    ) -> MutationResult:
        gen = self._gen
        obs = get_obs()
        if obs.enabled:
            obs.registry.gauge(metric_names.MUTABLE_SEGMENTS_LIVE).set(
                float(len(gen.segments))
            )
            obs.registry.gauge(metric_names.MUTABLE_TOMBSTONES_LIVE).set(
                float(gen.dead_count)
            )
        return MutationResult(
            op=op,
            added=added,
            removed=removed,
            live=gen.live_count,
            tombstones=gen.dead_count,
            segments=len(gen.segments),
            segment_sizes=tuple(len(segment) for segment in gen.segments),
            generation=gen.number,
            elapsed_s=time.perf_counter() - start,
            drift_ratio=self._drift_ratio,
        )

    def _merged_live_segment(self, gen: _Generation) -> Segment:
        codes = np.concatenate([s.codes[~s.dead] for s in gen.segments])
        norms = np.concatenate([s.norms[~s.dead] for s in gen.segments])
        ids = np.concatenate([s.ids[~s.dead] for s in gen.segments])
        labels = None
        if all(
            s.labels is not None for s in gen.segments if len(s)
        ) and any(len(s) for s in gen.segments):
            labels = np.concatenate(
                [s.labels[~s.dead] for s in gen.segments if len(s)]
            )
        return Segment.seal(codes, norms, ids, labels=labels)

    def _install_generation(
        self, gen: _Generation, *, rebuild_engine: bool
    ) -> None:
        """Publish ``gen``; optionally rebuild the engine over its base.

        The engine is built *before* the swap, so a search never observes
        a generation whose base has no serving layout. The previous engine
        is retired, not closed — searches that captured the old generation
        may still be scanning through it; retired engines are released by
        :meth:`close` (or trimmed at the next compaction, keeping one
        generation of grace).
        """
        if self._engine_kwargs is not None and rebuild_engine:
            from repro.retrieval.engine import QueryEngine

            base = gen.segments[0]
            new_engine = None
            if len(base):
                new_engine = QueryEngine(
                    QuantizedIndex(
                        codebooks=self.codebooks,
                        codes=base.codes,
                        db_sq_norms=base.norms,
                        labels=base.labels,
                    ),
                    **self._engine_kwargs,
                )
            if self._engine is not None:
                self._retired_engines.append(self._engine)
            # Keep one retired engine for in-flight searches; close older.
            while len(self._retired_engines) > 1:
                self._retired_engines.pop(0).close()
            self._engine = new_engine
            self._engine_base = base if new_engine is not None else None
        self._gen = gen

    def _update_drift(
        self, vectors: np.ndarray, reconstructions: np.ndarray
    ) -> None:
        error = float(((vectors - reconstructions) ** 2).sum(axis=1).mean())
        if self._drift_baseline is None:
            self._drift_baseline = max(error, 1e-12)
        ratio = error / self._drift_baseline
        previous = self._drift_ratio
        self._drift_ratio = ratio
        obs = get_obs()
        if obs.enabled:
            obs.registry.gauge(metric_names.MUTABLE_DRIFT_RATIO).set(ratio)
        crossed = ratio > self.drift_threshold and not (
            np.isfinite(previous) and previous > self.drift_threshold
        )
        if crossed:
            self._refresh_flagged = True
            if obs.enabled:
                obs.registry.counter(metric_names.MUTABLE_REFRESH_FLAGGED).inc()

    def set_drift_baseline(self, vectors: np.ndarray) -> float:
        """Pin the drift baseline to ``vectors``' mean quantization error."""
        vectors = np.asarray(vectors, dtype=np.float64)
        codes = encode_nearest(vectors, self.codebooks, residual=True)
        reconstructions = reconstruct(codes, self.codebooks)
        error = float(((vectors - reconstructions) ** 2).sum(axis=1).mean())
        self._drift_baseline = max(error, 1e-12)
        return self._drift_baseline

    def _maybe_auto_compact(self) -> None:
        gen = self._gen
        if (
            self.auto_compact_segments is not None
            and len(gen.segments) > self.auto_compact_segments
        ):
            self.compact()
            return
        if self.auto_compact_dead_fraction is not None:
            stored = sum(len(segment) for segment in gen.segments)
            if stored and gen.dead_count / stored > self.auto_compact_dead_fraction:
                self.compact()
