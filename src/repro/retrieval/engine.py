"""Sharded, multi-worker ADC query engine: the serving path of §IV at speed.

:func:`repro.retrieval.adc.adc_distances` is the *reference* scan — float64,
one process, and a full ``(n_q, n_db)`` temporary per codebook. This module
is the deployable version of the same Eqn. 24 arithmetic:

- :class:`ShardedIndex` re-lays a :class:`~repro.retrieval.index.QuantizedIndex`
  for scanning: codes transposed to ``(M, n_db)`` and stored in the narrowest
  unsigned dtype ``K`` permits (uint8 for K ≤ 256, uint16 for K ≤ 65 536),
  norms kept in both the scan dtype and float64, and the rows split into
  contiguous shards.
- :class:`QueryEngine` builds one float32 lookup table per query batch, scans
  each shard with a blocked gather-accumulate kernel, reduces every shard to
  tie-stable top-k candidates, and merges candidates across shards with a
  tie-stable reduction (distance first, global index second — exactly the
  order a full stable argsort of the serial distance matrix produces).
- Shards can be scanned by a ``multiprocessing`` pool whose workers attach to
  shared-memory code/norm buffers, so the database is materialised once per
  machine, not once per worker. The pool engages only when it can pay:
  ``min(workers, cpu_count, num_shards) > 1`` and the batch clears
  ``min_parallel_codes`` of scan work (``parallel="force"`` overrides, which
  is what the smoke test uses; ``parallel="never"`` pins in-process).

Exactness. With ``dtype=np.float64`` the kernel reproduces the reference
scan's summation order, so distances and rankings are *identical* to the
serial path. The default ``dtype=np.float32`` scans in float32 for
throughput, then (``rerank=True``) re-scores the merged candidate pool —
each shard contributes ``k + rerank_pad`` candidates — against the float64
tables, which restores serial-exact rankings unless float32 error exceeds
the true distance gap for ``rerank_pad`` items at once (never observed;
property-tested across seeds). With ``rerank=False`` rankings follow raw
float32 distances: within float32 tolerance of serial, top-k sets identical
on the benchmark profiles.

Observability: the engine feeds the same ``adc.lut.build_time_s`` /
``adc.scan.time_s`` / ``adc.scan.codes_per_s`` instruments as the serial
scan (so ``repro bench`` reads speedups off one metric), plus the
``engine.*`` family catalogued in :mod:`repro.obs.names`.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from multiprocessing import get_context
from multiprocessing import shared_memory

import numpy as np

from repro.obs import get_obs
from repro.obs import names as metric_names
from repro.retrieval.index import QuantizedIndex
from repro.retrieval.lut_cache import DEFAULT_CAPACITY as LUT_CACHE_CAPACITY
from repro.retrieval.lut_cache import LUTCache
from repro.retrieval.search import (
    SearchRequest,
    SearchResult,
    topk_tie_stable,
    warn_legacy_search_kwargs,
)

__all__ = [
    "QueryEngine",
    "ShardedIndex",
    "compact_code_dtype",
    "merge_topk",
    "shard_bounds",
    "topk_tie_stable",
]

#: Default scan work (``n_q · n_db · M`` lookups) below which ``"auto"``
#: dispatch keeps the batch in-process — pool IPC costs milliseconds, and a
#: batch this small scans in less.
MIN_PARALLEL_CODES = 2_000_000

#: Extra per-shard candidates carried into the float64 rerank.
RERANK_PAD = 8

_BLOCK_ROWS = 8192


def compact_code_dtype(num_codewords: int) -> np.dtype:
    """Narrowest unsigned dtype that can hold codeword ids below ``K``."""
    if num_codewords <= 0:
        raise ValueError("num_codewords must be positive")
    if num_codewords <= 2**8:
        return np.dtype(np.uint8)
    if num_codewords <= 2**16:
        return np.dtype(np.uint16)
    if num_codewords <= 2**32:
        return np.dtype(np.uint32)
    return np.dtype(np.uint64)


def shard_bounds(n_items: int, num_shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` row ranges splitting ``n_items`` evenly.

    Sizes differ by at most one row; empty shards are never produced (the
    shard count is clamped to ``n_items`` when the database is smaller).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    if n_items == 0:
        return [(0, 0)]
    num_shards = min(num_shards, n_items)
    edges = np.linspace(0, n_items, num_shards + 1).astype(np.int64)
    return [(int(edges[i]), int(edges[i + 1])) for i in range(num_shards)]




def merge_topk(
    shard_distances: list[np.ndarray],
    shard_indices: list[np.ndarray],
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Reduce per-shard candidates to the global tie-stable top-k.

    Shard results carry *global* row ids, so ties across shards resolve by
    global index exactly as a stable sort of the unsharded distance matrix
    would. Returns ``(indices, values)``.
    """
    dists = np.concatenate(shard_distances, axis=1)
    idxs = np.concatenate(shard_indices, axis=1)
    k = max(0, min(k, dists.shape[1]))
    order = np.lexsort((idxs, dists), axis=-1)[:, :k]
    rows = np.arange(dists.shape[0])[:, None]
    return idxs[rows, order], dists[rows, order]


def _scan_block(lut, codes_t, lo, hi, block_rows):
    """``Σ_j lut[:, j, codes[j]]`` over rows ``[lo, hi)``, blocked.

    ``lut`` is ``(n_q, M, K)``; the gather runs one codebook at a time on at
    most ``block_rows`` columns so temporaries stay cache-sized. Summation
    starts from the first gathered table (``0 + x == x`` in IEEE), matching
    the reference scan's left-to-right accumulation bit for bit in float64.
    """
    n_q, m, _ = lut.shape
    width = hi - lo
    out = np.empty((n_q, width), dtype=lut.dtype)
    for start in range(lo, hi, block_rows):
        end = min(start + block_rows, hi)
        block = out[:, start - lo : end - lo]
        np.take(lut[:, 0, :], codes_t[0, start:end], axis=1, out=block)
        for j in range(1, m):
            block += lut[:, j, :].take(codes_t[j, start:end], axis=1)
    return out


def _scan_shard(lut, q_sq, codes_t, norms, lo, hi, k, block_rows):
    """Distances + tie-stable top-k for one shard; returns global indices.

    Timings come back split: ``scan_seconds`` covers the table gather and
    distance assembly (the work serial ``adc.scan.time_s`` measures) and
    ``shard_seconds`` adds the per-shard top-k selection on top.
    """
    start = time.perf_counter()
    cross = _scan_block(lut, codes_t, lo, hi, block_rows)
    d = q_sq[:, None] + norms[lo:hi][None, :] - 2.0 * cross
    np.maximum(d, 0.0, out=d)
    scan_seconds = time.perf_counter() - start
    local, vals = topk_tie_stable(d, k)
    return vals, local + lo, scan_seconds, time.perf_counter() - start


# ----------------------------------------------------------------------
# Worker-side state: arrays attached from shared memory once per worker.
# ----------------------------------------------------------------------
_WORKER: dict = {}


def _attach(name, shape, dtype):
    shm = shared_memory.SharedMemory(name=name)
    return shm, np.ndarray(shape, dtype=dtype, buffer=shm.buf)


def _init_worker(codes_name, codes_shape, codes_dtype, norms_name, norms_dtype):
    codes_shm, codes_t = _attach(codes_name, codes_shape, codes_dtype)
    norms_shm, norms = _attach(norms_name, (codes_shape[1],), norms_dtype)
    _WORKER["codes_t"] = codes_t
    _WORKER["norms"] = norms
    _WORKER["shms"] = (codes_shm, norms_shm)  # keep buffers alive


def _pool_scan_shard(args):
    lut, q_sq, lo, hi, k, block_rows = args
    return _scan_shard(
        lut, q_sq, _WORKER["codes_t"], _WORKER["norms"], lo, hi, k, block_rows
    )


class ShardedIndex:
    """A :class:`QuantizedIndex` re-laid for sharded scanning.

    Codes are transposed to ``(M, n_db)`` (each codebook's column becomes a
    contiguous row — the scan gathers one codebook at a time) and narrowed to
    :func:`compact_code_dtype`; norms are kept in the scan dtype and, for
    the exact rerank, float64. ``bounds`` are the contiguous row shards.
    """

    def __init__(
        self,
        index: QuantizedIndex,
        num_shards: int,
        scan_dtype: np.dtype = np.float32,
    ) -> None:
        scan_dtype = np.dtype(scan_dtype)
        if scan_dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError("scan_dtype must be float32 or float64")
        self.num_codebooks = index.num_codebooks
        self.num_codewords = index.num_codewords
        self.dim = index.dim
        self.scan_dtype = scan_dtype
        self.code_dtype = compact_code_dtype(index.num_codewords)
        self.codes_t = np.ascontiguousarray(index.codes.T.astype(self.code_dtype))
        self.norms64 = np.ascontiguousarray(index.db_sq_norms, dtype=np.float64)
        self.norms = self.norms64.astype(scan_dtype)
        self.codebooks64 = np.ascontiguousarray(index.codebooks, dtype=np.float64)
        self.bounds = shard_bounds(self.codes_t.shape[1], num_shards)

    def __len__(self) -> int:
        return self.codes_t.shape[1]

    @property
    def num_shards(self) -> int:
        return len(self.bounds)

    @property
    def nbytes(self) -> int:
        """Scan-side footprint: compact codes plus one norm per item."""
        return self.codes_t.nbytes + self.norms.nbytes

    def matches(self, index: QuantizedIndex) -> bool:
        """Cheap identity check: same geometry as ``index``."""
        return (
            len(self) == len(index)
            and self.num_codebooks == index.num_codebooks
            and self.num_codewords == index.num_codewords
            and self.dim == index.dim
        )


class QueryEngine:
    """Serve ADC top-k queries over a sharded index, optionally in parallel.

    Parameters
    ----------
    index:
        The :class:`QuantizedIndex` to serve (or a prebuilt
        :class:`ShardedIndex`).
    workers:
        Worker processes to scan shards with. The *effective* pool size is
        ``min(workers, cpu_count, num_shards)``; 1 means in-process.
    num_shards:
        Row shards. Defaults to ``2 × max(workers, 1)`` so a pool always has
        spare shards to balance with.
    dtype:
        Scan dtype. float64 reproduces the serial reference scan exactly;
        float32 (default) is the fast path, made serial-exact by ``rerank``.
    rerank:
        After a float32 scan, re-score merged candidates against the float64
        tables so returned rankings match the serial float64 path. Ignored
        for float64 scans (already exact).
    parallel:
        ``"auto"`` (pool only when it can pay), ``"force"``, or ``"never"``.
    min_parallel_codes:
        ``"auto"`` work threshold, in table lookups per batch.
    task_timeout_s:
        Upper bound on one pool dispatch. A crashed or hung worker would
        otherwise block the query forever (``Pool`` does not detect dead
        children); when the bound trips — or the dispatch raises — the pool
        is terminated, the batch is re-served by the in-process serial scan
        (``last_dispatch == "in-process-fallback"``), and the next parallel
        batch rebuilds a fresh pool. ``None`` disables the bound.
    ivf:
        Optional coarse inverted-file layer
        (:mod:`repro.retrieval.ivf`): a prebuilt
        :class:`~repro.retrieval.ivf.IVFIndex` over the same index (share
        one across replicas — the layout is read-only), or an ``int`` cell
        count to train one here. With an IVF layer attached, searches
        probe only the ``nprobe`` nearest cells instead of scanning every
        shard — approximate, with measured recall (``docs/tuning.md``).
        Per-call ``nprobe=0`` bypasses the layer for an exact exhaustive
        answer from the same engine.
    nprobe:
        Default cells probed per query when ``ivf`` is set (falls back to
        the IVF index's own default).
    lut_cache:
        Capacity of the cross-query LUT cache
        (:class:`repro.retrieval.lut_cache.LUTCache`): repeated query
        vectors reuse their cached float64 lookup-table rows instead of
        rebuilding them, bit-identically. ``None``/``0`` disables reuse.

    Use as a context manager, or call :meth:`close` — the pool and its
    shared-memory buffers are released explicitly, not by the GC.
    """

    def __init__(
        self,
        index: QuantizedIndex | ShardedIndex,
        *,
        workers: int = 1,
        num_shards: int | None = None,
        dtype: np.dtype = np.float32,
        rerank: bool = True,
        rerank_pad: int = RERANK_PAD,
        parallel: str = "auto",
        min_parallel_codes: int = MIN_PARALLEL_CODES,
        block_rows: int = _BLOCK_ROWS,
        task_timeout_s: float | None = 30.0,
        ivf=None,
        nprobe: int | None = None,
        lut_cache: int | None = LUT_CACHE_CAPACITY,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if parallel not in ("auto", "force", "never"):
            raise ValueError("parallel must be 'auto', 'force', or 'never'")
        if num_shards is None:
            num_shards = 2 * max(workers, 1)
        if isinstance(index, ShardedIndex):
            self.sharded = index
        else:
            self.sharded = ShardedIndex(index, num_shards, scan_dtype=dtype)
        self.workers = workers
        self.rerank = bool(rerank) and self.sharded.scan_dtype == np.dtype(np.float32)
        self.rerank_pad = int(rerank_pad)
        self.parallel = parallel
        self.min_parallel_codes = int(min_parallel_codes)
        self.block_rows = int(block_rows)
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be positive (or None)")
        self.task_timeout_s = task_timeout_s
        if isinstance(ivf, int):
            from repro.retrieval.ivf import IVFIndex

            if not isinstance(index, QuantizedIndex):
                raise ValueError(
                    "building an IVF layer here needs the QuantizedIndex; "
                    "pass a prebuilt IVFIndex when constructing from a "
                    "ShardedIndex"
                )
            ivf = IVFIndex.build(index, num_cells=ivf, rerank=rerank)
        if ivf is not None and (
            len(ivf) != len(self.sharded)
            or ivf.num_codebooks != self.sharded.num_codebooks
            or ivf.num_codewords != self.sharded.num_codewords
            or ivf.dim != self.sharded.dim
        ):
            raise ValueError("ivf was built over an index with different geometry")
        self.ivf = ivf
        if nprobe is not None and nprobe < 1:
            raise ValueError("nprobe must be at least 1 (0 is per-call only)")
        self.nprobe = nprobe
        self.lut_cache = LUTCache(lut_cache) if lut_cache else None
        # "in-process" | "process-pool" | "in-process-fallback"
        self.last_dispatch: str | None = None
        self._pool = None
        self._shms: list[shared_memory.SharedMemory] = []
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    def close(self) -> None:
        """Terminate the worker pool and free shared-memory buffers."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        for shm in self._shms:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._shms = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.sharded.num_shards

    @property
    def n_db(self) -> int:
        """Database rows this engine serves."""
        return len(self.sharded)

    @property
    def dim(self) -> int:
        return self.sharded.dim

    def effective_workers(self) -> int:
        """Pool size the dispatcher would use: capped by cores and shards."""
        cores = os.cpu_count() or 1
        return max(1, min(self.workers, cores, self.num_shards))

    def matches(self, index: QuantizedIndex) -> bool:
        return self.sharded.matches(index)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _use_pool(self, n_queries: int) -> bool:
        if self._closed:
            raise RuntimeError("engine is closed")
        if self.parallel == "never" or self.num_shards < 2:
            return False
        if self.parallel == "force":
            return self.workers > 1
        if self.effective_workers() < 2:
            return False
        work = n_queries * len(self.sharded) * self.sharded.num_codebooks
        return work >= self.min_parallel_codes

    def _abandon_pool(self) -> None:
        """Terminate a misbehaving pool without touching shared memory.

        The parent's ``codes_t``/``norms`` arrays stay valid (they view the
        shared buffers, which only :meth:`close` unlinks), so the in-process
        fallback scan and any later pool rebuild reuse them as-is.
        """
        if self._pool is None:
            return
        pool, self._pool = self._pool, None
        try:
            pool.terminate()
            pool.join()
        except Exception:  # pragma: no cover - teardown of a wedged pool
            pass

    def _ensure_pool(self):
        if self._pool is not None:
            return self._pool
        sharded = self.sharded
        ctx = get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        if not self._shms:
            codes_shm = shared_memory.SharedMemory(
                create=True, size=sharded.codes_t.nbytes
            )
            norms_shm = shared_memory.SharedMemory(
                create=True, size=sharded.norms.nbytes
            )
            self._shms = [codes_shm, norms_shm]
            codes_view = np.ndarray(
                sharded.codes_t.shape, sharded.codes_t.dtype, buffer=codes_shm.buf
            )
            norms_view = np.ndarray(
                sharded.norms.shape, sharded.norms.dtype, buffer=norms_shm.buf
            )
            codes_view[:] = sharded.codes_t
            norms_view[:] = sharded.norms
            # Scan from the shared buffers in-parent too, so both paths read
            # the same memory and the per-worker copies never exist.
            sharded.codes_t = codes_view
            sharded.norms = norms_view
        codes_shm, norms_shm = self._shms
        self._pool = ctx.Pool(
            min(self.workers, self.num_shards),
            initializer=_init_worker,
            initargs=(
                codes_shm.name,
                sharded.codes_t.shape,
                sharded.codes_t.dtype,
                norms_shm.name,
                sharded.norms.dtype,
            ),
        )
        return self._pool

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self,
        queries: "np.ndarray | SearchRequest",
        k: int | None = None,
        *,
        rerank: bool | None = None,
        nprobe: int | None = None,
    ) -> "np.ndarray | SearchResult":
        """Ranked database indices per query, shaped like the serial path.

        The canonical form takes a
        :class:`~repro.retrieval.search.SearchRequest` and returns a
        :class:`~repro.retrieval.search.SearchResult`; the legacy array
        form returns bare indices, with its ``rerank=``/``nprobe=`` kwargs
        deprecated in favour of request hints (they still work, emitting
        ``DeprecationWarning``).

        ``k=None`` returns the full ranking; otherwise ``(n_q, min(k,
        n_db))``. Rankings are tie-stable on (distance, index) — the order
        the serial float64 scan's stable argsort produces. ``rerank``
        overrides the engine-level setting for this call only: a degraded
        server passes ``rerank=False`` to skip the float64 re-scoring pass
        and serve raw float32 rankings cheaply. With an IVF layer attached
        (``ivf=``), ``nprobe`` overrides the probe width for this call;
        ``nprobe=0`` bypasses the layer and serves the exact exhaustive
        scan. Without an IVF layer any ``nprobe`` raises ``ValueError``.
        """
        if isinstance(queries, SearchRequest):
            if k is not None or rerank is not None or nprobe is not None:
                raise TypeError(
                    "pass search parameters inside the SearchRequest, not "
                    "alongside it"
                )
            return self.serve(queries)
        warn_legacy_search_kwargs(
            "QueryEngine.search", rerank=rerank, nprobe=nprobe
        )
        indices, _ = self.search_with_distances(
            queries, k=k, rerank=rerank, nprobe=nprobe
        )
        return indices

    def serve(self, request: SearchRequest) -> SearchResult:
        """Serve one :class:`SearchRequest` through this engine."""
        if request.engine is not None and request.engine is not self:
            raise ValueError(
                "request carries an engine hint for a different engine"
            )
        if request.encoder is not None:
            raise ValueError(
                "the engine scans embeddings; encoder hints are served by "
                "the serving daemon (repro.serving)"
            )
        start = time.perf_counter()
        indices, distances = self.search_with_distances(
            request.queries,
            k=request.k,
            rerank=request.rerank,
            nprobe=request.nprobe,
        )
        return SearchResult(
            indices=indices,
            distances=distances,
            k=request.k,
            source=self.last_dispatch or "in-process",
            elapsed_s=time.perf_counter() - start,
        )

    def search_with_distances(
        self,
        queries: np.ndarray,
        k: int | None = None,
        *,
        rerank: bool | None = None,
        nprobe: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Like :meth:`search` but also returns the squared distances."""
        if self._closed:
            raise RuntimeError("engine is closed")
        if nprobe is None:
            nprobe = self.nprobe if self.ivf is not None else None
        elif self.ivf is None:
            raise ValueError(
                "nprobe was given but this engine has no IVF layer "
                "(construct it with ivf=...)"
            )
        if self.ivf is not None and nprobe != 0:
            self.last_dispatch = "ivf"
            return self.ivf.search_with_distances(
                queries, k=k, nprobe=nprobe, rerank=rerank
            )
        sharded = self.sharded
        n_db = len(sharded)
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or (queries.size and queries.shape[1] != sharded.dim):
            raise ValueError(
                f"queries must be (n, {sharded.dim}), got shape {queries.shape}"
            )
        n_q = len(queries)
        if k is not None and k < 0:
            raise ValueError("k must be non-negative")
        k_eff = n_db if k is None else min(k, n_db)
        if n_q == 0 or n_db == 0 or k_eff == 0:
            return (np.empty((n_q, k_eff), dtype=np.int64),
                    np.empty((n_q, k_eff), dtype=np.float64))

        obs = get_obs()
        lut_start = time.perf_counter() if obs.enabled else 0.0
        if self.lut_cache is not None:
            lut64 = self.lut_cache.tables(queries, sharded.codebooks64)
        else:
            lut64 = np.einsum("qd,mkd->qmk", queries, sharded.codebooks64)
        q_sq64 = (queries**2).sum(axis=1)
        if sharded.scan_dtype == np.dtype(np.float32):
            lut = np.ascontiguousarray(lut64, dtype=np.float32)
            q_sq = q_sq64.astype(np.float32)
        else:
            lut = np.ascontiguousarray(lut64)
            q_sq = q_sq64
        scan_start = time.perf_counter() if obs.enabled else 0.0

        use_rerank = self.rerank if rerank is None else (
            bool(rerank) and sharded.scan_dtype == np.dtype(np.float32)
        )
        shard_k = min(k_eff + (self.rerank_pad if use_rerank else 0), n_db)
        use_pool = self._use_pool(n_q)
        self.last_dispatch = "process-pool" if use_pool else "in-process"
        # Sharding exists to feed pool workers. When the batch stays
        # in-process, splitting work one process will do serially only adds
        # per-shard top-k and kernel-launch overhead, so the scan coalesces
        # to a single full-range shard (the blocked kernel already bounds
        # peak memory). Results are identical either way: row accumulation
        # is independent of shard boundaries, and the merge is tie-stable.
        bounds = sharded.bounds if use_pool else [(0, n_db)]
        tasks = [
            (lut, q_sq, lo, hi, min(shard_k, hi - lo), self.block_rows)
            for lo, hi in bounds
        ]
        fell_back = False
        if use_pool:
            try:
                pool = self._ensure_pool()
                results = pool.map_async(_pool_scan_shard, tasks).get(
                    timeout=self.task_timeout_s
                )
            except BaseException as exc:
                # A hung worker surfaces as multiprocessing.TimeoutError; a
                # crashed one as a pool-internal error (or the timeout, since
                # Pool never notices dead children on its own). Either way
                # the pool can no longer be trusted: tear it down — the next
                # parallel batch rebuilds it over the same shared buffers —
                # and re-serve this batch with the in-process serial scan.
                self._abandon_pool()
                if not isinstance(exc, Exception):  # pragma: no cover
                    raise  # KeyboardInterrupt and friends propagate
                fell_back = True
                self.last_dispatch = "in-process-fallback"
                tasks = [(lut, q_sq, 0, n_db, min(shard_k, n_db),
                          self.block_rows)]
        if not use_pool or fell_back:
            results = [
                _scan_shard(lut, q_sq, sharded.codes_t, sharded.norms, lo, hi,
                            shard_k_i, self.block_rows)
                for (lut, q_sq, lo, hi, shard_k_i, _) in tasks
            ]
        served_by_pool = use_pool and not fell_back
        scan_elapsed = time.perf_counter() - scan_start if obs.enabled else 0.0

        merge_start = time.perf_counter() if obs.enabled else 0.0
        indices, values = merge_topk(
            [r[0] for r in results], [r[1] for r in results], shard_k
        )
        if use_rerank:
            indices, values = self._rerank_exact(
                lut64, q_sq64, indices, k_eff
            )
        else:
            indices, values = indices[:, :k_eff], values[:, :k_eff].astype(np.float64)
        merge_elapsed = time.perf_counter() - merge_start if obs.enabled else 0.0

        if obs.enabled:
            registry = obs.registry
            registry.histogram(metric_names.ADC_LUT_BUILD_TIME).observe(
                scan_start - lut_start
            )
            # Like the serial path, adc.scan.* excludes ranking work: it
            # counts gather + distance assembly only. In-process that is the
            # summed per-shard scan time; under the pool per-shard clocks
            # overlap, so the phase wall (including dispatch) is the honest
            # figure.
            adc_scan_seconds = (
                scan_elapsed if use_pool else sum(r[2] for r in results)
            )  # a fallback batch keeps the phase wall: the stall was real
            registry.histogram(metric_names.ADC_SCAN_TIME).observe(
                adc_scan_seconds
            )
            if adc_scan_seconds > 0:
                registry.histogram(metric_names.ADC_SCAN_CODES_PER_S).observe(
                    n_q * n_db * sharded.num_codebooks / adc_scan_seconds
                )
            shard_hist = registry.histogram(metric_names.ENGINE_SHARD_SCAN_TIME)
            for result in results:
                shard_hist.observe(result[3])
            registry.histogram(metric_names.ENGINE_MERGE_TIME).observe(merge_elapsed)
            registry.counter(metric_names.ENGINE_SHARDS_SCANNED).inc(len(results))
            registry.counter(metric_names.ENGINE_BATCHES_TOTAL).inc()
            if served_by_pool:
                registry.counter(metric_names.ENGINE_PARALLEL_BATCHES).inc()
            if fell_back:
                registry.counter(metric_names.ENGINE_POOL_FALLBACKS).inc()
        return indices, values

    def _rerank_exact(self, lut64, q_sq64, candidates, k):
        """Re-score candidate ids in float64 and take the tie-stable top-k.

        Cost is ``O(n_q · |candidates| · M)`` — negligible next to the scan —
        and restores the serial float64 ranking among the candidates.
        """
        sharded = self.sharded
        rows = np.arange(len(candidates))[:, None]
        cross = lut64[rows, 0, sharded.codes_t[0][candidates]]
        for j in range(1, sharded.num_codebooks):
            cross = cross + lut64[rows, j, sharded.codes_t[j][candidates]]
        d = q_sq64[:, None] + sharded.norms64[candidates] - 2.0 * cross
        np.maximum(d, 0.0, out=d)
        # Tie-stable over *global* ids: order candidates by (distance, id).
        order = np.lexsort((candidates, d), axis=-1)[:, :k]
        return candidates[rows, order], d[rows, order]
