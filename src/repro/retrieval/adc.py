"""Asymmetric distance computation (ADC) over additive quantization codes.

Implements the inference path of §IV: a database item is stored as ``M``
codeword ids plus the scalar ``‖Σ_j o^j‖²``; a query's distance to it is

``‖q − o‖² = ‖q‖² + ‖Σ_j o^j‖² − 2 Σ_j ⟨q, o^j⟩``        (Eqn. 24)

so per query we precompute one ``M × K`` inner-product lookup table against
the codebooks (``O(d·M·K)`` work) and then score each database item with
``M`` table lookups — never touching the original ``d``-dimensional
vectors.

The two stages are observable separately (:mod:`repro.obs`): with
observability enabled, :func:`adc_distances` emits the lookup-table build
time (``adc.lut.build_time_s``), the table-scan time (``adc.scan.time_s``),
and the realised scan throughput in code lookups per second
(``adc.scan.codes_per_s``) — the quantities §IV's cost model predicts and
the benchmark harness (``repro bench``) reports.
"""

from __future__ import annotations

import time

import numpy as np

from repro.obs import get_obs
from repro.obs import names as metric_names


def validate_codes(codes: np.ndarray, num_codebooks: int, num_codewords: int) -> np.ndarray:
    """Check code array shape/dtype/range and return it as int64.

    Float arrays are accepted only when every value sits exactly on the
    integer lattice (e.g. a float64 array of whole numbers out of a generic
    pipeline); fractional or non-finite values would previously be floored
    silently by the cast, corrupting the codes.
    """
    codes = np.asarray(codes)
    if codes.ndim != 2 or codes.shape[1] != num_codebooks:
        raise ValueError(
            f"codes must be (n, {num_codebooks}), got shape {codes.shape}"
        )
    if not (np.issubdtype(codes.dtype, np.integer) or codes.dtype == np.bool_):
        if not np.issubdtype(codes.dtype, np.floating):
            raise ValueError(
                f"codes must be an integer array, got dtype {codes.dtype}"
            )
        if codes.size and not np.all(np.mod(codes, 1) == 0):
            raise ValueError(
                "float codes contain values off the integer lattice; "
                "refusing to floor them into valid-looking codeword ids"
            )
    if codes.size and (codes.min() < 0 or codes.max() >= num_codewords):
        raise ValueError("code ids out of codebook range")
    return codes.astype(np.int64)


def reconstruct(codes: np.ndarray, codebooks: np.ndarray) -> np.ndarray:
    """Additive reconstruction ``o_i = Σ_j C_j[b_i[j]]``.

    Parameters
    ----------
    codes:
        ``(n, M)`` codeword ids.
    codebooks:
        ``(M, K, d)`` stacked codebooks.
    """
    codebooks = np.asarray(codebooks, dtype=np.float64)
    m, k, _ = codebooks.shape
    codes = validate_codes(codes, m, k)
    # Gather each codebook's selected rows then sum over the M axis.
    gathered = codebooks[np.arange(m)[None, :], codes]  # (n, M, d)
    return gathered.sum(axis=1)


def build_lookup_tables(queries: np.ndarray, codebooks: np.ndarray) -> np.ndarray:
    """Inner products ``⟨q, C_j[k]⟩`` for every query/codebook/codeword.

    Returns ``(n_q, M, K)``; this is the ``O(d·M·K)`` precomputation per
    query batch in §IV-B.
    """
    queries = np.asarray(queries, dtype=np.float64)
    codebooks = np.asarray(codebooks, dtype=np.float64)
    return np.einsum("qd,mkd->qmk", queries, codebooks)


def adc_distances(
    queries: np.ndarray,
    codes: np.ndarray,
    codebooks: np.ndarray,
    db_sq_norms: np.ndarray | None = None,
) -> np.ndarray:
    """``(n_q, n_db)`` squared distances via lookup tables (Eqn. 24).

    ``db_sq_norms`` are the stored ``‖Σ_j o^j‖²`` values; recomputed from
    the codes when not supplied.
    """
    codebooks = np.asarray(codebooks, dtype=np.float64)
    m, k, _ = codebooks.shape
    codes = validate_codes(codes, m, k)
    if db_sq_norms is None:
        db_sq_norms = (reconstruct(codes, codebooks) ** 2).sum(axis=1)
    queries = np.asarray(queries, dtype=np.float64)
    obs = get_obs()
    lut_start = time.perf_counter() if obs.enabled else 0.0
    tables = build_lookup_tables(queries, codebooks)  # (n_q, M, K)
    scan_start = time.perf_counter() if obs.enabled else 0.0
    # Σ_j ⟨q, C_j[b_j]⟩ through fancy indexing: tables[:, j, codes[:, j]].
    cross = np.zeros((len(queries), len(codes)))
    for j in range(m):
        cross += tables[:, j, codes[:, j]]
    q_sq = (queries**2).sum(axis=1, keepdims=True)
    distances = q_sq + db_sq_norms[None, :] - 2.0 * cross
    np.maximum(distances, 0.0, out=distances)
    if obs.enabled:
        scan_elapsed = time.perf_counter() - scan_start
        registry = obs.registry
        registry.histogram(metric_names.ADC_LUT_BUILD_TIME).observe(
            scan_start - lut_start
        )
        registry.histogram(metric_names.ADC_SCAN_TIME).observe(scan_elapsed)
        if scan_elapsed > 0:
            registry.histogram(metric_names.ADC_SCAN_CODES_PER_S).observe(
                len(queries) * len(codes) * m / scan_elapsed
            )
    return distances


def encode_nearest(
    features: np.ndarray, codebooks: np.ndarray, residual: bool = True
) -> np.ndarray:
    """Greedy nearest-codeword encoding of continuous vectors (Fig. 3).

    With ``residual=True`` (the DSQ topology, Eqn. 2) each codebook encodes
    the residual left by the previous pairs; with ``residual=False`` every
    codebook independently encodes the original vector.
    """
    features = np.asarray(features, dtype=np.float64)
    codebooks = np.asarray(codebooks, dtype=np.float64)
    m, k, d = codebooks.shape
    n = len(features)
    codes = np.empty((n, m), dtype=np.int64)
    target = features.copy()
    # Fused formulation: buffers are allocated once and every level runs
    # ``cross·(−2) + ‖c‖²`` in place. Bit-identical to the textbook
    # ``c_sq − 2·target@C.T`` — multiplying by −2.0 is an exact scale/sign
    # flip and IEEE addition is commutative — so argmin ties break the same.
    code_sq = (codebooks * codebooks).sum(axis=2)  # (M, K)
    scores = np.empty((n, k))
    level = np.empty((n, d))
    for j in range(m):
        np.matmul(target, codebooks[j].T, out=scores)
        scores *= -2.0
        scores += code_sq[j]
        codes[:, j] = scores.argmin(axis=1)
        if residual and j + 1 < m:
            np.take(codebooks[j], codes[:, j], axis=0, out=level)
            target -= level
    return codes
