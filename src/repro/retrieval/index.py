"""Quantized retrieval index: the deployable artifact of LightLT.

Wraps the storage layout of §IV (codebooks + per-item codeword ids + one
stored norm per item) behind a search API, so examples and benchmarks can
index a database once and serve ranked retrieval with ADC lookups.

Both halves of the serving story are observable (:mod:`repro.obs`):
:meth:`QuantizedIndex.build` emits encode and total build times inside an
``index.build`` span, and :meth:`QuantizedIndex.search` emits a per-query
latency histogram (``query.latency_s``) plus served-query counters — the
numbers ``repro bench`` reports and ``docs/metrics.md`` catalogues.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.obs import get_obs
from repro.obs import names as metric_names
from repro.retrieval.adc import adc_distances, encode_nearest, reconstruct, validate_codes
from repro.retrieval.search import (
    SearchRequest,
    SearchResult,
    rank_by_distance,
    warn_legacy_search_kwargs,
)


@dataclass
class QuantizedIndex:
    """An immutable database of additive-quantization codes.

    Attributes
    ----------
    codebooks:
        ``(M, K, d)`` codeword tables.
    codes:
        ``(n_db, M)`` codeword ids per database item.
    db_sq_norms:
        ``(n_db,)`` stored ``‖Σ_j o^j‖²`` values (Eqn. 24's middle term).
    labels:
        Optional ``(n_db,)`` item labels carried along for evaluation.
    """

    codebooks: np.ndarray
    codes: np.ndarray
    db_sq_norms: np.ndarray
    labels: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.codebooks = np.asarray(self.codebooks, dtype=np.float64)
        if self.codebooks.ndim != 3:
            raise ValueError("codebooks must be (M, K, d)")
        m, k, _ = self.codebooks.shape
        self.codes = validate_codes(self.codes, m, k)
        self.db_sq_norms = np.asarray(self.db_sq_norms, dtype=np.float64)
        if len(self.db_sq_norms) != len(self.codes):
            raise ValueError("db_sq_norms and codes disagree on database size")
        if self.labels is not None:
            self.labels = np.asarray(self.labels)
            if len(self.labels) != len(self.codes):
                raise ValueError("labels and codes disagree on database size")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        codebooks: np.ndarray,
        database: np.ndarray,
        labels: np.ndarray | None = None,
        codes: np.ndarray | None = None,
    ) -> "QuantizedIndex":
        """Index a database.

        If ``codes`` are not supplied (e.g. produced by a trained DSQ
        encoder), items are encoded greedily with residual nearest-codeword
        selection — the indexing workflow of Fig. 3.
        """
        obs = get_obs()
        build_start = time.perf_counter() if obs.enabled else 0.0
        encode_elapsed = None
        with obs.span("index.build", items=len(database)):
            codebooks = np.asarray(codebooks, dtype=np.float64)
            if codes is None:
                encode_start = time.perf_counter() if obs.enabled else 0.0
                codes = encode_nearest(database, codebooks, residual=True)
                if obs.enabled:
                    encode_elapsed = time.perf_counter() - encode_start
            reconstructions = reconstruct(codes, codebooks)
            index = cls(
                codebooks=codebooks,
                codes=codes,
                db_sq_norms=(reconstructions**2).sum(axis=1),
                labels=labels,
            )
        if obs.enabled:
            # Only the encode branch feeds the encode histogram: observing a
            # zero for supplied codes would drag its percentiles down.
            if encode_elapsed is not None:
                obs.registry.histogram(metric_names.INDEX_ENCODE_TIME).observe(
                    encode_elapsed
                )
            obs.registry.histogram(metric_names.INDEX_BUILD_TIME).observe(
                time.perf_counter() - build_start
            )
        return index

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.codes)

    @property
    def num_codebooks(self) -> int:
        return self.codebooks.shape[0]

    @property
    def num_codewords(self) -> int:
        return self.codebooks.shape[1]

    @property
    def dim(self) -> int:
        return self.codebooks.shape[2]

    def reconstructions(self) -> np.ndarray:
        """Decode every database item back to continuous space."""
        return reconstruct(self.codes, self.codebooks)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self,
        queries: "np.ndarray | SearchRequest",
        k: int | None = None,
        engine: "object | None" = None,
        nprobe: int | None = None,
    ) -> "np.ndarray | SearchResult":
        """Ranked database indices for each query via ADC lookups.

        The canonical form takes a
        :class:`~repro.retrieval.search.SearchRequest` and returns a
        :class:`~repro.retrieval.search.SearchResult` (indices *and*
        distances). The legacy form — a raw query array plus ``k`` —
        still returns a bare index array; its ``engine=``/``nprobe=``
        kwargs keep working through a shim that emits
        ``DeprecationWarning`` (use ``SearchRequest`` hints instead).

        A request's ``engine`` hint delegates the scan to a
        :class:`repro.retrieval.engine.QueryEngine` built over this index —
        the sharded (optionally multi-worker) fast path — or to an
        :class:`repro.retrieval.ivf.IVFIndex` (the pruned approximate
        path), while keeping this method's metrics contract. The engine
        must have been built from an index with this one's geometry.
        ``nprobe`` requires an engine with an IVF layer; without one it
        raises ``ValueError`` — never a silent exhaustive fallback.

        With observability enabled the call records per-query latency into
        ``query.latency_s`` — the batch's wall time spread evenly over its
        queries, so single-query calls (the serving pattern the benchmark
        harness times) yield exact per-query percentiles.
        """
        if isinstance(queries, SearchRequest):
            if k is not None or engine is not None or nprobe is not None:
                raise TypeError(
                    "pass search parameters inside the SearchRequest, not "
                    "alongside it"
                )
            return self.serve(queries)
        warn_legacy_search_kwargs(
            "QuantizedIndex.search", engine=engine, nprobe=nprobe
        )
        request = SearchRequest(queries, k=k, nprobe=nprobe, engine=engine)
        return self.serve(request).indices

    def serve(self, request: SearchRequest) -> SearchResult:
        """Serve one :class:`SearchRequest` (the core of :meth:`search`)."""
        if request.encoder is not None:
            raise ValueError(
                "QuantizedIndex scans embeddings; encoder hints are served "
                "by the serving daemon (repro.serving)"
            )
        obs = get_obs()
        start = time.perf_counter()
        queries = request.queries
        engine = request.engine
        if engine is not None:
            if not engine.matches(self):
                raise ValueError(
                    "engine was built over an index with different geometry "
                    "than this one"
                )
            hints: dict = {}
            if request.nprobe is not None:
                hints["nprobe"] = request.nprobe
            if request.rerank is not None:
                hints["rerank"] = request.rerank
            indices, distances = engine.search_with_distances(
                queries, k=request.k, **hints
            )
            source = getattr(engine, "last_dispatch", None) or "engine"
        elif request.nprobe is not None:
            raise ValueError(
                "nprobe requires an engine with an IVF layer attached "
                "(pass a QueryEngine built with ivf=..., or an IVFIndex, "
                "as the request's engine hint)"
            )
        else:
            distance_matrix = adc_distances(
                queries, self.codes, self.codebooks, db_sq_norms=self.db_sq_norms
            )
            indices = rank_by_distance(distance_matrix, k=request.k)
            rows = np.arange(len(indices))[:, None]
            distances = distance_matrix[rows, indices]
            source = "serial-adc"
        elapsed = time.perf_counter() - start
        if obs.enabled:
            n_queries = request.n_queries
            registry = obs.registry
            registry.counter(metric_names.QUERY_BATCHES_TOTAL).inc()
            if n_queries:
                registry.counter(metric_names.QUERY_ITEMS_TOTAL).inc(n_queries)
                registry.histogram(metric_names.QUERY_LATENCY).observe_many(
                    elapsed / n_queries, n_queries
                )
        return SearchResult(
            indices=indices,
            distances=np.asarray(distances, dtype=np.float64),
            k=request.k,
            source=source,
            elapsed_s=elapsed,
        )

    def search_labels(
        self,
        queries: "np.ndarray | SearchRequest",
        k: int | None = None,
        engine: "object | None" = None,
        nprobe: int | None = None,
    ) -> np.ndarray:
        """Ranked database *labels*, ready for MAP evaluation."""
        if self.labels is None:
            raise RuntimeError("index was built without labels")
        if isinstance(queries, SearchRequest):
            return self.labels[self.serve(queries).indices]
        return self.labels[self.search(queries, k=k, engine=engine, nprobe=nprobe)]
