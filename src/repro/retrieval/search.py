"""Exhaustive nearest-neighbour search over continuous representations.

This is the uncompressed reference point every quantizer is compared
against: it defines both the accuracy ceiling and the inference-cost
baseline (``O(n_db · d)`` per query, §IV-B). With observability enabled
(:mod:`repro.obs`), :func:`exhaustive_search` times each call
(``search.exhaustive.time_s``) so ADC speedups can be read straight off a
metrics export instead of re-deriving them.
"""

from __future__ import annotations

import time

import numpy as np

from repro.obs import get_obs
from repro.obs import names as metric_names


def squared_distances(queries: np.ndarray, database: np.ndarray) -> np.ndarray:
    """``(n_q, n_db)`` squared Euclidean distance matrix."""
    queries = np.asarray(queries, dtype=np.float64)
    database = np.asarray(database, dtype=np.float64)
    q_sq = (queries**2).sum(axis=1, keepdims=True)
    db_sq = (database**2).sum(axis=1)
    d2 = q_sq + db_sq[None, :] - 2.0 * queries @ database.T
    np.maximum(d2, 0.0, out=d2)
    return d2


def hamming_distances(query_codes: np.ndarray, db_codes: np.ndarray) -> np.ndarray:
    """``(n_q, n_db)`` Hamming distances between ±1 binary codes.

    For codes in {-1, +1}^b, ``hamming = (b - q·x) / 2``; used by every
    binarized-hash baseline.
    """
    query_codes = np.asarray(query_codes, dtype=np.float64)
    db_codes = np.asarray(db_codes, dtype=np.float64)
    bits = query_codes.shape[1]
    return (bits - query_codes @ db_codes.T) / 2.0


def rank_by_distance(distances: np.ndarray, k: int | None = None) -> np.ndarray:
    """Ranked database indices (ascending distance), optionally top-k.

    Uses ``argpartition`` for the top-k case so large databases don't pay a
    full sort per query.
    """
    distances = np.asarray(distances)
    n_db = distances.shape[1]
    if k is None or k >= n_db:
        return np.argsort(distances, axis=1, kind="stable")
    top = np.argpartition(distances, k, axis=1)[:, :k]
    rows = np.arange(distances.shape[0])[:, None]
    order = np.argsort(distances[rows, top], axis=1, kind="stable")
    return top[rows, order]


def exhaustive_search(
    queries: np.ndarray,
    database: np.ndarray,
    k: int | None = None,
    batch_size: int = 1024,
) -> np.ndarray:
    """Ranked nearest-neighbour indices by exact Euclidean distance.

    Processes queries in batches to bound peak memory at
    ``batch_size × n_db`` floats.
    """
    queries = np.asarray(queries, dtype=np.float64)
    obs = get_obs()
    start_time = time.perf_counter() if obs.enabled else 0.0
    results = []
    for start in range(0, len(queries), batch_size):
        block = queries[start : start + batch_size]
        results.append(rank_by_distance(squared_distances(block, database), k=k))
    if obs.enabled:
        obs.registry.histogram(metric_names.SEARCH_EXHAUSTIVE_TIME).observe(
            time.perf_counter() - start_time
        )
    return np.concatenate(results, axis=0) if results else np.empty((0, 0), dtype=np.int64)
