"""Exhaustive nearest-neighbour search over continuous representations.

This is the uncompressed reference point every quantizer is compared
against: it defines both the accuracy ceiling and the inference-cost
baseline (``O(n_db · d)`` per query, §IV-B). With observability enabled
(:mod:`repro.obs`), :func:`exhaustive_search` times each call
(``search.exhaustive.time_s``) so ADC speedups can be read straight off a
metrics export instead of re-deriving them.
"""

from __future__ import annotations

import time

import numpy as np

from repro.obs import get_obs
from repro.obs import names as metric_names


def squared_distances(queries: np.ndarray, database: np.ndarray) -> np.ndarray:
    """``(n_q, n_db)`` squared Euclidean distance matrix."""
    queries = np.asarray(queries, dtype=np.float64)
    database = np.asarray(database, dtype=np.float64)
    q_sq = (queries**2).sum(axis=1, keepdims=True)
    db_sq = (database**2).sum(axis=1)
    d2 = q_sq + db_sq[None, :] - 2.0 * queries @ database.T
    np.maximum(d2, 0.0, out=d2)
    return d2


def hamming_distances(query_codes: np.ndarray, db_codes: np.ndarray) -> np.ndarray:
    """``(n_q, n_db)`` Hamming distances between ±1 binary codes.

    For codes in {-1, +1}^b, ``hamming = (b - q·x) / 2``; used by every
    binarized-hash baseline.
    """
    query_codes = np.asarray(query_codes, dtype=np.float64)
    db_codes = np.asarray(db_codes, dtype=np.float64)
    bits = query_codes.shape[1]
    return (bits - query_codes @ db_codes.T) / 2.0


def topk_tie_stable(distances: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-row indices and values of the ``k`` smallest entries, tie-stable.

    Ordering is lexicographic on ``(distance, column index)`` — the order a
    stable ascending argsort produces — so duplicated distances always
    resolve to the lower index, independent of how the selection was
    partitioned. Returns ``(indices, values)`` of shape ``(n, min(k, w))``.
    """
    distances = np.asarray(distances)
    n, w = distances.shape
    k = max(0, min(k, w))
    rows = np.arange(n)[:, None]
    if k == 0:
        return (np.empty((n, 0), dtype=np.int64),
                np.empty((n, 0), dtype=distances.dtype))
    if k == w:
        order = np.argsort(distances, axis=1, kind="stable")
        return order, distances[rows, order]
    part = np.argpartition(distances, k - 1, axis=1)[:, :k]
    vals = distances[rows, part]
    order = np.lexsort((part, vals), axis=-1)
    part = part[rows, order]
    vals = vals[rows, order]
    # argpartition picks an *arbitrary* subset of entries tied with the k-th
    # value; rows where that tie extends past the selection need the stable
    # choice (lowest indices) restored.
    boundary = vals[:, -1]
    in_row = (distances == boundary[:, None]).sum(axis=1)
    in_sel = (vals == boundary[:, None]).sum(axis=1)
    for r in np.nonzero(in_row > in_sel)[0]:
        full = np.argsort(distances[r], kind="stable")[:k]
        part[r] = full
        vals[r] = distances[r, full]
    return part.astype(np.int64, copy=False), vals


def rank_by_distance(distances: np.ndarray, k: int | None = None) -> np.ndarray:
    """Ranked database indices (ascending distance), optionally top-k.

    Uses ``argpartition`` for the top-k case so large databases don't pay a
    full sort per query, with tie-stable ordering — duplicated distances
    resolve to the lower database index, matching the full stable argsort
    and the sharded engine's merge order.
    """
    distances = np.asarray(distances)
    n_db = distances.shape[1]
    if k is None or k >= n_db:
        return np.argsort(distances, axis=1, kind="stable")
    return topk_tie_stable(distances, k)[0]


def exhaustive_search(
    queries: np.ndarray,
    database: np.ndarray,
    k: int | None = None,
    batch_size: int = 1024,
) -> np.ndarray:
    """Ranked nearest-neighbour indices by exact Euclidean distance.

    Processes queries in batches to bound peak memory at
    ``batch_size × n_db`` floats.
    """
    queries = np.asarray(queries, dtype=np.float64)
    database = np.asarray(database, dtype=np.float64)
    obs = get_obs()
    start_time = time.perf_counter() if obs.enabled else 0.0
    results = []
    for start in range(0, len(queries), batch_size):
        block = queries[start : start + batch_size]
        results.append(rank_by_distance(squared_distances(block, database), k=k))
    if obs.enabled:
        obs.registry.histogram(metric_names.SEARCH_EXHAUSTIVE_TIME).observe(
            time.perf_counter() - start_time
        )
    if results:
        return np.concatenate(results, axis=0)
    # An empty query batch keeps the column convention of the non-empty
    # case — (0, k) when k truncates, (0, n_db) otherwise — so callers can
    # concatenate batches or gather labels without special-casing.
    n_db = len(database)
    width = n_db if k is None or k >= n_db else max(k, 0)
    return np.empty((0, width), dtype=np.int64)
