"""Search primitives and the unified search request/result types.

Two things live here:

1. Exhaustive nearest-neighbour search over continuous representations —
   the uncompressed reference point every quantizer is compared against:
   it defines both the accuracy ceiling and the inference-cost baseline
   (``O(n_db · d)`` per query, §IV-B). With observability enabled
   (:mod:`repro.obs`), :func:`exhaustive_search` times each call
   (``search.exhaustive.time_s``) so ADC speedups can be read straight off
   a metrics export instead of re-deriving them.
2. :class:`SearchRequest` / :class:`SearchResult` — the one request shape
   every search surface accepts (:meth:`QuantizedIndex.search`,
   :meth:`QueryEngine.search`, :meth:`IVFIndex.search`,
   :meth:`MutableIndex.search`, and the serving daemon), replacing the
   per-method kwarg sprawl (``engine=``, ``nprobe=``, ``rerank=``) those
   methods accreted. The legacy kwargs still work through thin shims that
   emit :class:`DeprecationWarning`.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.obs import get_obs
from repro.obs import names as metric_names


@dataclass(frozen=True)
class SearchRequest:
    """One search call, as data: the canonical way to ask for neighbours.

    Every search surface accepts a ``SearchRequest`` as its first argument
    and then returns a :class:`SearchResult`. Hints a given surface cannot
    honour are errors, not silent no-ops: ``nprobe`` without an IVF layer
    raises ``ValueError`` everywhere.

    Attributes
    ----------
    queries:
        ``(n_q, d)`` query batch; a single ``(d,)`` vector is promoted to a
        one-row batch.
    k:
        Neighbours per query; ``None`` asks for the full ranking (refused
        by pruned IVF paths, which cannot produce it).
    nprobe:
        IVF cells probed per query. Only valid when the serving surface has
        an IVF layer attached; ``0`` bypasses the layer for an exact scan.
    rerank:
        Override the engine's float64 rerank setting for this call
        (``None`` keeps the surface's default).
    deadline_s:
        End-to-end budget hint in seconds. Honoured by the serving daemon
        (it replaces the configured request timeout); synchronous in-process
        scans ignore it.
    engine:
        Engine hint for :meth:`QuantizedIndex.search`: a ``QueryEngine`` or
        ``IVFIndex`` built over the same index to delegate the scan to.
    encoder:
        Query-encoder selection for surfaces that accept *raw features*
        instead of embeddings (the serving daemon): ``"full"`` runs the
        trained backbone + DSQ stack, ``"light"`` the distilled
        :class:`~repro.encoding.LightQueryEncoder` fast path. ``None``
        (default) means ``queries`` are already embeddings. Surfaces
        without the named encoder raise ``ValueError`` — a hint is never a
        silent no-op.
    """

    queries: np.ndarray
    k: int | None = None
    nprobe: int | None = None
    rerank: bool | None = None
    deadline_s: float | None = None
    engine: object | None = None
    encoder: str | None = None

    def __post_init__(self) -> None:
        queries = np.asarray(self.queries, dtype=np.float64)
        if queries.ndim == 1:
            queries = queries[None, :]
        if queries.ndim != 2:
            raise ValueError(
                f"queries must be (n_q, d) or (d,), got shape {queries.shape}"
            )
        object.__setattr__(self, "queries", queries)
        if self.k is not None and self.k < 0:
            raise ValueError("k must be non-negative (or None for the full ranking)")
        if self.nprobe is not None and self.nprobe < 0:
            raise ValueError("nprobe must be non-negative")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if self.encoder is not None and self.encoder not in ("full", "light"):
            raise ValueError(
                "encoder must be 'full', 'light', or None (embeddings), "
                f"got {self.encoder!r}"
            )

    @property
    def n_queries(self) -> int:
        return self.queries.shape[0]

    @property
    def dim(self) -> int:
        return self.queries.shape[1]


@dataclass(frozen=True)
class SearchResult:
    """Ranked neighbours for one :class:`SearchRequest`.

    ``indices``/``distances`` are ``(n_q, width)`` with ``width = min(k,
    candidates)``; ``source`` names the path that served the scan (e.g.
    ``"serial-adc"``, ``"in-process"``, ``"process-pool"``, ``"ivf"``,
    ``"mutable"``).
    """

    indices: np.ndarray
    distances: np.ndarray
    k: int | None = None
    source: str = ""
    elapsed_s: float = 0.0
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.indices)

    @property
    def width(self) -> int:
        """Neighbours actually returned per query."""
        return self.indices.shape[1]


def warn_legacy_search_kwargs(method: str, **kwargs) -> None:
    """Emit the deprecation shim warning for non-``None`` legacy kwargs."""
    used = [name for name, value in kwargs.items() if value is not None]
    if used:
        warnings.warn(
            f"{method}({', '.join(f'{name}=' for name in used)}) is "
            "deprecated; pass a repro.retrieval.SearchRequest instead",
            DeprecationWarning,
            stacklevel=3,
        )


def squared_distances(queries: np.ndarray, database: np.ndarray) -> np.ndarray:
    """``(n_q, n_db)`` squared Euclidean distance matrix."""
    queries = np.asarray(queries, dtype=np.float64)
    database = np.asarray(database, dtype=np.float64)
    q_sq = (queries**2).sum(axis=1, keepdims=True)
    db_sq = (database**2).sum(axis=1)
    d2 = q_sq + db_sq[None, :] - 2.0 * queries @ database.T
    np.maximum(d2, 0.0, out=d2)
    return d2


def hamming_distances(query_codes: np.ndarray, db_codes: np.ndarray) -> np.ndarray:
    """``(n_q, n_db)`` Hamming distances between ±1 binary codes.

    For codes in {-1, +1}^b, ``hamming = (b - q·x) / 2``; used by every
    binarized-hash baseline.
    """
    query_codes = np.asarray(query_codes, dtype=np.float64)
    db_codes = np.asarray(db_codes, dtype=np.float64)
    bits = query_codes.shape[1]
    return (bits - query_codes @ db_codes.T) / 2.0


def topk_tie_stable(distances: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-row indices and values of the ``k`` smallest entries, tie-stable.

    Ordering is lexicographic on ``(distance, column index)`` — the order a
    stable ascending argsort produces — so duplicated distances always
    resolve to the lower index, independent of how the selection was
    partitioned. Returns ``(indices, values)`` of shape ``(n, min(k, w))``.
    """
    distances = np.asarray(distances)
    n, w = distances.shape
    k = max(0, min(k, w))
    rows = np.arange(n)[:, None]
    if k == 0:
        return (np.empty((n, 0), dtype=np.int64),
                np.empty((n, 0), dtype=distances.dtype))
    if k == w:
        order = np.argsort(distances, axis=1, kind="stable")
        return order, distances[rows, order]
    part = np.argpartition(distances, k - 1, axis=1)[:, :k]
    vals = distances[rows, part]
    order = np.lexsort((part, vals), axis=-1)
    part = part[rows, order]
    vals = vals[rows, order]
    # argpartition picks an *arbitrary* subset of entries tied with the k-th
    # value; rows where that tie extends past the selection need the stable
    # choice (lowest indices) restored.
    boundary = vals[:, -1]
    in_row = (distances == boundary[:, None]).sum(axis=1)
    in_sel = (vals == boundary[:, None]).sum(axis=1)
    for r in np.nonzero(in_row > in_sel)[0]:
        full = np.argsort(distances[r], kind="stable")[:k]
        part[r] = full
        vals[r] = distances[r, full]
    return part.astype(np.int64, copy=False), vals


def rank_by_distance(distances: np.ndarray, k: int | None = None) -> np.ndarray:
    """Ranked database indices (ascending distance), optionally top-k.

    Uses ``argpartition`` for the top-k case so large databases don't pay a
    full sort per query, with tie-stable ordering — duplicated distances
    resolve to the lower database index, matching the full stable argsort
    and the sharded engine's merge order.
    """
    distances = np.asarray(distances)
    n_db = distances.shape[1]
    if k is None or k >= n_db:
        return np.argsort(distances, axis=1, kind="stable")
    return topk_tie_stable(distances, k)[0]


def exhaustive_search(
    queries: np.ndarray,
    database: np.ndarray,
    k: int | None = None,
    batch_size: int = 1024,
) -> np.ndarray:
    """Ranked nearest-neighbour indices by exact Euclidean distance.

    Processes queries in batches to bound peak memory at
    ``batch_size × n_db`` floats.
    """
    queries = np.asarray(queries, dtype=np.float64)
    database = np.asarray(database, dtype=np.float64)
    obs = get_obs()
    start_time = time.perf_counter() if obs.enabled else 0.0
    results = []
    for start in range(0, len(queries), batch_size):
        block = queries[start : start + batch_size]
        results.append(rank_by_distance(squared_distances(block, database), k=k))
    if obs.enabled:
        obs.registry.histogram(metric_names.SEARCH_EXHAUSTIVE_TIME).observe(
            time.perf_counter() - start_time
        )
    if results:
        return np.concatenate(results, axis=0)
    # An empty query batch keeps the column convention of the non-empty
    # case — (0, k) when k truncates, (0, n_db) otherwise — so callers can
    # concatenate batches or gather labels without special-casing.
    n_db = len(database)
    width = n_db if k is None or k >= n_db else max(k, 0)
    return np.empty((0, width), dtype=np.int64)
