"""Space and inference cost model of §IV, plus measured timings.

§IV-A: storing a quantized database costs ``4·K·M·d`` bytes of codebooks,
``n·M·log2(K)/8`` bytes of codeword ids, and ``4·n`` bytes of stored norms,
versus ``4·n·d`` bytes for raw float32 vectors — a compression ratio of
roughly ``32d / (M·log2 K)`` when ``n ≫ K·M·d``.

§IV-B: ADC needs ``O(d·M·K)`` multiply-adds to build a query's lookup
tables and ``O(n·M)`` adds to score the database, versus ``O(n·d)``
multiply-adds for exhaustive search.

Fig. 7 plots both the theoretical and measured speedup/compression ratios
as the database grows; :func:`efficiency_sweep` reproduces that experiment.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.retrieval.adc import adc_distances, encode_nearest, reconstruct
from repro.retrieval.search import squared_distances

FLOAT_BYTES = 4  # the paper counts float32 storage


@dataclass(frozen=True)
class StorageCost:
    """Byte-level storage accounting for one database."""

    codebook_bytes: float
    code_bytes: float
    norm_bytes: float
    continuous_bytes: float

    @property
    def quantized_bytes(self) -> float:
        return self.codebook_bytes + self.code_bytes + self.norm_bytes

    @property
    def compression_ratio(self) -> float:
        return self.continuous_bytes / self.quantized_bytes


def storage_cost(n_db: int, dim: int, num_codebooks: int, num_codewords: int) -> StorageCost:
    """§IV-A byte accounting: ``4KMd + n·M·log2(K)/8 + 4n`` vs ``4nd``."""
    if min(n_db, dim, num_codebooks, num_codewords) < 1:
        raise ValueError("all size arguments must be positive")
    bits_per_code = math.log2(num_codewords)
    return StorageCost(
        codebook_bytes=FLOAT_BYTES * num_codewords * num_codebooks * dim,
        code_bytes=n_db * num_codebooks * bits_per_code / 8.0,
        norm_bytes=FLOAT_BYTES * n_db,
        continuous_bytes=FLOAT_BYTES * n_db * dim,
    )


def asymptotic_compression_ratio(dim: int, num_codebooks: int, num_codewords: int) -> float:
    """Large-``n`` limit ``4d / (M·log2(K)/8 + 4)`` of the compression ratio."""
    bytes_per_item = num_codebooks * math.log2(num_codewords) / 8.0 + FLOAT_BYTES
    return FLOAT_BYTES * dim / bytes_per_item


def theoretical_speedup(n_db: int, dim: int, num_codebooks: int, num_codewords: int) -> float:
    """Operation-count ratio of exhaustive search to ADC (§IV-B).

    Exhaustive: ``n·d`` multiply-adds per query. ADC: ``d·M·K`` for the
    lookup tables plus ``n·M`` table additions.
    """
    exhaustive_ops = n_db * dim
    adc_ops = dim * num_codebooks * num_codewords + n_db * num_codebooks
    return exhaustive_ops / adc_ops


@dataclass
class EfficiencyMeasurement:
    """One point of the Fig. 7 sweep."""

    n_db: int
    fraction: float
    measured_speedup: float
    theoretical_speedup: float
    measured_compression: float
    theoretical_compression: float


def measure_search_times(
    queries: np.ndarray,
    database: np.ndarray,
    codebooks: np.ndarray,
    codes: np.ndarray,
    repeats: int = 3,
) -> tuple[float, float]:
    """Wall-clock (exhaustive_seconds, adc_seconds), best of ``repeats``."""
    db_sq_norms = (reconstruct(codes, codebooks) ** 2).sum(axis=1)
    exhaustive_best = adc_best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        squared_distances(queries, database)
        exhaustive_best = min(exhaustive_best, time.perf_counter() - start)
        start = time.perf_counter()
        adc_distances(queries, codes, codebooks, db_sq_norms=db_sq_norms)
        adc_best = min(adc_best, time.perf_counter() - start)
    return exhaustive_best, adc_best


def efficiency_sweep(
    queries: np.ndarray,
    database: np.ndarray,
    codebooks: np.ndarray,
    fractions: tuple[float, ...] = (1e-3, 1e-2, 1e-1, 1.0),
    repeats: int = 3,
) -> list[EfficiencyMeasurement]:
    """Reproduce Fig. 7: ratios as functions of the database fraction.

    The measured compression ratio uses the exact byte accounting of
    :func:`storage_cost`; the measured speedup is a wall-clock ratio, which
    at simulator scale is noisy but must reproduce the figure's shape
    (ratios grow with database size; tiny databases gain nothing).
    """
    codebooks = np.asarray(codebooks, dtype=np.float64)
    m, k, dim = codebooks.shape
    n_total = len(database)
    results = []
    for fraction in sorted(fractions):
        n_db = max(int(round(n_total * fraction)), 1)
        subset = database[:n_db]
        codes = encode_nearest(subset, codebooks, residual=True)
        exhaustive_s, adc_s = measure_search_times(
            queries, subset, codebooks, codes, repeats=repeats
        )
        cost = storage_cost(n_db, dim, m, k)
        results.append(
            EfficiencyMeasurement(
                n_db=n_db,
                fraction=fraction,
                measured_speedup=exhaustive_s / max(adc_s, 1e-12),
                theoretical_speedup=theoretical_speedup(n_db, dim, m, k),
                measured_compression=cost.compression_ratio,
                theoretical_compression=cost.compression_ratio,
            )
        )
    return results
