"""Space and inference cost model of §IV, plus measured timings.

§IV-A: storing a quantized database costs ``4·K·M·d`` bytes of codebooks,
``n·M·log2(K)/8`` bytes of codeword ids, and ``4·n`` bytes of stored norms,
versus ``4·n·d`` bytes for raw float32 vectors — a compression ratio of
roughly ``32d / (M·log2 K)`` when ``n ≫ K·M·d``.

§IV-B: ADC needs ``O(d·M·K)`` multiply-adds to build a query's lookup
tables and ``O(n·M)`` adds to score the database, versus ``O(n·d)``
multiply-adds for exhaustive search.

Fig. 7 plots both the theoretical and measured speedup/compression ratios
as the database grows; :func:`efficiency_sweep` reproduces that experiment.

Two byte accountings coexist. The paper's *ideal* accounting charges
``M·log2(K)/8`` bytes per item — fractional bits, as if codes were
entropy-packed. The engine actually stores one unsigned integer per
codebook (:func:`repro.retrieval.engine.compact_code_dtype`: uint8 for
K ≤ 256, uint16 up to 65536), so the *as-stored* accounting charges
``M · itemsize`` bytes per item and the two disagree for any K that is
not a power of 256. :class:`StorageCost` reports both; budget decisions
(``repro tune --memory-mb``) must use the as-stored figures.

The calibrated model (:class:`CostModel`) extends the §IV-B op counts to
the serving stack's real knobs — shards, workers, IVF ``nprobe``, LUT
dtype — and fits one least-squares constant per term to measured
latencies, so ``repro tune`` can predict configurations it never ran.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass

import numpy as np

from repro.retrieval.adc import adc_distances, encode_nearest, reconstruct
from repro.retrieval.engine import (
    MIN_PARALLEL_CODES,
    RERANK_PAD,
    compact_code_dtype,
)
from repro.retrieval.search import squared_distances

FLOAT_BYTES = 4  # the paper counts float32 storage
#: Bytes per stored IVF id (int64) and coarse-centroid value (float64).
_ID_BYTES = 8
_CENTROID_BYTES = 8


@dataclass(frozen=True)
class StorageCost:
    """Byte-level storage accounting for one database.

    ``code_bytes`` is the paper's ideal fractional-bit figure
    (``n·M·log2(K)/8``); ``code_bytes_stored`` is what the engine actually
    allocates (``n·M·itemsize`` of the compact code dtype). They agree
    exactly when K is a power of 256 (uint8 holds 8 bits, uint16 16) and
    the ideal figure undercounts otherwise — e.g. K=512 packs 9 bits of
    information into a 16-bit lane.
    """

    codebook_bytes: float
    code_bytes: float
    norm_bytes: float
    continuous_bytes: float
    code_bytes_stored: float = 0.0

    @property
    def quantized_bytes(self) -> float:
        return self.codebook_bytes + self.code_bytes + self.norm_bytes

    @property
    def compression_ratio(self) -> float:
        return self.continuous_bytes / self.quantized_bytes

    @property
    def quantized_bytes_stored(self) -> float:
        """Bytes actually allocated: codebooks + compact codes + norms."""
        return self.codebook_bytes + self.code_bytes_stored + self.norm_bytes

    @property
    def compression_ratio_stored(self) -> float:
        """Compression against raw float32, with as-stored code bytes."""
        return self.continuous_bytes / self.quantized_bytes_stored


def stored_code_bytes_per_item(num_codebooks: int, num_codewords: int) -> int:
    """Bytes one item's codes occupy as stored (``M · dtype itemsize``)."""
    return num_codebooks * compact_code_dtype(num_codewords).itemsize


def storage_cost(n_db: int, dim: int, num_codebooks: int, num_codewords: int) -> StorageCost:
    """§IV-A byte accounting: ``4KMd + n·M·log2(K)/8 + 4n`` vs ``4nd``.

    The returned :class:`StorageCost` also carries the as-stored code
    bytes (``n·M·itemsize``) — see the class docstring for when the two
    accountings diverge.
    """
    if min(n_db, dim, num_codebooks, num_codewords) < 1:
        raise ValueError("all size arguments must be positive")
    bits_per_code = math.log2(num_codewords)
    return StorageCost(
        codebook_bytes=FLOAT_BYTES * num_codewords * num_codebooks * dim,
        code_bytes=n_db * num_codebooks * bits_per_code / 8.0,
        norm_bytes=FLOAT_BYTES * n_db,
        continuous_bytes=FLOAT_BYTES * n_db * dim,
        code_bytes_stored=float(
            n_db * stored_code_bytes_per_item(num_codebooks, num_codewords)
        ),
    )


def asymptotic_compression_ratio(
    dim: int, num_codebooks: int, num_codewords: int, *, stored: bool = False
) -> float:
    """Large-``n`` limit ``4d / (M·log2(K)/8 + 4)`` of the compression ratio.

    With ``stored=True`` the per-item code bytes use the compact dtype's
    itemsize instead of fractional bits — the ratio the deployed index
    actually achieves.
    """
    if stored:
        code_bytes = float(stored_code_bytes_per_item(num_codebooks, num_codewords))
    else:
        code_bytes = num_codebooks * math.log2(num_codewords) / 8.0
    return FLOAT_BYTES * dim / (code_bytes + FLOAT_BYTES)


def theoretical_speedup(n_db: int, dim: int, num_codebooks: int, num_codewords: int) -> float:
    """Operation-count ratio of exhaustive search to ADC (§IV-B).

    Exhaustive: ``n·d`` multiply-adds per query. ADC: ``d·M·K`` for the
    lookup tables plus ``n·M`` table additions.
    """
    exhaustive_ops = n_db * dim
    adc_ops = dim * num_codebooks * num_codewords + n_db * num_codebooks
    return exhaustive_ops / adc_ops


@dataclass
class EfficiencyMeasurement:
    """One point of the Fig. 7 sweep."""

    n_db: int
    fraction: float
    measured_speedup: float
    theoretical_speedup: float
    measured_compression: float
    theoretical_compression: float


def measure_search_times(
    queries: np.ndarray,
    database: np.ndarray,
    codebooks: np.ndarray,
    codes: np.ndarray,
    repeats: int = 3,
) -> tuple[float, float]:
    """Wall-clock (exhaustive_seconds, adc_seconds), best of ``repeats``."""
    db_sq_norms = (reconstruct(codes, codebooks) ** 2).sum(axis=1)
    exhaustive_best = adc_best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        squared_distances(queries, database)
        exhaustive_best = min(exhaustive_best, time.perf_counter() - start)
        start = time.perf_counter()
        adc_distances(queries, codes, codebooks, db_sq_norms=db_sq_norms)
        adc_best = min(adc_best, time.perf_counter() - start)
    return exhaustive_best, adc_best


def efficiency_sweep(
    queries: np.ndarray,
    database: np.ndarray,
    codebooks: np.ndarray,
    fractions: tuple[float, ...] = (1e-3, 1e-2, 1e-1, 1.0),
    repeats: int = 3,
) -> list[EfficiencyMeasurement]:
    """Reproduce Fig. 7: ratios as functions of the database fraction.

    The measured compression ratio uses the exact byte accounting of
    :func:`storage_cost`; the measured speedup is a wall-clock ratio, which
    at simulator scale is noisy but must reproduce the figure's shape
    (ratios grow with database size; tiny databases gain nothing).
    """
    codebooks = np.asarray(codebooks, dtype=np.float64)
    m, k, dim = codebooks.shape
    n_total = len(database)
    results = []
    for fraction in sorted(fractions):
        n_db = max(int(round(n_total * fraction)), 1)
        subset = database[:n_db]
        codes = encode_nearest(subset, codebooks, residual=True)
        exhaustive_s, adc_s = measure_search_times(
            queries, subset, codebooks, codes, repeats=repeats
        )
        cost = storage_cost(n_db, dim, m, k)
        results.append(
            EfficiencyMeasurement(
                n_db=n_db,
                fraction=fraction,
                measured_speedup=exhaustive_s / max(adc_s, 1e-12),
                theoretical_speedup=theoretical_speedup(n_db, dim, m, k),
                measured_compression=cost.compression_ratio,
                theoretical_compression=cost.compression_ratio,
            )
        )
    return results


# ----------------------------------------------------------------------
# Calibrated serving cost model: fit()/predict() over real configurations
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SearchConfig:
    """One serving configuration the calibrated cost model prices.

    ``num_cells == 0`` (or ``nprobe == 0``) means no IVF layer — the
    exhaustive sharded engine scans everything. ``lut_dtype`` names the
    scan lookup-table dtype (``"uint8"`` is only honoured on the IVF
    path, matching :class:`~repro.retrieval.ivf.IVFIndex`).
    ``query_encoder`` prices the query-side encode before the scan:
    ``"none"`` (queries arrive as embeddings), ``"full"`` (the trained
    backbone + DSQ assignment pass), or ``"light"`` (the distilled
    affine projection of :mod:`repro.encoding`).
    """

    n_db: int
    dim: int
    num_codebooks: int
    num_codewords: int
    k: int = 10
    workers: int = 1
    num_shards: int = 1
    num_cells: int = 0
    nprobe: int = 0
    lut_dtype: str = "float32"
    query_encoder: str = "none"

    def __post_init__(self) -> None:
        if min(self.n_db, self.dim, self.num_codebooks, self.num_codewords) < 1:
            raise ValueError("n_db, dim, M, and K must all be positive")
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if min(self.workers, self.num_shards) < 1:
            raise ValueError("workers and num_shards must be at least 1")
        if min(self.num_cells, self.nprobe) < 0:
            raise ValueError("num_cells and nprobe must be non-negative")
        if self.lut_dtype not in ("float32", "uint8"):
            raise ValueError("lut_dtype must be 'float32' or 'uint8'")
        if self.query_encoder not in ("none", "full", "light"):
            raise ValueError(
                "query_encoder must be 'none', 'full', or 'light'"
            )

    @property
    def uses_ivf(self) -> bool:
        return self.num_cells > 0 and self.nprobe > 0

    @property
    def code_dtype(self) -> str:
        """The compact dtype codes are stored as (drives memory + scan)."""
        return str(compact_code_dtype(self.num_codewords))

    @property
    def candidates(self) -> float:
        """Expected database rows scored per query."""
        if not self.uses_ivf:
            return float(self.n_db)
        probed = min(self.nprobe, self.num_cells)
        return self.n_db * probed / self.num_cells

    def effective_workers(self, n_queries: int = 1) -> int:
        """Pool width the exhaustive engine would actually dispatch with.

        Mirrors :meth:`QueryEngine.effective_workers` plus the
        ``parallel="auto"`` work threshold: below
        :data:`~repro.retrieval.engine.MIN_PARALLEL_CODES` of scan work
        the engine stays in-process and extra workers buy nothing. The
        IVF path is always in-process.
        """
        if self.uses_ivf:
            return 1
        width = max(1, min(self.workers, os.cpu_count() or 1, self.num_shards))
        if width < 2:
            return 1
        work = n_queries * self.n_db * self.num_codebooks
        return width if work >= MIN_PARALLEL_CODES else 1


#: Per-term op counts of :func:`cost_features`, in column order. The two
#: ``encode_*`` columns were added with the query-encoder axis (bench
#: schema v7); :func:`repro.tuning.recommend.model_from_report` defaults
#: them to 0 when rebuilding a model from an older artifact.
COST_FEATURE_NAMES = (
    "constant",
    "lut_ops",
    "coarse_ops",
    "probe_cells",
    "scan_float32",
    "scan_uint8",
    "merge_ops",
    "rerank_ops",
    "encode_light",
    "encode_full",
)


def cost_features(config: SearchConfig, n_queries: int = 1) -> np.ndarray:
    """Per-query analytic op counts for one configuration.

    Extends the §IV-B count (``d·M·K`` LUT build + ``n·M`` scan adds)
    with the serving stack's real terms: the IVF coarse scan
    (``num_cells·d``), the per-probed-cell walk (``min(nprobe, cells)``
    inverted lists gathered per query — fixed bookkeeping per cell that
    no op-count term covers), pruned candidates (``nprobe/num_cells`` of
    the database), the LUT dtype (uint8 scans touch a quarter of the
    bytes but pay a preselect+rerank, so it gets its own column),
    worker-pool division of the scan, per-shard top-k merge, the float64
    rerank, and the query-side encode. The encode terms are per-mode
    columns (the fitted constant absorbs the input-feature width, which
    is fixed within a sweep): the light encoder is one ``d x d``-scale
    GEMM row, the full path adds the backbone stack plus the DSQ
    assignment scoring (``d·M·K``).
    """
    m = config.num_codebooks
    scan_lookups = config.candidates * m / config.effective_workers(n_queries)
    uint8 = config.uses_ivf and config.lut_dtype == "uint8"
    shards = 1 if config.uses_ivf else min(config.num_shards, config.n_db)
    encode_gemm = float(config.dim * config.dim)
    return np.array([
        1.0,
        float(config.dim * m * config.num_codewords),
        float(config.num_cells * config.dim) if config.uses_ivf else 0.0,
        float(min(config.nprobe, config.num_cells)) if config.uses_ivf else 0.0,
        0.0 if uint8 else scan_lookups,
        scan_lookups if uint8 else 0.0,
        float(shards * (config.k + RERANK_PAD)),
        float((config.k + RERANK_PAD) * config.dim),
        encode_gemm if config.query_encoder == "light" else 0.0,
        encode_gemm + float(config.dim * m * config.num_codewords)
        if config.query_encoder == "full"
        else 0.0,
    ])


@dataclass(frozen=True)
class CostModelReport:
    """Fit quality of one :meth:`CostModel.fit` call.

    Relative errors are ``|predicted - measured| / measured`` per point;
    the holdout figures come from a model fitted *without* those points
    (absent when ``holdout_fraction`` was 0 or the grid is too small).
    """

    coefficients: dict[str, float]
    n_points: int
    mean_rel_error: float
    max_rel_error: float
    holdout_n: int = 0
    holdout_mean_rel_error: float | None = None
    holdout_max_rel_error: float | None = None

    def as_dict(self) -> dict:
        return {
            "coefficients": dict(self.coefficients),
            "n_points": self.n_points,
            "mean_rel_error": self.mean_rel_error,
            "max_rel_error": self.max_rel_error,
            "holdout": {
                "n": self.holdout_n,
                "mean_rel_error": self.holdout_mean_rel_error,
                "max_rel_error": self.holdout_max_rel_error,
            },
        }


class CostModel:
    """The analytic op-count model with fitted per-term constants.

    ``fit`` solves a *relative* least-squares problem — each row of the
    design matrix is divided by its measured latency, so minimising the
    residual minimises relative (not absolute) prediction error. That is
    the right objective here: the grid spans microsecond IVF probes and
    millisecond exhaustive scans, and a tuner cares about percentage
    error at every scale equally.
    """

    def __init__(self, coefficients: np.ndarray) -> None:
        coefficients = np.asarray(coefficients, dtype=np.float64)
        if coefficients.shape != (len(COST_FEATURE_NAMES),):
            raise ValueError(
                f"expected {len(COST_FEATURE_NAMES)} coefficients, "
                f"got shape {coefficients.shape}"
            )
        self.coefficients = coefficients

    @property
    def named_coefficients(self) -> dict[str, float]:
        return {
            name: float(value)
            for name, value in zip(COST_FEATURE_NAMES, self.coefficients)
        }

    def predict(self, config: SearchConfig, n_queries: int = 1) -> float:
        """Predicted per-query latency in seconds (floored at 1 ns)."""
        raw = float(cost_features(config, n_queries) @ self.coefficients)
        return max(raw, 1e-9)

    @classmethod
    def _solve(cls, configs, latencies, n_queries: int) -> "CostModel":
        rows = np.stack([cost_features(c, n_queries) for c in configs])
        y = np.asarray(latencies, dtype=np.float64)
        # Relative weighting: X_i / y_i · beta ≈ 1.
        design = rows / y[:, None]
        target = np.ones(len(y))
        beta, *_ = np.linalg.lstsq(design, target, rcond=None)
        return cls(beta)

    @classmethod
    def fit(
        cls,
        configs: list[SearchConfig] | tuple[SearchConfig, ...],
        latencies,
        *,
        n_queries: int = 1,
        holdout_fraction: float = 0.0,
        seed: int = 0,
    ) -> tuple["CostModel", CostModelReport]:
        """Calibrate the model to ``(config, measured latency)`` points.

        With ``holdout_fraction`` > 0, a seeded subset of the grid is
        held out, a model fitted on the remainder is scored on it (the
        generalisation figure ``repro tune`` gates on), and the returned
        model is then refitted on *all* points.
        """
        configs = list(configs)
        latencies = np.asarray(latencies, dtype=np.float64)
        if len(configs) != len(latencies):
            raise ValueError("one latency per config is required")
        if len(configs) < 2:
            raise ValueError("need at least 2 measured points to fit")
        if not np.all(latencies > 0):
            raise ValueError("latencies must be positive")
        if not 0.0 <= holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in [0, 1)")

        holdout_n = 0
        holdout_mean = holdout_max = None
        n_holdout = int(round(holdout_fraction * len(configs)))
        if n_holdout >= 1 and len(configs) - n_holdout >= len(COST_FEATURE_NAMES):
            order = np.random.default_rng(seed).permutation(len(configs))
            held, kept = order[:n_holdout], order[n_holdout:]
            partial = cls._solve(
                [configs[i] for i in kept], latencies[kept], n_queries
            )
            errors = np.array([
                abs(partial.predict(configs[i], n_queries) - latencies[i])
                / latencies[i]
                for i in held
            ])
            holdout_n = int(n_holdout)
            holdout_mean = float(errors.mean())
            holdout_max = float(errors.max())

        model = cls._solve(configs, latencies, n_queries)
        rel = np.array([
            abs(model.predict(config, n_queries) - latency) / latency
            for config, latency in zip(configs, latencies)
        ])
        report = CostModelReport(
            coefficients=model.named_coefficients,
            n_points=len(configs),
            mean_rel_error=float(rel.mean()),
            max_rel_error=float(rel.max()),
            holdout_n=holdout_n,
            holdout_mean_rel_error=holdout_mean,
            holdout_max_rel_error=holdout_max,
        )
        return model, report


def serving_memory_bytes(config: SearchConfig) -> float:
    """As-stored bytes the serving stack holds for one configuration.

    Codebooks + the engine's compact transposed codes + float32 norms,
    plus — when an IVF layer is attached — its reordered code copy,
    int64 id map, float32 norms, and float64 coarse centroids (matching
    :attr:`IVFIndex.nbytes`). This is the figure ``repro tune`` checks
    ``--memory-mb`` budgets against; the ideal fractional-bit accounting
    would undercount any K that is not a power of 256.
    """
    cost = storage_cost(
        config.n_db, config.dim, config.num_codebooks, config.num_codewords
    )
    total = cost.quantized_bytes_stored
    if config.num_cells > 0:
        total += (
            cost.code_bytes_stored  # the IVF layer's reordered code copy
            + _ID_BYTES * config.n_db
            + FLOAT_BYTES * config.n_db
            + _CENTROID_BYTES * config.num_cells * config.dim
        )
    return float(total)
