"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list-datasets`` / ``list-experiments`` — discover what is available.
- ``dataset-stats`` — print Table I rows for one or all datasets.
- ``train`` — train LightLT on a named dataset and report MAP plus the
  head/tail and codebook-health diagnostics; optionally save the quantized
  index to disk. ``--metrics-out`` / ``--trace`` enable the observability
  layer and export its metric snapshot / span trace as JSONL.
- ``experiment`` — run one of the paper's table/figure experiments and
  print the rendered artifact.
- ``bench`` — the per-phase benchmark harness (:mod:`repro.obs.bench`);
  writes ``BENCH_results.json``.
- ``tune`` — the calibrated auto-tuner (:mod:`repro.tuning`): sweep a
  config grid over a profile, fit the cost model to the measurements
  (writes a schema-v6 ``TUNE_results.json``), and with ``--latency-ms`` /
  ``--recall`` / ``--memory-mb`` recommend a concrete serving config for
  that budget (exit 1 when no config meets it).
- ``serve`` — boot the resilient serving daemon (:mod:`repro.serving`)
  over a saved index and drive seeded open- or closed-loop traffic
  through it; prints the latency/QPS load report and any degradation or
  failover events. ``--ivf-cells`` / ``--nprobe`` swap the replicas'
  exhaustive scan for the IVF-pruned engine (one shared coarse layout,
  trained at boot). ``--mutable`` wraps the saved index in the segmented
  mutable index so the daemon accepts online add/remove/compact, and
  ``--churn`` drives seeded mutation rounds through ``daemon.mutate``
  alongside the query traffic.

The consolidated flag reference lives in README.md ("CLI reference").
"""

from __future__ import annotations

import argparse
import sys

from repro.version import __version__

EXPERIMENTS = (
    "table1",
    "fig4",
    "table2",
    "table3",
    "fig5",
    "table4",
    "fig6",
    "fig7",
    "fig8",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LightLT (ICDE 2024) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list-datasets", help="show available dataset names")
    commands.add_parser("list-experiments", help="show reproducible artifacts")

    stats = commands.add_parser("dataset-stats", help="print Table I rows")
    stats.add_argument("--dataset", default=None, help="restrict to one dataset")
    stats.add_argument("--scale", choices=("ci", "paper"), default="ci")

    train = commands.add_parser("train", help="train LightLT on a dataset")
    train.add_argument("--dataset", required=True)
    train.add_argument("--imbalance-factor", type=int, default=50, choices=(50, 100))
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--ensemble", action="store_true", help="run the full ensemble")
    train.add_argument("--fast", action="store_true", help="shorter training")
    train.add_argument("--save-index", default=None, help="write the quantized index here")
    train.add_argument(
        "--checkpoint-dir",
        default=None,
        help="write an atomic training checkpoint here after every epoch",
    )
    train.add_argument(
        "--resume",
        action="store_true",
        help="continue from the newest valid checkpoint in --checkpoint-dir",
    )
    train.add_argument(
        "--keep-checkpoints",
        type=int,
        default=3,
        help="how many checkpoint files to retain (default: 3)",
    )
    train.add_argument(
        "--guard",
        action="store_true",
        help="guarded training: roll back + LR backoff on NaN/Inf loss "
        "(requires --checkpoint-dir)",
    )
    train.add_argument(
        "--workers",
        type=int,
        default=None,
        help="after training, serve the query set through the sharded ADC "
        "engine with this many workers and report throughput vs the serial "
        "scan",
    )
    train.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for --workers (default: 2x workers)",
    )
    train.add_argument(
        "--metrics-out",
        default=None,
        help="enable observability and write the metric snapshot here (JSONL)",
    )
    train.add_argument(
        "--trace",
        default=None,
        help="enable observability and write the span trace here (JSONL)",
    )

    experiment = commands.add_parser("experiment", help="reproduce a table/figure")
    experiment.add_argument("name", choices=EXPERIMENTS)
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument(
        "--full", action="store_true", help="full training budget (slower)"
    )

    serve = commands.add_parser(
        "serve",
        help="serve a saved index through the resilient daemon and drive "
        "seeded traffic through it",
    )
    serve.add_argument("--index", required=True, help="index archive from --save-index")
    serve.add_argument("--replicas", type=int, default=2)
    serve.add_argument("--requests", type=int, default=256)
    serve.add_argument(
        "--clients", type=int, default=8,
        help="closed-loop concurrency (ignored with --qps)",
    )
    serve.add_argument(
        "--qps", type=float, default=None,
        help="open-loop arrival rate (default: closed loop)",
    )
    serve.add_argument("--k", type=int, default=10)
    serve.add_argument("--queries", type=int, default=64, help="seeded query-pool size")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--kill-replica-at", type=int, default=None, metavar="CALL",
        help="demo fault: kill replica 0 at its CALL-th scan (failover demo)",
    )
    serve.add_argument(
        "--ivf-cells", type=int, default=None, metavar="N",
        help="serve through an IVF-pruned engine with N coarse cells "
        "(default: exhaustive scan; implies the sqrt rule when --nprobe "
        "is given alone)",
    )
    serve.add_argument(
        "--nprobe", type=int, default=None,
        help="cells probed per query on the IVF path (default: 8; "
        "implies --ivf-cells)",
    )
    serve.add_argument(
        "--mutable", action="store_true",
        help="wrap the saved index in the segmented mutable index so the "
        "daemon accepts online add/remove/compact mutations",
    )
    serve.add_argument(
        "--churn", type=int, default=None, metavar="ROUNDS",
        help="drive ROUNDS seeded add/remove rounds through daemon.mutate "
        "alongside the query traffic, compacting at the end "
        "(implies --mutable)",
    )
    serve.add_argument(
        "--metrics-out", default=None,
        help="enable observability and write the serve.* snapshot here (JSONL)",
    )
    serve.add_argument(
        "--query-encoder", default=None, metavar="PATH",
        help="light query encoder archive from `repro distill`; traffic "
        "then submits raw features with encoder='light' and the daemon "
        "embeds them through the distilled fast path before the scan",
    )

    distill = commands.add_parser(
        "distill",
        help="train a LightLT teacher on a profile, distill the light "
        "query encoder from it, and save the encoder archive",
    )
    distill.add_argument(
        "--profile", default="tiny",
        help="dataset profile (accepts the -lt suffix; default: tiny)",
    )
    distill.add_argument("--seed", type=int, default=0)
    distill.add_argument(
        "--out", default="encoder.npz",
        help="light-encoder archive path (default: encoder.npz)",
    )
    distill.add_argument(
        "--save-index", default=None, metavar="PATH",
        help="also build and save the teacher's index over the profile "
        "database (ready for `repro serve --index ... --query-encoder`)",
    )
    distill.add_argument(
        "--hidden-dim", type=int, default=None,
        help="student hidden width (default: pure linear projection)",
    )
    distill.add_argument(
        "--mode", choices=("kl", "contrastive"), default="kl",
        help="distillation objective: soft codeword-posterior KL or the "
        "MoPQ-style contrastive matching head (default: kl)",
    )
    distill.add_argument(
        "--epochs", type=int, default=None,
        help="distillation epochs (default: the distiller's own budget)",
    )

    commands.add_parser(
        "bench",
        help="per-phase benchmark harness; writes BENCH_results.json "
        "(see `python -m repro bench --help`)",
        add_help=False,
    )

    tune = commands.add_parser(
        "tune",
        help="sweep a config grid, calibrate the cost model, and "
        "recommend a serving config for a latency/recall/memory budget",
    )
    tune.add_argument(
        "--profile", default="tiny",
        help="dataset profile to sweep (accepts the -lt suffix; "
        "default: tiny)",
    )
    tune.add_argument(
        "--quick", action="store_true",
        help="use the small CI grid (default grid otherwise)",
    )
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument(
        "--k", type=int, default=10,
        help="top-k the sweep measures recall and latency at (default: 10)",
    )
    tune.add_argument(
        "--out", default="TUNE_results.json",
        help="sweep artifact path (default: TUNE_results.json)",
    )
    tune.add_argument(
        "--from-results", default=None, metavar="PATH",
        help="recommend from an existing sweep artifact instead of "
        "running a new sweep",
    )
    tune.add_argument(
        "--no-train-axis", action="store_true",
        help="skip the per-(M, K) fused-vs-reference training comparison",
    )
    tune.add_argument(
        "--latency-ms", type=float, default=None,
        help="budget: per-query latency ceiling in milliseconds "
        "(amortised over the sweep's query batch)",
    )
    tune.add_argument(
        "--recall", type=float, default=None,
        help="budget: recall@k floor in (0, 1]",
    )
    tune.add_argument(
        "--memory-mb", type=float, default=None,
        help="budget: as-stored serving memory ceiling in MB",
    )
    return parser


def _cmd_list_datasets() -> int:
    from repro.data import available_datasets

    for name in available_datasets():
        print(name)
    return 0


def _cmd_list_experiments() -> int:
    for name in EXPERIMENTS:
        print(name)
    return 0


def _cmd_dataset_stats(args: argparse.Namespace) -> int:
    from repro.data import available_datasets, load_dataset
    from repro.experiments import format_table1

    names = [args.dataset] if args.dataset else available_datasets()
    rows = []
    for name in names:
        for factor in (50, 100):
            rows.append(load_dataset(name, factor, scale=args.scale).summary())
    print(format_table1(rows))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.analysis import analyze
    from repro.core import EnsembleConfig, Trainer, train_ensemble
    from repro.data import load_dataset
    from repro.experiments import (
        default_loss_config,
        default_model_config,
        default_training_config,
    )
    from repro.retrieval.persistence import save_index

    if (args.resume or args.guard) and not args.checkpoint_dir:
        print("error: --resume and --guard require --checkpoint-dir", file=sys.stderr)
        return 2
    if args.shards is not None and args.workers is None:
        print("error: --shards requires --workers", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 2
    obs_handle = None
    if args.metrics_out or args.trace:
        from repro import obs

        obs_handle = obs.enable_observability()
    dataset = load_dataset(args.dataset, args.imbalance_factor, seed=args.seed)
    model_config = default_model_config(dataset)
    loss_config = default_loss_config(dataset)
    training_config = default_training_config(dataset, fast=args.fast)
    if args.ensemble:
        if args.checkpoint_dir:
            print("note: checkpointing is per-member and not yet wired for "
                  "--ensemble; ignoring --checkpoint-dir")
        result = train_ensemble(
            dataset,
            model_config,
            loss_config,
            training_config,
            EnsembleConfig(num_members=2 if args.fast else 4),
            seed=args.seed,
        )
        model = result.model
    elif args.guard:
        from repro.resilience import GuardedTrainer

        guarded = GuardedTrainer(
            Trainer(model_config, loss_config, training_config, seed=args.seed),
            checkpoint_dir=args.checkpoint_dir,
            keep_checkpoints=args.keep_checkpoints,
        )
        model, _, history = guarded.fit(dataset, resume=args.resume)
        for event in history.events:
            print(f"guard intervention: {event}")
    else:
        trainer = Trainer(model_config, loss_config, training_config, seed=args.seed)
        model, _, _ = trainer.fit(
            dataset,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            keep_checkpoints=args.keep_checkpoints,
        )

    report = analyze(model, dataset)
    for line in report.summary_lines():
        print(line)
    index = None
    if args.save_index or args.workers is not None:
        index = model.build_index(
            dataset.database.features, labels=dataset.database.labels
        )
    if args.workers is not None:
        print(_engine_report(model, index, dataset, args.workers, args.shards))
    if args.save_index:
        save_index(index, args.save_index)
        print(f"index saved to {args.save_index}")
    if obs_handle is not None:
        from repro import obs

        run_info = {"command": "train", "dataset": args.dataset, "seed": args.seed}
        if args.metrics_out:
            obs.export_metrics(obs_handle.registry, args.metrics_out, run=run_info)
            print(f"metrics written to {args.metrics_out}")
        if args.trace:
            obs.export_spans(obs_handle.tracer, args.trace, run=run_info)
            print(f"trace written to {args.trace}")
        obs.disable_observability()
    return 0


def _engine_report(model, index, dataset, workers: int, shards: int | None) -> str:
    """Serve the query set through the sharded engine; one comparison line.

    Times the serial scan and the engine over the same top-10 pass and
    checks the rankings agree — the quick post-training health check behind
    ``repro train --workers`` (the full harness is ``repro bench``).
    """
    import time

    import numpy as np

    from repro.retrieval import SearchRequest
    from repro.retrieval.engine import QueryEngine

    queries = model.embed(dataset.query.features)
    serial_start = time.perf_counter()
    serial_topk = index.search(queries, k=10)
    serial_elapsed = time.perf_counter() - serial_start
    with QueryEngine(index, workers=workers, num_shards=shards) as engine:
        engine.search(queries[:1], k=10)  # warm the kernel path
        request = SearchRequest(queries=queries, k=10, engine=engine)
        engine_start = time.perf_counter()
        ranked = index.search(request).indices
        engine_elapsed = time.perf_counter() - engine_start
        dispatch = engine.last_dispatch
        num_shards = engine.sharded.num_shards
    parity = "ok" if np.array_equal(ranked, serial_topk) else "MISMATCH"
    qps = len(queries) / engine_elapsed if engine_elapsed > 0 else float("inf")
    speedup = serial_elapsed / engine_elapsed if engine_elapsed > 0 else float("inf")
    return (
        f"engine: {qps:,.0f} qps, x{speedup:.2f} vs serial "
        f"({dispatch}, {workers}w/{num_shards}s, top-k {parity})"
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot the daemon over a saved index and push seeded traffic through."""
    import asyncio

    import numpy as np

    from repro.retrieval.persistence import load_index
    from repro.rng import make_rng
    from repro.serving import ServingDaemon, TrafficGenerator

    if args.replicas < 1:
        print("error: --replicas must be at least 1", file=sys.stderr)
        return 2
    if args.requests < 1:
        print("error: --requests must be at least 1", file=sys.stderr)
        return 2
    if args.nprobe is not None and args.nprobe < 1:
        print("error: --nprobe must be at least 1", file=sys.stderr)
        return 2
    if args.ivf_cells is not None and args.ivf_cells < 1:
        print("error: --ivf-cells must be at least 1", file=sys.stderr)
        return 2
    if args.churn is not None and args.churn < 1:
        print("error: --churn must be at least 1", file=sys.stderr)
        return 2
    mutable = args.mutable or args.churn is not None
    obs_handle = None
    if args.metrics_out:
        from repro import obs

        obs_handle = obs.enable_observability()
    index = load_index(args.index)
    engine_kwargs = None
    mutable_index = None
    if mutable:
        # The mutable index owns its engine (rebuilt at every compaction),
        # so the IVF layout is handed to it as a cell *count* — a prebuilt
        # coarse layer would go stale the moment compaction reshapes the
        # base segment.
        from repro.retrieval import MutableIndex
        from repro.retrieval.ivf import default_num_cells

        index_engine_kwargs = None
        if args.ivf_cells is not None or args.nprobe is not None:
            cells = (
                args.ivf_cells
                if args.ivf_cells is not None
                else default_num_cells(len(index))
            )
            nprobe = args.nprobe if args.nprobe is not None else 8
            index_engine_kwargs = {"ivf": cells, "nprobe": nprobe}
        mutable_index = MutableIndex.from_index(
            index, engine_kwargs=index_engine_kwargs
        )
        ivf = mutable_index.ivf
        if ivf is not None:
            print(
                f"ivf: {ivf.num_cells} cells, nprobe "
                f"{index_engine_kwargs['nprobe']} "
                f"(~{ivf.cell_sizes().mean():.0f} items/cell)"
            )
        print(
            f"mutable: {mutable_index.n_db} rows adopted as the base "
            f"segment (generation {mutable_index.generation})"
        )
    elif args.ivf_cells is not None or args.nprobe is not None:
        # One shared IVF layout for every replica: the coarse quantizer is
        # trained once here, so replicas differ only in their scan state.
        from repro.retrieval import IVFIndex

        ivf = IVFIndex.build(index, num_cells=args.ivf_cells, seed=args.seed)
        nprobe = args.nprobe if args.nprobe is not None else 8
        engine_kwargs = {"ivf": ivf, "nprobe": nprobe}
        print(
            f"ivf: {ivf.num_cells} cells, nprobe {nprobe} "
            f"(~{ivf.cell_sizes().mean():.0f} items/cell)"
        )
    query_encoders = None
    encoder_mode = None
    if args.query_encoder:
        from repro.encoding import load_encoder

        light = load_encoder(args.query_encoder)
        if light.embed_dim != index.codebooks.shape[2]:
            print(
                f"error: encoder embeds into {light.embed_dim}-d but the "
                f"index stores {index.codebooks.shape[2]}-d vectors",
                file=sys.stderr,
            )
            return 2
        query_encoders = {"light": light}
        encoder_mode = "light"
        print(
            f"query encoder: light ({light.input_dim} -> {light.embed_dim}"
            + (", linear)" if light.hidden_dim is None
               else f", hidden {light.hidden_dim})")
        )
    rng = make_rng(args.seed)
    # With an encoder the pool rows are raw features (the daemon embeds
    # them); without one they are embeddings at the index's dimension.
    pool_dim = (
        query_encoders["light"].input_dim
        if query_encoders
        else index.codebooks.shape[2]
    )
    pool = rng.normal(size=(args.queries, pool_dim))
    faults = None
    if args.kill_replica_at is not None:
        from repro.resilience.faults import ReplicaKillFault, ServingFaults

        faults = ServingFaults(
            ReplicaKillFault(replica=0, at_call=args.kill_replica_at)
        )
        print(f"fault plan: kill replica 0 at scan {args.kill_replica_at}")

    async def churn(daemon) -> dict:
        """Seeded add/remove rounds through ``daemon.mutate``; one final
        compaction so the summary shows the post-merge generation."""
        from repro.retrieval import MutationRequest

        churn_rng = make_rng(args.seed + 1)
        stats = {"added": 0, "removed": 0}
        dim = mutable_index.dim
        # A labelled index (train --save-index) refuses unlabelled adds;
        # draw synthetic arrivals from the existing label vocabulary.
        label_pool = (
            np.unique(index.labels) if index.labels is not None else None
        )
        for _ in range(args.churn):
            vectors = churn_rng.normal(size=(32, dim))
            labels = (
                churn_rng.choice(label_pool, size=len(vectors))
                if label_pool is not None
                else None
            )
            added = await daemon.mutate(
                MutationRequest(op="add", vectors=vectors, labels=labels)
            )
            stats["added"] += added.added
            live = mutable_index.live_ids()
            doomed = churn_rng.choice(
                live, size=min(8, len(live)), replace=False
            )
            removed = await daemon.mutate(
                MutationRequest(op="remove", ids=doomed)
            )
            stats["removed"] += removed.removed
            await asyncio.sleep(0)  # let query traffic interleave
        compacted = await daemon.mutate(MutationRequest(op="compact"))
        stats["result"] = compacted
        return stats

    async def run():
        daemon = ServingDaemon(
            mutable_index if mutable else index,
            num_replicas=args.replicas, faults=faults,
            engine_kwargs=engine_kwargs, on_event=print,
            query_encoders=query_encoders,
        )
        async with daemon:
            generator = TrafficGenerator(
                daemon, pool, k=args.k, seed=args.seed,
                encoder=encoder_mode,
            )
            churn_task = (
                asyncio.create_task(churn(daemon))
                if args.churn is not None
                else None
            )
            try:
                if args.qps is not None:
                    report = await generator.run_open(args.qps, args.requests)
                else:
                    report = await generator.run_closed(
                        args.requests, clients=args.clients
                    )
            finally:
                churn_stats = await churn_task if churn_task else None
        return daemon, report, churn_stats

    daemon, report, churn_stats = asyncio.run(run())
    mode = f"open loop @ {args.qps:g} qps" if args.qps is not None else (
        f"closed loop, {args.clients} clients"
    )
    print(f"serve: {args.replicas} replicas, {mode}")
    for line in report.summary_lines():
        print(line)
    if churn_stats is not None:
        final = churn_stats["result"]
        print(
            f"churn: {args.churn} rounds — {churn_stats['added']} added, "
            f"{churn_stats['removed']} removed; compacted to generation "
            f"{final.generation} ({final.live} live rows, "
            f"{final.segments} segment(s), {final.tombstones} tombstones)"
        )
    if mutable_index is not None:
        mutable_index.close()
    interesting = (
        "retries", "hedges", "failovers", "shed", "stale_served",
        "degraded_transitions",
    )
    resilience = {key: daemon.counts[key] for key in interesting if daemon.counts[key]}
    if resilience:
        print("resilience: " + "  ".join(f"{k}: {v}" for k, v in sorted(resilience.items())))
    if obs_handle is not None:
        from repro import obs

        run_info = {"command": "serve", "index": args.index, "seed": args.seed}
        obs.export_metrics(obs_handle.registry, args.metrics_out, run=run_info)
        print(f"metrics written to {args.metrics_out}")
        obs.disable_observability()
    return 0 if report.n_failed == 0 else 1


def _cmd_distill(args: argparse.Namespace) -> int:
    """Teacher fit → light-encoder distillation → encoder archive.

    Prints the light-vs-full comparison on the profile's query split
    (batched encode speedup and recall@10 of each path against the exact
    embedding-space oracle) so the trade-off is visible before serving.
    """
    import dataclasses

    import numpy as np

    from repro.core.trainer import Trainer
    from repro.encoding import (
        DistillationConfig,
        distill_query_encoder,
        save_encoder,
    )
    from repro.experiments import (
        default_loss_config,
        default_model_config,
        default_training_config,
    )
    from repro.obs.bench import load_profile_dataset, overlap_recall
    from repro.retrieval.search import squared_distances

    if args.epochs is not None and args.epochs < 1:
        print("error: --epochs must be at least 1", file=sys.stderr)
        return 2
    dataset = load_profile_dataset(args.profile, args.seed)
    trainer = Trainer(
        default_model_config(dataset),
        default_loss_config(dataset),
        default_training_config(dataset, fast=True),
        seed=args.seed,
    )
    teacher, _, _ = trainer.fit(dataset)
    teacher.eval()
    training_config = None
    if args.epochs is not None:
        from repro.encoding import default_distill_training_config

        training_config = dataclasses.replace(
            default_distill_training_config(), epochs=args.epochs
        )
    student, history = distill_query_encoder(
        teacher,
        dataset,
        hidden_dim=args.hidden_dim,
        config=DistillationConfig(mode=args.mode),
        training_config=training_config,
        seed=args.seed,
    )
    save_encoder(student, args.out)
    print(
        f"distilled {args.mode} student ({student.input_dim} -> "
        f"{student.embed_dim}"
        + (f", hidden {args.hidden_dim}" if args.hidden_dim else ", linear")
        + f") in {len(history.epochs)} epochs; saved to {args.out}"
    )

    raw_queries = np.asarray(dataset.query.features, dtype=np.float64)
    emb_db = np.asarray(teacher.embed(dataset.database.features), dtype=np.float64)
    exact_ids = np.argsort(
        squared_distances(
            np.asarray(teacher.embed(raw_queries), dtype=np.float64), emb_db
        ),
        kind="stable", axis=1,
    )[:, :10]
    index = teacher.build_index(
        dataset.database.features, labels=dataset.database.labels
    )
    import time as _time

    timings = {}
    recalls = {}
    for label, embed in (("full", teacher.embed), ("light", student.embed)):
        best = float("inf")
        for _ in range(5):
            start = _time.perf_counter()
            embedded = embed(raw_queries)
            best = min(best, _time.perf_counter() - start)
        timings[label] = best
        recalls[label] = overlap_recall(index.search(embedded, k=10), exact_ids)
    speedup = timings["full"] / timings["light"] if timings["light"] > 0 else float("inf")
    delta = recalls["full"] - recalls["light"]
    print(
        f"encode: light x{speedup:.2f} vs full "
        f"({timings['full'] * 1e3:.3f} -> {timings['light'] * 1e3:.3f} ms "
        f"per {len(raw_queries)}-query batch)"
    )
    print(
        f"recall@10: full {recalls['full']:.3f}, light {recalls['light']:.3f} "
        f"(delta {delta:+.3f})"
    )
    if args.save_index:
        from repro.retrieval.persistence import save_index

        save_index(index, args.save_index)
        print(f"index saved to {args.save_index}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    """Run (or load) a tune sweep; optionally recommend for a budget."""
    from repro.obs.bench import format_summary, load_results, write_results
    from repro.tuning import TuneRequest, recommend, run_tune_sweep

    budgets_given = (
        args.latency_ms is not None
        or args.recall is not None
        or args.memory_mb is not None
    )
    if args.from_results:
        results = load_results(args.from_results)
        if not budgets_given:
            print(format_summary(results))
            return 0
    else:
        results = run_tune_sweep(
            profile=args.profile,
            quick=args.quick,
            seed=args.seed,
            k=args.k,
            train_axis=not args.no_train_axis,
        )
        path = write_results(results, args.out)
        print(format_summary(results))
        print(f"[results written to {path}]")
    if not budgets_given:
        return 0
    try:
        request = TuneRequest(
            latency_ms=args.latency_ms,
            recall=args.recall,
            memory_mb=args.memory_mb,
            k=args.k,
        )
        recommendation = recommend(results, request)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for line in recommendation.summary_lines():
        print(line)
    return 0 if recommendation.feasible else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    import repro.experiments as exp

    fast = not args.full
    if args.name == "table1":
        print(exp.format_table1(exp.run_table1(seed=args.seed)))
    elif args.name == "fig4":
        print(exp.format_fig4(exp.run_fig4()))
    elif args.name == "table2":
        print(
            exp.format_comparison(
                exp.run_table2(seed=args.seed, fast=fast), "Table II — image datasets"
            )
        )
    elif args.name == "table3":
        print(
            exp.format_comparison(
                exp.run_table3(seed=args.seed, fast=fast), "Table III — text datasets"
            )
        )
    elif args.name == "fig5":
        print(exp.format_fig5(exp.run_fig5(seed=args.seed, fast=fast)))
    elif args.name == "table4":
        print(exp.format_table4(exp.run_table4(seed=args.seed, fast=fast)))
    elif args.name == "fig6":
        print(exp.format_fig6(exp.run_fig6(seed=args.seed, fast=fast)))
    elif args.name == "fig7":
        print(exp.format_fig7(exp.run_fig7(seed=args.seed, fast=fast)))
    elif args.name == "fig8":
        print(exp.format_fig8(exp.run_fig8(seed=args.seed, fast=fast)))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        # The harness owns its flag set; hand the rest of the line over so
        # `repro bench --profile ... --quick` matches benchmarks/run_bench.py.
        from repro.obs.bench import main as bench_main

        return bench_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "list-datasets":
        return _cmd_list_datasets()
    if args.command == "list-experiments":
        return _cmd_list_experiments()
    if args.command == "dataset-stats":
        return _cmd_dataset_stats(args)
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "distill":
        return _cmd_distill(args)
    if args.command == "tune":
        return _cmd_tune(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
