"""Micro-batching front end: many awaiters, one engine scan.

Concurrent ``submit`` calls land individual single-query requests on an
asyncio queue; the batcher's collector loop pops the first, waits at most
``max_delay_s`` for company (up to ``max_batch_size``), groups what
arrived by ``(k, rerank hint, nprobe)``, and hands each group to the
daemon's dispatch coroutine
as **one** scan. That amortises the per-batch costs the bench already
measures (LUT build, dispatch, merge) across every rider — the asyncio
version of the batch-vs-single gap in ``phases.query``.

The queue is bounded: a full queue means the daemon is past its
backpressure limit and ``try_enqueue`` returns ``False`` (the daemon sheds
that request). Draining is first-class for clean shutdown: ``drain()``
stops admission, waits for the queue to empty and every in-flight dispatch
to finish, then stops the collector — no request is abandoned mid-flight.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.obs import get_obs
from repro.obs import names as metric_names

__all__ = ["MicroBatcher", "PendingRequest"]


@dataclass
class PendingRequest:
    """One client request parked in the batcher.

    ``future`` resolves to ``(indices_row, distances_row, meta)`` — the
    daemon's dispatch fills it; ``deadline`` is absolute event-loop time.
    """

    query: np.ndarray
    k: int
    future: asyncio.Future
    enqueue_time: float
    deadline: float
    signature: str
    #: Explicit rerank hint from a SearchRequest (None: daemon decides).
    rerank: bool | None = None
    #: Per-request IVF probe width (None: the replica engine's default).
    nprobe: int | None = None
    meta: dict = field(default_factory=dict)


class MicroBatcher:
    """Collects concurrent requests into ``(k, rerank, nprobe)`` scan groups."""

    def __init__(
        self,
        dispatch,
        *,
        max_batch_size: int = 32,
        max_delay_s: float = 0.002,
        max_queue: int = 1024,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")
        self._dispatch = dispatch
        self.max_batch_size = int(max_batch_size)
        self.max_delay_s = float(max_delay_s)
        self._queue: asyncio.Queue[PendingRequest] = asyncio.Queue(
            maxsize=max_queue
        )
        self._inflight: set[asyncio.Task] = set()
        self._collector: asyncio.Task | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def qsize(self) -> int:
        return self._queue.qsize()

    def try_enqueue(self, request: PendingRequest) -> bool:
        """Park a request; ``False`` means the queue is full (shed it)."""
        if self._closed:
            raise RuntimeError("batcher is draining or stopped")
        try:
            self._queue.put_nowait(request)
        except asyncio.QueueFull:
            return False
        return True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._collector is None:
            self._collector = asyncio.create_task(
                self._run(), name="serve-batcher"
            )

    async def drain(self) -> None:
        """Stop admission, finish everything already accepted, then stop."""
        self._closed = True
        await self._queue.join()
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        await self._stop_collector()

    async def abort(self) -> None:
        """Hard stop: cancel the collector and in-flight dispatches, fail
        anything still parked in the queue."""
        self._closed = True
        await self._stop_collector()
        for task in list(self._inflight):
            task.cancel()
        if self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        while not self._queue.empty():
            request = self._queue.get_nowait()
            self._queue.task_done()
            if not request.future.done():
                request.future.set_exception(
                    RuntimeError("serving daemon stopped")
                )

    async def _stop_collector(self) -> None:
        if self._collector is not None:
            self._collector.cancel()
            try:
                await self._collector
            except asyncio.CancelledError:
                pass
            self._collector = None

    # ------------------------------------------------------------------
    # Collector
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            # task_done is deferred until the batch's dispatch tasks exist:
            # drain() relies on queue.join() meaning "popped AND handed to a
            # dispatch", otherwise a cancel could land mid-window and drop
            # the in-hand batch with its futures unresolved.
            batch: list[PendingRequest] = []
            try:
                batch.append(await self._queue.get())
                window_ends = loop.time() + self.max_delay_s
                while len(batch) < self.max_batch_size:
                    remaining = window_ends - loop.time()
                    if remaining <= 0:
                        # Opportunistic sweep: anything already queued rides
                        # along even after the window closed.
                        while (
                            len(batch) < self.max_batch_size
                            and not self._queue.empty()
                        ):
                            batch.append(self._queue.get_nowait())
                        break
                    try:
                        batch.append(
                            await asyncio.wait_for(
                                self._queue.get(), timeout=remaining
                            )
                        )
                    except asyncio.TimeoutError:
                        break
            except asyncio.CancelledError:
                for request in batch:
                    self._queue.task_done()
                    if not request.future.done():
                        request.future.set_exception(
                            RuntimeError("serving daemon stopped")
                        )
                raise
            # One scan per (k, rerank hint, nprobe): a request with an
            # explicit search configuration cannot ride a scan that made a
            # different one — the answers differ.
            groups: dict[tuple, list[PendingRequest]] = {}
            for request in batch:
                groups.setdefault(
                    (request.k, request.rerank, request.nprobe), []
                ).append(request)
            obs = get_obs()
            for group in groups.values():
                if obs.enabled:
                    obs.registry.histogram(
                        metric_names.SERVE_BATCH_SIZE
                    ).observe(len(group))
                    obs.registry.counter(
                        metric_names.SERVE_BATCHES_TOTAL
                    ).inc()
                task = asyncio.create_task(self._dispatch(group))
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)
            for _ in batch:
                self._queue.task_done()
