"""Per-replica circuit breaker: fail fast instead of hammering a corpse.

Classic three-state machine, deterministic because every transition takes
the current time as an argument (the daemon passes its event-loop clock,
tests pass literals):

- **closed** — traffic flows; ``failure_threshold`` *consecutive* failures
  trip it open (any success resets the streak).
- **open** — all traffic refused for ``cooldown_s``; the replica gets a
  breather instead of a retry storm.
- **half-open** — after the cooldown, exactly one probe request is let
  through. Success closes the breaker; failure re-opens it for another
  full cooldown.

Opening increments ``serve.breaker.opens`` when observability is enabled.
"""

from __future__ import annotations

from repro.obs import get_obs
from repro.obs import names as metric_names

__all__ = ["CLOSED", "HALF_OPEN", "OPEN", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """One breaker guarding one replica.

    ``allow(now)`` is the mutating gate (it claims the half-open probe
    slot); ``would_allow(now)`` answers the same question without side
    effects, for listing candidate replicas.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 0.25,
        name: str = "",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self.name = name
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.opens_total = 0
        self._probe_inflight = False

    def _cooldown_over(self, now: float) -> bool:
        return self.opened_at is not None and (
            now - self.opened_at
        ) >= self.cooldown_s

    def would_allow(self, now: float) -> bool:
        """Non-mutating preview of :meth:`allow`."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            return self._cooldown_over(now)
        return not self._probe_inflight  # HALF_OPEN

    def allow(self, now: float) -> bool:
        """Gate one attempt; claims the probe slot when half-open."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if not self._cooldown_over(now):
                return False
            self.state = HALF_OPEN
            self._probe_inflight = False
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    def record_success(self, now: float) -> None:
        """An attempt through this breaker succeeded."""
        self.consecutive_failures = 0
        self._probe_inflight = False
        self.state = CLOSED

    def record_failure(self, now: float) -> None:
        """An attempt through this breaker failed."""
        self._probe_inflight = False
        if self.state == HALF_OPEN:
            self._open(now)
            return
        self.consecutive_failures += 1
        if self.state == CLOSED and (
            self.consecutive_failures >= self.failure_threshold
        ):
            self._open(now)

    def _open(self, now: float) -> None:
        self.state = OPEN
        self.opened_at = now
        self.consecutive_failures = 0
        self.opens_total += 1
        obs = get_obs()
        if obs.enabled:
            obs.registry.counter(metric_names.SERVE_BREAKER_OPENS).inc()
