"""LRU/TTL result cache keyed on query signature.

The daemon caches the exact answer of every healthy (non-degraded) scan
under a :func:`query_signature` — a digest of the canonical float64 query
bytes plus the *effective search configuration* (``k``, ``nprobe``,
``rerank``), so two requests hit the same entry only when they would
produce byte-identical answers. Keying on ``(query, k)`` alone would let
an ``nprobe=1`` pruned answer be served to an exact-scan request (or a
skip-rerank answer to a rerank one) the moment per-request knobs exist —
the cache-correctness bug this digest closes. Entries age out after
``ttl_s`` but are
*kept* until LRU eviction: an expired entry is invisible to normal lookups
yet can still be served with ``allow_stale=True``, which is exactly the
degraded mode's stale-while-degraded contract. A fresh ``put`` on the same
key revalidates (overwrites) the stale entry.

Time is always passed in by the caller (the daemon uses its event-loop
clock), so tests drive freshness deterministically.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = ["CacheEntry", "ResultCache", "query_signature"]


#: Signature slot per query-encoder mode (``None`` = raw embeddings).
_ENCODER_SLOTS = {None: -1, "full": 0, "light": 1}


def query_signature(
    query: np.ndarray,
    k: int,
    nprobe: int | None = None,
    rerank: bool | None = None,
    encoder: str | None = None,
) -> str:
    """Stable digest identifying ``(query, k, nprobe, rerank, encoder)``.

    The query is canonicalised to contiguous float64 first, so the same
    vector arriving as float32 or as a non-contiguous slice maps to the
    same entry. ``nprobe``, ``rerank``, and ``encoder`` are part of the
    key because they change the answer: a pruned (``nprobe``) or
    raw-float32 (``rerank=False``) scan is not interchangeable with the
    exact default, and under an encoder mode ``query`` holds *raw
    features* whose light-path and full-path embeddings — hence answers —
    differ, so each effective configuration gets its own entry. ``None``
    (surface default / embeddings) hashes distinctly from any explicit
    value.
    """
    if encoder not in _ENCODER_SLOTS:
        raise ValueError(
            f"encoder must be one of {sorted(k for k in _ENCODER_SLOTS if k)} "
            f"or None, got {encoder!r}"
        )
    canonical = np.ascontiguousarray(query, dtype=np.float64)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(canonical.tobytes())
    digest.update(int(k).to_bytes(8, "little", signed=True))
    digest.update(
        int(-1 if nprobe is None else nprobe).to_bytes(8, "little", signed=True)
    )
    digest.update(
        int(-1 if rerank is None else bool(rerank)).to_bytes(
            8, "little", signed=True
        )
    )
    digest.update(
        int(_ENCODER_SLOTS[encoder]).to_bytes(8, "little", signed=True)
    )
    digest.update(int(canonical.size).to_bytes(8, "little"))
    return digest.hexdigest()


@dataclass
class CacheEntry:
    """One cached answer: ranked ids, their distances, and its birth time."""

    indices: np.ndarray
    distances: np.ndarray
    stored_at: float


class ResultCache:
    """Bounded LRU map of query signatures to :class:`CacheEntry`.

    ``get`` returns ``(entry, fresh)`` — ``fresh`` is False once the entry
    is older than ``ttl_s``; stale entries are only returned when the
    caller opts in with ``allow_stale=True``. Hit/miss accounting lives in
    the daemon (it knows *why* it asked), not here.
    """

    def __init__(self, capacity: int = 2048, ttl_s: float = 2.0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        self.capacity = int(capacity)
        self.ttl_s = float(ttl_s)
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(
        self, key: str, now: float, allow_stale: bool = False
    ) -> tuple[CacheEntry, bool] | None:
        """The entry under ``key`` plus its freshness, or ``None``.

        A stale entry is a miss unless ``allow_stale``; either way it stays
        cached (LRU-refreshed only on an actual return) so a degraded
        window later can still serve it.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        fresh = (now - entry.stored_at) <= self.ttl_s
        if not fresh and not allow_stale:
            return None
        self._entries.move_to_end(key)
        return entry, fresh

    def clear(self) -> None:
        """Drop every entry — a mutation just invalidated all answers."""
        self._entries.clear()

    def put(
        self, key: str, indices: np.ndarray, distances: np.ndarray, now: float
    ) -> None:
        """Insert or revalidate ``key``; evicts the LRU entry when full."""
        self._entries[key] = CacheEntry(
            indices=np.array(indices, copy=True),
            distances=np.array(distances, copy=True),
            stored_at=float(now),
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
