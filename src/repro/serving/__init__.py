"""Resilient serving layer over the ADC query engine.

``repro.serving`` turns the batch-oriented :class:`QueryEngine` into a
long-running daemon: asyncio micro-batching, per-shard replica workers
with heartbeat health checks and automatic failover, deadlines with
retry/backoff/hedging, per-replica circuit breakers, an LRU/TTL result
cache, and explicit degraded modes under overload or replica loss. See
``docs/architecture.md`` ("The serving daemon") for the full state
machine and ``repro serve`` for the CLI front end.
"""

from repro.serving.batcher import MicroBatcher, PendingRequest
from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serving.cache import CacheEntry, ResultCache, query_signature
from repro.serving.daemon import (
    Overloaded,
    RequestFailed,
    ServeResult,
    ServingConfig,
    ServingDaemon,
)
from repro.serving.replica import (
    Replica,
    ReplicaSet,
    ResponseValidationError,
    validate_response,
)
from repro.serving.traffic import LoadReport, RequestRecord, TrafficGenerator

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CacheEntry",
    "CircuitBreaker",
    "LoadReport",
    "MicroBatcher",
    "Overloaded",
    "PendingRequest",
    "Replica",
    "ReplicaSet",
    "RequestFailed",
    "RequestRecord",
    "ResponseValidationError",
    "ResultCache",
    "ServeResult",
    "ServingConfig",
    "ServingDaemon",
    "TrafficGenerator",
    "query_signature",
    "validate_response",
]
