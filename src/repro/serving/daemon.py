"""The resilient serving daemon: keep answering, whatever breaks.

:class:`ServingDaemon` fronts the sharded ADC engine with an asyncio
request loop and owns every recovery decision between a client's
``await daemon.submit(query, k)`` and an answer:

- **Micro-batching** — concurrent requests coalesce into one engine scan
  per ``k`` (:mod:`repro.serving.batcher`).
- **Replication + failover** — each scan runs on one of ``num_replicas``
  replica engines (:mod:`repro.serving.replica`); a crash, corrupt
  response, or timeout moves the batch to the next healthy replica.
- **Deadlines, retries, hedging** — every request carries an absolute
  deadline; failed attempts retry with exponential backoff and seeded
  jitter, and a straggling attempt is hedged once on a second replica
  (first answer wins).
- **Circuit breakers** — per replica (:mod:`repro.serving.breaker`), so a
  failing replica is quarantined instead of re-timed-out per request.
- **Result cache** — LRU/TTL keyed on query signature — the query bytes
  plus the effective ``(k, nprobe, rerank, encoder)`` search
  configuration (:mod:`repro.serving.cache`); fresh hits skip the engine
  (and, for encoder requests, the encode) entirely, and an entry is never
  served to a request with a different configuration.
- **Graceful degradation** — under overload (queue depth) or replica loss
  the daemon enters an explicit degraded mode: expired cache entries are
  served stale, scans skip the float64 rerank (and optionally cap ``k``),
  and hedging stops. Entry/exit transitions are counted, gauged
  (``serve.degraded.*``), and appended to ``daemon.events``.
- **Backpressure** — admission beyond the bounded queue sheds with
  :class:`Overloaded` rather than building unbounded backlog.
- **Clean shutdown** — ``stop(drain=True)`` refuses new work, finishes
  every in-flight request, then tears the replicas down.

Everything observable lands in the ``serve.*`` metric family (see
``docs/metrics.md``); the always-on ``daemon.counts`` mirror of the key
counters keeps load reports working with observability disabled.
"""

from __future__ import annotations

import asyncio
import time
from collections import Counter as CountMap
from dataclasses import dataclass, field

import numpy as np

from repro.obs import get_obs
from repro.obs import names as metric_names
from repro.retrieval.engine import QueryEngine, ShardedIndex
from repro.retrieval.mutable import MutationRequest, MutationResult
from repro.retrieval.search import SearchRequest
from repro.rng import make_rng
from repro.serving.batcher import MicroBatcher, PendingRequest
from repro.serving.breaker import CircuitBreaker
from repro.serving.cache import ResultCache, query_signature
from repro.serving.replica import Replica, ReplicaSet

__all__ = [
    "Overloaded",
    "RequestFailed",
    "ServeResult",
    "ServingConfig",
    "ServingDaemon",
]


class Overloaded(RuntimeError):
    """Request shed at admission: the queue hit its backpressure limit."""


class RequestFailed(RuntimeError):
    """Every retry, failover, and degraded fallback was exhausted."""


@dataclass(frozen=True)
class ServingConfig:
    """Tunables for one daemon. Defaults suit CI-scale indexes; the time
    knobs scale together (attempt < hedge budget < request deadline)."""

    default_k: int = 10
    #: Requests coalesced into one scan, and how long to wait for company.
    max_batch_size: int = 32
    batch_delay_s: float = 0.002
    #: Admission queue bound — beyond it requests shed with Overloaded.
    max_queue: int = 1024
    #: End-to-end deadline per request (enqueue to answer).
    request_timeout_s: float = 1.0
    #: Budget for a single replica scan attempt.
    attempt_timeout_s: float = 0.2
    #: Scan attempts per batch, first try included.
    max_attempts: int = 4
    #: Exponential backoff between retries, with seeded +-jitter fraction.
    backoff_base_s: float = 0.002
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    #: Hedge a straggler after this long (None disables hedging).
    hedge_after_s: float | None = 0.05
    #: Result cache geometry.
    cache_capacity: int = 2048
    cache_ttl_s: float = 2.0
    #: Replica health-check period (None disables the heartbeat loop).
    heartbeat_interval_s: float | None = 0.1
    #: Circuit breaker per replica.
    breaker_failure_threshold: int = 3
    breaker_cooldown_s: float = 0.25
    #: Overload degradation: enter at this queue depth, exit at half of it
    #: (hysteresis). None derives max_queue // 2.
    degrade_queue_depth: int | None = None
    #: Replica-loss degradation: degraded while healthy replicas < this.
    #: None derives a majority: (num_replicas + 1) // 2.
    degrade_min_healthy: int | None = None
    #: Degraded scans skip the float64 rerank (raw float32 ranking).
    degraded_skip_rerank: bool = True
    #: Degraded answers truncate to at most this many neighbours (None: off).
    degraded_k_cap: int | None = None
    #: Seed for backoff jitter — runs replay identically.
    seed: int = 0


@dataclass
class ServeResult:
    """One answered request.

    ``source`` is ``"engine"``, ``"cache"`` (fresh hit), or
    ``"cache_stale"`` (expired entry served under degradation);
    ``degraded`` marks answers produced under any degraded mode — outside
    degraded windows results are exactly the engine's serial-parity scan.
    """

    indices: np.ndarray
    distances: np.ndarray
    source: str
    degraded: bool
    latency_s: float
    replica: int | None = None
    attempts: int = 1


@dataclass
class _BatchOutcome:
    indices: np.ndarray
    distances: np.ndarray
    replica: int
    attempts: int
    degraded: bool
    cacheable: bool
    k_served: int
    meta: dict = field(default_factory=dict)


class ServingDaemon:
    """Long-running front end over replicated :class:`QueryEngine` scans.

    Parameters
    ----------
    index:
        The :class:`~repro.retrieval.index.QuantizedIndex` to serve, or a
        :class:`~repro.retrieval.mutable.MutableIndex` — then every
        replica scans the same mutable index (generation snapshots make
        that safe), :meth:`mutate` routes add/remove/compact through it,
        and ``engine_kwargs`` must be configured on the index itself.
    num_replicas:
        Replica engines to spread scans (and failures) over. By default
        all replicas share one :class:`ShardedIndex` — the database is
        materialised once — and scan in-process; pass ``engine_kwargs``
        to give each replica its own engine configuration (e.g. a worker
        pool), at the cost of per-replica index copies.
    faults:
        Optional fault plan (duck-typed ``before_scan`` /
        ``transform_response`` hooks, e.g.
        :class:`repro.resilience.faults.ServingFaults`) handed to every
        replica — production code passes nothing.
    on_event:
        Optional callable for state-change lines (degraded enter/exit,
        replica death/revival); the same lines always accumulate in
        ``daemon.events``.
    query_encoders:
        Optional ``{"full": ..., "light": ...}`` map of query encoders for
        requests that carry *raw features* instead of embeddings
        (``SearchRequest(encoder=...)``). Values expose ``embed(features)
        -> embeddings`` — the trained :class:`~repro.core.model.LightLT`
        for ``"full"``, a distilled
        :class:`~repro.encoding.LightQueryEncoder` for ``"light"``.
        Requests naming an encoder the daemon was not given raise
        ``ValueError``.
    """

    def __init__(
        self,
        index,
        *,
        num_replicas: int = 2,
        config: ServingConfig | None = None,
        faults=None,
        engine_kwargs: dict | None = None,
        on_event=None,
        query_encoders: dict | None = None,
    ) -> None:
        if num_replicas < 1:
            raise ValueError("num_replicas must be at least 1")
        self._query_encoders = dict(query_encoders or {})
        for mode, encoder in self._query_encoders.items():
            if mode not in ("full", "light"):
                raise ValueError(
                    f"query_encoders keys must be 'full'/'light', got {mode!r}"
                )
            if not callable(getattr(encoder, "embed", None)):
                raise ValueError(
                    f"query encoder {mode!r} must expose embed(features)"
                )
        self.config = config or ServingConfig()
        cfg = self.config
        self._index = index
        self._mutable = bool(getattr(index, "is_mutable", False))
        if self._mutable:
            if engine_kwargs:
                raise ValueError(
                    "a MutableIndex owns its engine configuration (pass "
                    "engine_kwargs when constructing the index); the daemon "
                    "does not accept engine_kwargs for mutable indexes"
                )
            # Every replica serves the same mutable index: its generation
            # snapshots make concurrent scans safe, and routing mutations
            # through one object keeps all replicas at the same generation.
            engines = [index for _ in range(num_replicas)]
        elif engine_kwargs:
            engines = [
                QueryEngine(index, **engine_kwargs) for _ in range(num_replicas)
            ]
        else:
            shared = ShardedIndex(index, num_shards=1)
            engines = [
                QueryEngine(shared, parallel="never")
                for _ in range(num_replicas)
            ]
        replicas = [Replica(i, engine, faults=faults) for i, engine in enumerate(engines)]
        breakers = [
            CircuitBreaker(
                failure_threshold=cfg.breaker_failure_threshold,
                cooldown_s=cfg.breaker_cooldown_s,
                name=f"replica-{i}",
            )
            for i in range(num_replicas)
        ]
        self.replica_set = ReplicaSet(replicas, breakers)
        self.cache = ResultCache(
            capacity=cfg.cache_capacity, ttl_s=cfg.cache_ttl_s
        )
        self.batcher = MicroBatcher(
            self._dispatch_group,
            max_batch_size=cfg.max_batch_size,
            max_delay_s=cfg.batch_delay_s,
            max_queue=cfg.max_queue,
        )
        self._min_healthy = (
            cfg.degrade_min_healthy
            if cfg.degrade_min_healthy is not None
            else (num_replicas + 1) // 2
        )
        self._overload_enter = (
            cfg.degrade_queue_depth
            if cfg.degrade_queue_depth is not None
            else max(1, cfg.max_queue // 2)
        )
        self._overload_exit = max(1, self._overload_enter // 2)
        self._rng = make_rng(cfg.seed)
        self._degraded_reasons: set[str] = set()
        self.events: list[str] = []
        self._on_event = on_event
        self.counts: CountMap = CountMap()
        self._accepting = False
        self._heartbeat_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Begin accepting requests; starts the batcher and heartbeats."""
        if self._accepting:
            return
        self.batcher.start()
        if self.config.heartbeat_interval_s is not None:
            self._heartbeat_task = asyncio.create_task(
                self._heartbeat_loop(), name="serve-heartbeat"
            )
        self._accepting = True

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting; with ``drain`` finish all in-flight work first."""
        self._accepting = False
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
            self._heartbeat_task = None
        if drain:
            await self.batcher.drain()
        else:
            await self.batcher.abort()
        for replica in self.replica_set.replicas:
            replica.engine.close()

    async def __aenter__(self) -> "ServingDaemon":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop(drain=True)

    @property
    def dim(self) -> int:
        return self.replica_set.replicas[0].dim

    @property
    def n_db(self) -> int:
        """Searchable rows right now (moves under mutations)."""
        return self.replica_set.replicas[0].n_db

    @property
    def mutable(self) -> bool:
        """True when the served index accepts :meth:`mutate`."""
        return self._mutable

    def _has_ivf(self) -> bool:
        """True when replicas can honour a per-request ``nprobe``.

        Replicas are configured identically (same ``engine_kwargs`` or the
        same mutable index), so the first one answers for all.
        """
        return self.replica_set.replicas[0].has_ivf

    @property
    def degraded(self) -> bool:
        return bool(self._degraded_reasons)

    @property
    def degraded_reasons(self) -> frozenset:
        return frozenset(self._degraded_reasons)

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    async def submit(
        self,
        query: "np.ndarray | SearchRequest",
        k: int | None = None,
    ) -> ServeResult:
        """Serve one query; resolves when an answer (or failure) is final.

        Takes either a raw ``(dim,)`` vector plus ``k``, or a
        :class:`~repro.retrieval.search.SearchRequest` carrying exactly one
        query row — its ``k``, ``nprobe``, ``rerank``, and ``deadline_s``
        fields are honoured (``deadline_s`` overrides the config request
        timeout). ``nprobe`` requires IVF-configured replicas (``repro
        serve --ivf-cells``, ``engine_kwargs={"ivf": ...}``, or a
        MutableIndex built with them) and is forwarded to the scan;
        requests with different search configurations never share a scan
        batch or a cache entry. ``engine`` hints are rejected: the daemon
        owns its engines.

        ``encoder`` requests carry *raw features*: the named query encoder
        (constructor ``query_encoders``) embeds them before the scan, the
        encode timed into ``query.encode.time_s``. The cache signature is
        taken over the raw features plus the encoder mode, so a repeated
        raw query hits the cache without paying even the light encoder —
        and full-path and light-path answers never alias.
        """
        rerank_hint: bool | None = None
        nprobe: int | None = None
        deadline_s: float | None = None
        encoder_mode: str | None = None
        if isinstance(query, SearchRequest):
            if k is not None:
                raise TypeError(
                    "pass search parameters inside the SearchRequest, not "
                    "alongside it"
                )
            request_obj = query
            if request_obj.n_queries != 1:
                raise ValueError(
                    "the daemon serves one query per submit; send one "
                    "request per row (the batcher coalesces them)"
                )
            if request_obj.nprobe is not None and not self._has_ivf():
                raise ValueError(
                    "nprobe was given but the daemon's replica engines have "
                    "no IVF layer; serve with --ivf-cells / "
                    "engine_kwargs={'ivf': ...} to accept per-request nprobe"
                )
            if request_obj.engine is not None:
                raise ValueError(
                    "the daemon owns its engines; requests cannot carry an "
                    "engine hint"
                )
            encoder_mode = request_obj.encoder
            if (
                encoder_mode is not None
                and encoder_mode not in self._query_encoders
            ):
                raise ValueError(
                    f"encoder {encoder_mode!r} requested but the daemon has "
                    "no such query encoder (pass query_encoders= / serve "
                    "with --query-encoder)"
                )
            query = request_obj.queries[0]
            k = request_obj.k
            nprobe = request_obj.nprobe
            rerank_hint = request_obj.rerank
            deadline_s = request_obj.deadline_s
        if not self._accepting:
            raise RuntimeError("daemon is not accepting requests")
        cfg = self.config
        k = cfg.default_k if k is None else int(k)
        if k < 1:
            raise ValueError("k must be at least 1")
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1:
            raise ValueError("query must be a 1-D vector")
        if encoder_mode is None and query.shape[0] != self.dim:
            raise ValueError(f"query must be a ({self.dim},) vector")
        loop = asyncio.get_running_loop()
        start = loop.time()
        obs = get_obs()
        self.counts["requests"] += 1
        depth = self.batcher.qsize()
        if obs.enabled:
            registry = obs.registry
            registry.counter(metric_names.SERVE_REQUESTS_TOTAL).inc()
            registry.histogram(metric_names.SERVE_QUEUE_DEPTH).observe(depth)
        self._update_overload(depth)

        # Signed over the request's raw bytes: for encoder requests that is
        # the *feature* vector plus the mode, so a cache hit skips the
        # encode as well as the scan.
        signature = query_signature(
            query, k, nprobe=nprobe, rerank=rerank_hint, encoder=encoder_mode
        )
        hit = self.cache.get(signature, now=start, allow_stale=self.degraded)
        if hit is not None:
            entry, fresh = hit
            source = "cache" if fresh else "cache_stale"
            self.counts["cache_hits" if fresh else "stale_served"] += 1
            if obs.enabled:
                registry.counter(
                    metric_names.SERVE_CACHE_HITS
                    if fresh
                    else metric_names.SERVE_CACHE_STALE_SERVED
                ).inc()
            return self._finish_ok(
                loop,
                start,
                indices=entry.indices.copy(),
                distances=entry.distances.copy(),
                source=source,
                degraded=not fresh,
                replica=None,
                attempts=0,
            )
        self.counts["cache_misses"] += 1
        if obs.enabled:
            registry.counter(metric_names.SERVE_CACHE_MISSES).inc()

        if encoder_mode is not None:
            encode_start = time.perf_counter()
            query = np.asarray(
                self._query_encoders[encoder_mode].embed(query[None, :])[0],
                dtype=np.float64,
            )
            encode_elapsed = time.perf_counter() - encode_start
            if query.ndim != 1 or query.shape[0] != self.dim:
                raise ValueError(
                    f"query encoder {encoder_mode!r} produced shape "
                    f"{query.shape}, expected ({self.dim},)"
                )
            if obs.enabled:
                registry.histogram(metric_names.QUERY_ENCODE_TIME).observe(
                    encode_elapsed
                )

        timeout_s = (
            deadline_s if deadline_s is not None else cfg.request_timeout_s
        )
        request = PendingRequest(
            query=query,
            k=k,
            future=loop.create_future(),
            enqueue_time=start,
            deadline=start + timeout_s,
            signature=signature,
            rerank=rerank_hint,
            nprobe=nprobe,
        )
        if not self.batcher.try_enqueue(request):
            self.counts["shed"] += 1
            if obs.enabled:
                registry.counter(metric_names.SERVE_REQUESTS_SHED).inc()
            raise Overloaded("request queue full — request shed")
        try:
            indices, distances, meta = await request.future
        except Exception:
            self.counts["failed"] += 1
            if obs.enabled:
                registry.counter(metric_names.SERVE_REQUESTS_FAILED).inc()
            raise
        return self._finish_ok(
            loop,
            start,
            indices=indices,
            distances=distances,
            source=meta["source"],
            degraded=meta["degraded"],
            replica=meta.get("replica"),
            attempts=meta.get("attempts", 1),
        )

    async def mutate(self, request: MutationRequest) -> MutationResult:
        """Apply one mutation to the served index; queries keep flowing.

        Only daemons over a :class:`~repro.retrieval.mutable.MutableIndex`
        accept mutations. The mutation runs on an executor thread (the
        index publishes a new generation atomically, so concurrent scans
        are never interrupted), after which the result cache is cleared —
        every cached answer may have been invalidated by the change.
        """
        if not self._mutable:
            raise RuntimeError(
                "daemon serves an immutable index; serve a MutableIndex to "
                "accept mutations"
            )
        if not self._accepting:
            raise RuntimeError("daemon is not accepting requests")
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(None, self._index.apply, request)
        self.cache.clear()
        self.counts["mutations"] += 1
        if request.op == "compact":
            self._emit(
                f"compacted to generation {result.generation}: "
                f"{result.live} live rows in {result.segments} segment(s)"
            )
        return result

    def _finish_ok(
        self, loop, start, *, indices, distances, source, degraded,
        replica, attempts,
    ) -> ServeResult:
        latency = loop.time() - start
        self.counts["ok"] += 1
        obs = get_obs()
        if obs.enabled:
            obs.registry.counter(metric_names.SERVE_REQUESTS_OK).inc()
            obs.registry.histogram(
                metric_names.SERVE_REQUEST_LATENCY
            ).observe(latency)
        return ServeResult(
            indices=indices,
            distances=distances,
            source=source,
            degraded=degraded,
            latency_s=latency,
            replica=replica,
            attempts=attempts,
        )

    # ------------------------------------------------------------------
    # Batch serving: attempts, failover, hedging
    # ------------------------------------------------------------------
    async def _dispatch_group(self, group: list[PendingRequest]) -> None:
        try:
            await self._serve_batch(group)
        except asyncio.CancelledError:
            # Aborted shutdown: the dispatch dies, but its awaiters must not
            # hang — fail them before propagating the cancellation.
            for request in group:
                if not request.future.done():
                    request.future.set_exception(
                        RuntimeError("serving daemon stopped")
                    )
            raise
        except Exception as exc:  # pragma: no cover - defensive backstop
            for request in group:
                if not request.future.done():
                    request.future.set_exception(exc)

    async def _serve_batch(self, group: list[PendingRequest]) -> None:
        loop = asyncio.get_running_loop()
        cfg = self.config
        queries = np.stack([request.query for request in group])
        k = group[0].k
        deadline = min(request.deadline for request in group)
        degraded = self.degraded
        hint = group[0].rerank
        nprobe = group[0].nprobe
        if hint is not None:
            rerank: bool | None = hint
        else:
            rerank = False if (degraded and cfg.degraded_skip_rerank) else None
        k_scan = k
        if degraded and cfg.degraded_k_cap is not None:
            k_scan = min(k, cfg.degraded_k_cap)
        # Cacheable iff the scan computes exactly what the group's
        # signature (query, k, nprobe, rerank hint) describes: a degraded
        # scan that silently flipped rerank off (hint None, rerank False)
        # or capped k must not land under the healthy key.
        cacheable = rerank == hint and k_scan == k

        attempts = 0
        tried: set[int] = set()
        first_replica: int | None = None
        last_error: Exception | None = None
        outcome: _BatchOutcome | None = None
        while attempts < cfg.max_attempts:
            now = loop.time()
            if now >= deadline:
                break
            candidates = self.replica_set.candidates(now, exclude=tried)
            if not candidates and tried:
                # Every replica has been tried once; start a second lap —
                # a crashed replica may have revived, and backoff already
                # spaced the attempts out.
                tried = set()
                candidates = self.replica_set.candidates(now)
            if not candidates:
                break
            replica = candidates[0]
            breaker = self.replica_set.breaker_for(replica.replica_id)
            if not breaker.allow(now):
                tried.add(replica.replica_id)
                continue
            if first_replica is None:
                first_replica = replica.replica_id
            attempts += 1
            if attempts > 1:
                self._count("retries", metric_names.SERVE_RETRIES_TOTAL)
            budget = min(cfg.attempt_timeout_s, deadline - now)
            try:
                indices, distances, served_by = await self._attempt(
                    replica,
                    queries,
                    k_scan,
                    rerank,
                    budget,
                    tried,
                    allow_hedge=not degraded,
                    nprobe=nprobe,
                )
            except Exception as exc:
                last_error = exc
                tried.add(replica.replica_id)
                self._update_health()
                backoff = self._backoff_delay(attempts)
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                if backoff > 0:
                    await asyncio.sleep(min(backoff, remaining))
                continue
            if served_by != first_replica:
                self._count("failovers", metric_names.SERVE_FAILOVERS_TOTAL)
            outcome = _BatchOutcome(
                indices=indices,
                distances=distances,
                replica=served_by,
                attempts=attempts,
                degraded=degraded,
                cacheable=cacheable,
                k_served=k_scan,
            )
            break

        if outcome is not None:
            self._resolve_group(group, outcome, loop)
            return
        self._resolve_exhausted(group, last_error, loop)

    async def _attempt(
        self,
        replica: Replica,
        queries: np.ndarray,
        k: int,
        rerank: bool | None,
        budget_s: float,
        tried: set[int],
        allow_hedge: bool,
        nprobe: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """One scan attempt, hedged once if it straggles.

        Returns ``(indices, distances, replica_id)`` from whichever task
        finished first with a valid answer; raises the primary's error (or
        a timeout) when nothing succeeded inside the budget. Late
        finishers are detached, their outcome still feeding the breaker.
        """
        loop = asyncio.get_running_loop()
        cfg = self.config
        attempt_deadline = loop.time() + budget_s
        running: dict[asyncio.Task, Replica] = {
            self._scan_task(replica, queries, k, rerank, nprobe): replica
        }
        hedge_wait = (
            cfg.hedge_after_s
            if allow_hedge
            and cfg.hedge_after_s is not None
            and cfg.hedge_after_s < budget_s
            else None
        )
        last_error: Exception | None = None
        hedged = False
        while running:
            if hedge_wait is not None and not hedged:
                timeout = min(hedge_wait, attempt_deadline - loop.time())
            else:
                timeout = attempt_deadline - loop.time()
            if timeout <= 0:
                break
            done, _ = await asyncio.wait(
                set(running), timeout=timeout,
                return_when=asyncio.FIRST_COMPLETED,
            )
            now = loop.time()
            if not done:
                if hedge_wait is not None and not hedged:
                    hedged = True
                    hedge_replica = self._pick_hedge(
                        now, tried | {r.replica_id for r in running.values()}
                    )
                    if hedge_replica is not None:
                        self._count("hedges", metric_names.SERVE_HEDGES_TOTAL)
                        running[
                            self._scan_task(
                                hedge_replica, queries, k, rerank, nprobe
                            )
                        ] = hedge_replica
                    continue
                break
            for task in done:
                task_replica = running.pop(task)
                breaker = self.replica_set.breaker_for(task_replica.replica_id)
                error = task.exception()
                if error is None:
                    breaker.record_success(now)
                    self.replica_set.mark_healthy(task_replica.replica_id)
                    for straggler, straggler_replica in running.items():
                        self._detach(straggler, straggler_replica)
                    indices, distances = task.result()
                    return indices, distances, task_replica.replica_id
                last_error = error
                self._record_scan_failure(task_replica, error, now)
        # Attempt timed out (or every racer failed): abandon what's still
        # running — an abandoned straggler counts as a breaker failure now,
        # and its eventual real outcome is folded in by the detach hook.
        now = loop.time()
        for task, task_replica in running.items():
            self._record_scan_failure(
                task_replica,
                TimeoutError(f"scan attempt exceeded {budget_s:.3f}s"),
                now,
            )
            self._detach(task, task_replica)
        if last_error is None:
            last_error = TimeoutError(
                f"scan attempt exceeded {budget_s:.3f}s budget"
            )
        raise last_error

    def _scan_task(
        self, replica: Replica, queries: np.ndarray, k: int,
        rerank: bool | None, nprobe: int | None = None,
    ) -> asyncio.Task:
        loop = asyncio.get_running_loop()

        async def scan():
            return await loop.run_in_executor(
                None,
                lambda: replica.search(queries, k, rerank=rerank, nprobe=nprobe),
            )

        return asyncio.create_task(scan())

    def _pick_hedge(self, now: float, exclude: set[int]) -> Replica | None:
        candidates = self.replica_set.candidates(now, exclude=exclude)
        for candidate in candidates:
            breaker = self.replica_set.breaker_for(candidate.replica_id)
            if breaker.allow(now):
                return candidate
        return None

    def _detach(self, task: asyncio.Task, replica: Replica) -> None:
        """Let an abandoned scan finish on its own; harvest its outcome."""

        def harvest(finished: asyncio.Task) -> None:
            if finished.cancelled():
                return
            error = finished.exception()
            try:
                now = asyncio.get_running_loop().time()
            except RuntimeError:  # pragma: no cover - loop already gone
                return
            breaker = self.replica_set.breaker_for(replica.replica_id)
            if error is None:
                breaker.record_success(now)
                self.replica_set.mark_healthy(replica.replica_id)
            else:
                self._record_scan_failure(replica, error, now)

        task.add_done_callback(harvest)

    def _record_scan_failure(
        self, replica: Replica, error: Exception, now: float
    ) -> None:
        breaker = self.replica_set.breaker_for(replica.replica_id)
        breaker.record_failure(now)
        if type(error).__name__ == "ReplicaCrash":
            if self.replica_set.states.get(replica.replica_id) != "dead":
                self._emit(f"replica {replica.replica_id} crashed; failing over")
            self.replica_set.mark_dead(replica.replica_id)
        self._update_health()

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _resolve_group(
        self, group: list[PendingRequest], outcome: _BatchOutcome, loop
    ) -> None:
        now = loop.time()
        meta = {
            "source": "engine",
            "degraded": outcome.degraded,
            "replica": outcome.replica,
            "attempts": outcome.attempts,
        }
        for row, request in enumerate(group):
            indices = outcome.indices[row]
            distances = outcome.distances[row]
            if outcome.cacheable:
                self.cache.put(request.signature, indices, distances, now)
            if not request.future.done():
                request.future.set_result((indices, distances, meta))

    def _resolve_exhausted(
        self, group: list[PendingRequest], last_error, loop
    ) -> None:
        """Attempts are gone: stale cache is the last resort, else fail."""
        now = loop.time()
        for request in group:
            if request.future.done():
                continue
            hit = self.cache.get(request.signature, now=now, allow_stale=True)
            if hit is not None:
                entry, _fresh = hit
                self._count(
                    "stale_served", metric_names.SERVE_CACHE_STALE_SERVED
                )
                meta = {
                    "source": "cache_stale",
                    "degraded": True,
                    "replica": None,
                    "attempts": self.config.max_attempts,
                }
                request.future.set_result(
                    (entry.indices.copy(), entry.distances.copy(), meta)
                )
                continue
            request.future.set_exception(
                RequestFailed(
                    "request exhausted retries, failover, and degraded "
                    f"fallbacks (last error: {last_error!r})"
                )
            )

    # ------------------------------------------------------------------
    # Degradation state machine
    # ------------------------------------------------------------------
    def _update_overload(self, depth: int) -> None:
        if depth >= self._overload_enter:
            self._set_degraded("overload", True)
        elif depth <= self._overload_exit:
            self._set_degraded("overload", False)

    def _update_health(self) -> None:
        healthy = self.replica_set.healthy_count()
        self._set_degraded("replica_loss", healthy < self._min_healthy)

    def _set_degraded(self, reason: str, active: bool) -> None:
        before = bool(self._degraded_reasons)
        if active:
            self._degraded_reasons.add(reason)
        else:
            self._degraded_reasons.discard(reason)
        after = bool(self._degraded_reasons)
        if before == after:
            return
        self.counts["degraded_transitions"] += 1
        obs = get_obs()
        if obs.enabled:
            obs.registry.counter(
                metric_names.SERVE_DEGRADED_TRANSITIONS
            ).inc()
            obs.registry.gauge(metric_names.SERVE_DEGRADED_ACTIVE).set(
                1.0 if after else 0.0
            )
        if after:
            reasons = ", ".join(sorted(self._degraded_reasons))
            self._emit(f"degraded mode entered ({reasons})")
        else:
            self._emit("degraded mode exited")

    def _emit(self, line: str) -> None:
        self.events.append(line)
        if self._on_event is not None:
            self._on_event(line)

    def _count(self, key: str, metric: str) -> None:
        self.counts[key] += 1
        obs = get_obs()
        if obs.enabled:
            obs.registry.counter(metric).inc()

    def _backoff_delay(self, attempt: int) -> float:
        cfg = self.config
        base = cfg.backoff_base_s * (cfg.backoff_factor ** max(0, attempt - 1))
        jitter = 1.0 + cfg.backoff_jitter * (2.0 * float(self._rng.random()) - 1.0)
        return max(0.0, base * jitter)

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------
    async def _heartbeat_loop(self) -> None:
        interval = self.config.heartbeat_interval_s
        assert interval is not None
        while True:
            await asyncio.sleep(interval)
            await self._heartbeat_once()

    async def _heartbeat_once(self) -> None:
        """Ping every replica concurrently; apply outcomes on the loop."""
        loop = asyncio.get_running_loop()

        async def ping(replica: Replica) -> tuple[int, bool]:
            try:
                await asyncio.wait_for(
                    loop.run_in_executor(None, replica.ping),
                    timeout=self.config.attempt_timeout_s,
                )
            except Exception:
                return replica.replica_id, False
            return replica.replica_id, True

        outcomes = await asyncio.gather(
            *(ping(replica) for replica in self.replica_set.replicas)
        )
        now = loop.time()
        for replica_id, alive in outcomes:
            breaker = self.replica_set.breaker_for(replica_id)
            was = self.replica_set.states.get(replica_id)
            if alive:
                breaker.record_success(now)
                self.replica_set.mark_healthy(replica_id)
                if was == "dead":
                    self._emit(f"replica {replica_id} revived by heartbeat")
            else:
                breaker.record_failure(now)
                if was != "dead":
                    self._emit(f"replica {replica_id} failed heartbeat")
                self.replica_set.mark_dead(replica_id)
        self._update_health()
