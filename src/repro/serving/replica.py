"""Replica workers: engine copies with health state and response checking.

A :class:`Replica` wraps one :class:`~repro.retrieval.engine.QueryEngine`
and is the unit of failover. Every scan passes two duck-typed hook points
(``faults.before_scan`` / ``faults.transform_response`` — see
:mod:`repro.resilience.faults`) and then a response validator, so an
injected crash, straggler stall, or bit-flipped payload surfaces as a
typed exception the daemon can retry somewhere else. Replicas are plain
in-process objects: the point of this layer is the *protocol* (health,
failover, validation), which is identical whether the scan runs in-process
or on a remote box.

:class:`ReplicaSet` tracks liveness. A replica is served traffic only
while it is both **healthy** (no unrecovered crash; heartbeats answer)
and its circuit breaker admits traffic. Heartbeats are tiny real scans —
they exercise the same code path a request does, so a replica that can
answer a heartbeat can answer a query.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.obs import get_obs
from repro.obs import names as metric_names
from repro.serving.breaker import CircuitBreaker

__all__ = [
    "Replica",
    "ReplicaSet",
    "ResponseValidationError",
    "validate_response",
]

HEALTHY = "healthy"
DEAD = "dead"


class ResponseValidationError(RuntimeError):
    """A scan response failed the sanity contract (corruption suspected)."""


def validate_response(
    indices: np.ndarray,
    distances: np.ndarray,
    n_db: int,
    n_queries: int,
    k: int,
    *,
    id_bound: int | None = None,
    exact_width: bool = True,
) -> None:
    """Reject responses that cannot have come from a correct scan.

    Checks shape, id range, distance sanity (finite, non-negative —
    squared distances), and per-row monotone ordering. Raises
    :class:`ResponseValidationError`; silent in-range id swaps are
    undetectable here by design — that is what the exact-parity tests and
    the rerank oracle are for.

    A mutable engine returns *external* ids and its live count moves under
    concurrent mutations, so for those scans the caller passes the index's
    ``id_bound`` (ids never exceed it, whatever raced) and
    ``exact_width=False`` (the answer is as wide as the live count at
    snapshot time, which the validator cannot re-derive — only ``k`` still
    bounds it).
    """
    bound = n_db if id_bound is None else id_bound
    expected = (n_queries, min(k, n_db))
    if exact_width:
        if indices.shape != expected or distances.shape != expected:
            raise ResponseValidationError(
                f"response shape {indices.shape}/{distances.shape}, "
                f"expected {expected}"
            )
    else:
        if (
            indices.shape != distances.shape
            or indices.ndim != 2
            or indices.shape[0] != n_queries
            or indices.shape[1] > k
        ):
            raise ResponseValidationError(
                f"response shape {indices.shape}/{distances.shape}, "
                f"expected ({n_queries}, <= {k})"
            )
    if indices.size == 0:
        return
    if indices.min() < 0 or indices.max() >= bound:
        raise ResponseValidationError(f"response ids outside [0, {bound})")
    if not np.isfinite(distances).all() or distances.min() < 0:
        raise ResponseValidationError("response distances non-finite or negative")
    if np.any(np.diff(distances, axis=1) < 0):
        raise ResponseValidationError("response distances not sorted per row")


class Replica:
    """One engine copy plus its fault hooks and call counter.

    Scan calls are numbered 1.. per replica under a lock (scans run on
    executor threads), giving fault plans their deterministic
    ``(replica, call)`` coordinates.
    """

    def __init__(self, replica_id: int, engine, faults=None) -> None:
        self.replica_id = int(replica_id)
        self.engine = engine
        self.faults = faults
        self.calls = 0
        self._lock = threading.Lock()

    @property
    def n_db(self) -> int:
        return self.engine.n_db

    @property
    def dim(self) -> int:
        return self.engine.dim

    @property
    def mutable(self) -> bool:
        """True when the engine is a mutable index (external-id results)."""
        return bool(getattr(self.engine, "is_mutable", False))

    @property
    def has_ivf(self) -> bool:
        """True when the engine can honour a per-request ``nprobe``."""
        return getattr(self.engine, "ivf", None) is not None

    def search(
        self,
        queries: np.ndarray,
        k: int,
        *,
        rerank: bool | None = None,
        nprobe: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One validated scan; raises on injected or detected failure."""
        with self._lock:
            self.calls += 1
            call = self.calls
        if self.faults is not None:
            self.faults.before_scan(self.replica_id, call)
        hints: dict = {"rerank": rerank}
        if nprobe is not None:
            # Passed through only when set: non-IVF engines reject the
            # kwarg with a clear error, and the daemon screens for that at
            # admission so it never reaches a scan.
            hints["nprobe"] = nprobe
        indices, distances = self.engine.search_with_distances(
            queries, k=k, **hints
        )
        if self.faults is not None:
            indices, distances = self.faults.transform_response(
                self.replica_id, call, indices, distances
            )
        if self.mutable:
            validate_response(
                indices,
                distances,
                self.n_db,
                len(queries),
                k,
                id_bound=self.engine.id_bound,
                exact_width=False,
            )
        else:
            validate_response(indices, distances, self.n_db, len(queries), k)
        return indices, distances

    def ping(self) -> None:
        """Heartbeat: a real single-row scan through the full search path."""
        probe = np.zeros((1, self.dim), dtype=np.float64)
        self.search(probe, k=1)


class ReplicaSet:
    """Liveness + breaker bookkeeping over a fixed set of replicas.

    ``candidates`` yields servable replicas in rotation order so load
    spreads and failover has a deterministic "next" replica;
    ``mark_dead`` / ``mark_healthy`` are driven by scan outcomes and
    heartbeats. The healthy count is exported via the
    ``serve.replicas.healthy`` gauge on every change.
    """

    def __init__(self, replicas: list[Replica], breakers: list[CircuitBreaker]):
        if not replicas:
            raise ValueError("at least one replica is required")
        if len(replicas) != len(breakers):
            raise ValueError("one breaker per replica")
        self.replicas = list(replicas)
        self.breakers = list(breakers)
        self.states = {r.replica_id: HEALTHY for r in self.replicas}
        self._rotation = 0
        self._publish_health()

    def __len__(self) -> int:
        return len(self.replicas)

    def breaker_for(self, replica_id: int) -> CircuitBreaker:
        for replica, breaker in zip(self.replicas, self.breakers):
            if replica.replica_id == replica_id:
                return breaker
        raise KeyError(replica_id)

    def healthy_count(self) -> int:
        return sum(1 for state in self.states.values() if state == HEALTHY)

    def _publish_health(self) -> None:
        obs = get_obs()
        if obs.enabled:
            obs.registry.gauge(metric_names.SERVE_REPLICAS_HEALTHY).set(
                float(self.healthy_count())
            )

    def mark_dead(self, replica_id: int) -> None:
        if self.states.get(replica_id) != DEAD:
            self.states[replica_id] = DEAD
            self._publish_health()

    def mark_healthy(self, replica_id: int) -> None:
        if self.states.get(replica_id) != HEALTHY:
            self.states[replica_id] = HEALTHY
            self._publish_health()

    def candidates(
        self, now: float, exclude: set[int] | None = None
    ) -> list[Replica]:
        """Servable replicas, rotated for spread, minus ``exclude``.

        A dead replica is still offered *last* when nothing else is left —
        with every replica down, attempting the corpse (it may have
        revived) beats refusing outright; its breaker still gates the
        attempt rate.
        """
        exclude = exclude or set()
        n = len(self.replicas)
        rotated = [self.replicas[(self._rotation + i) % n] for i in range(n)]
        self._rotation = (self._rotation + 1) % n
        alive = [
            r for r in rotated
            if r.replica_id not in exclude
            and self.states[r.replica_id] == HEALTHY
            and self.breaker_for(r.replica_id).would_allow(now)
        ]
        if alive:
            return alive
        return [
            r for r in rotated
            if r.replica_id not in exclude
            and self.breaker_for(r.replica_id).would_allow(now)
        ]

    def heartbeat(self, now: float) -> dict[int, bool]:
        """Ping every replica; update liveness and breakers. Returns
        ``{replica_id: alive}`` for this round.

        Dead replicas are pinged too — a successful heartbeat is how a
        revived replica rejoins the rotation.
        """
        outcomes: dict[int, bool] = {}
        for replica in self.replicas:
            breaker = self.breaker_for(replica.replica_id)
            try:
                replica.ping()
            except Exception:
                outcomes[replica.replica_id] = False
                breaker.record_failure(now)
                self.mark_dead(replica.replica_id)
            else:
                outcomes[replica.replica_id] = True
                breaker.record_success(now)
                self.mark_healthy(replica.replica_id)
        return outcomes
