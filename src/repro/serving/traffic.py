"""Traffic generation and latency reporting for the serving daemon.

Two canonical load shapes:

- **Closed loop** (:meth:`TrafficGenerator.run_closed`) — ``clients``
  concurrent workers, each submitting its next request the moment the
  previous one answers. Throughput is whatever the daemon sustains;
  latency under this shape measures service time plus queueing from the
  fixed concurrency.
- **Open loop** (:meth:`TrafficGenerator.run_open`) — requests arrive on a
  fixed schedule (``qps``) regardless of completions, the shape that
  exposes queue buildup and shedding: a daemon slower than the arrival
  rate cannot hide it by slowing the clients down.

Queries are drawn from a seeded pool (``make_rng``), so two runs submit
the identical request sequence. The collected :class:`LoadReport` computes
p50/p95/p99 latency and QPS from the raw per-request records — these are
the numbers the bench ``serve`` phase persists.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

import numpy as np

from repro.rng import make_rng

__all__ = ["LoadReport", "RequestRecord", "TrafficGenerator"]


@dataclass
class RequestRecord:
    """One submitted request's fate."""

    index: int
    ok: bool
    latency_s: float
    source: str  # "engine" | "cache" | "cache_stale" | "" on failure
    degraded: bool
    error: str = ""


@dataclass
class LoadReport:
    """Aggregate view of one traffic run."""

    records: list[RequestRecord]
    wall_s: float

    @property
    def n_requests(self) -> int:
        return len(self.records)

    @property
    def n_ok(self) -> int:
        return sum(1 for r in self.records if r.ok)

    @property
    def n_failed(self) -> int:
        return self.n_requests - self.n_ok

    @property
    def n_degraded(self) -> int:
        return sum(1 for r in self.records if r.ok and r.degraded)

    @property
    def qps(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.n_ok / self.wall_s

    def latency_percentile(self, q: float) -> float:
        """Latency percentile (seconds) over *successful* requests."""
        latencies = [r.latency_s for r in self.records if r.ok]
        if not latencies:
            return float("nan")
        return float(np.percentile(np.asarray(latencies, dtype=np.float64), q))

    def as_dict(self) -> dict:
        """The bench-schema payload for a ``serve`` phase."""
        return {
            "requests": self.n_requests,
            "ok": self.n_ok,
            "failed": self.n_failed,
            "degraded": self.n_degraded,
            "wall_s": self.wall_s,
            "qps": self.qps,
            "latency_p50_ms": self.latency_percentile(50) * 1e3,
            "latency_p95_ms": self.latency_percentile(95) * 1e3,
            "latency_p99_ms": self.latency_percentile(99) * 1e3,
        }

    def summary_lines(self) -> list[str]:
        stats = self.as_dict()
        return [
            f"requests: {stats['requests']}  ok: {stats['ok']}  "
            f"failed: {stats['failed']}  degraded: {stats['degraded']}",
            f"qps: {stats['qps']:.1f}  wall: {stats['wall_s']:.3f}s",
            "latency ms  p50: {:.3f}  p95: {:.3f}  p99: {:.3f}".format(
                stats["latency_p50_ms"],
                stats["latency_p95_ms"],
                stats["latency_p99_ms"],
            ),
        ]


class TrafficGenerator:
    """Seeded query traffic against one :class:`ServingDaemon`.

    ``query_pool`` rows are the candidate queries; each request draws a
    row (with replacement) from a ``make_rng(seed)`` stream, so the exact
    request sequence replays across runs and processes. With ``encoder``
    set, the pool rows are *raw features* and every request carries that
    query-encoder mode (the daemon embeds them through its registered
    encoder before the scan).
    """

    def __init__(
        self,
        daemon,
        query_pool: np.ndarray,
        *,
        k: int | None = None,
        seed: int = 0,
        encoder: str | None = None,
    ) -> None:
        query_pool = np.asarray(query_pool, dtype=np.float64)
        if query_pool.ndim != 2 or len(query_pool) == 0:
            raise ValueError("query_pool must be a non-empty (n, dim) array")
        self.daemon = daemon
        self.query_pool = query_pool
        self.k = k
        self._order: np.ndarray | None = None
        self.seed = seed
        self.encoder = encoder

    def _schedule(self, n_requests: int) -> np.ndarray:
        rng = make_rng(self.seed)
        return rng.integers(0, len(self.query_pool), size=n_requests)

    async def _one(self, index: int, pool_row: int) -> RequestRecord:
        loop = asyncio.get_running_loop()
        start = loop.time()
        try:
            if self.encoder is None:
                result = await self.daemon.submit(
                    self.query_pool[pool_row], k=self.k
                )
            else:
                from repro.retrieval.search import SearchRequest

                result = await self.daemon.submit(
                    SearchRequest(
                        queries=self.query_pool[pool_row][None, :],
                        k=self.k,
                        encoder=self.encoder,
                    )
                )
        except Exception as exc:
            return RequestRecord(
                index=index,
                ok=False,
                latency_s=loop.time() - start,
                source="",
                degraded=False,
                error=f"{type(exc).__name__}: {exc}",
            )
        return RequestRecord(
            index=index,
            ok=True,
            latency_s=result.latency_s,
            source=result.source,
            degraded=result.degraded,
        )

    async def run_closed(
        self, n_requests: int, clients: int = 8
    ) -> LoadReport:
        """Closed loop: ``clients`` workers, back-to-back requests each."""
        if n_requests < 1:
            raise ValueError("n_requests must be at least 1")
        if clients < 1:
            raise ValueError("clients must be at least 1")
        schedule = self._schedule(n_requests)
        loop = asyncio.get_running_loop()
        next_index = 0
        records: list[RequestRecord] = []

        async def worker() -> None:
            nonlocal next_index
            while True:
                index = next_index
                if index >= n_requests:
                    return
                next_index += 1
                records.append(await self._one(index, int(schedule[index])))

        start = loop.time()
        await asyncio.gather(
            *(worker() for _ in range(min(clients, n_requests)))
        )
        wall = loop.time() - start
        records.sort(key=lambda r: r.index)
        return LoadReport(records=records, wall_s=wall)

    async def run_open(self, qps: float, n_requests: int) -> LoadReport:
        """Open loop: fixed arrival rate, completions be damned."""
        if qps <= 0:
            raise ValueError("qps must be positive")
        if n_requests < 1:
            raise ValueError("n_requests must be at least 1")
        schedule = self._schedule(n_requests)
        loop = asyncio.get_running_loop()
        interval = 1.0 / qps
        start = loop.time()
        tasks: list[asyncio.Task] = []
        for index in range(n_requests):
            target = start + index * interval
            delay = target - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(
                asyncio.create_task(self._one(index, int(schedule[index])))
            )
        records = list(await asyncio.gather(*tasks))
        wall = loop.time() - start
        records.sort(key=lambda r: r.index)
        return LoadReport(records=records, wall_s=wall)
