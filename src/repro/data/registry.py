"""Named dataset profiles matching Table I of the paper.

Each profile describes one of the four benchmark corpora (CIFAR-100,
ImageNet-100, Amazon News "NC", Amazon queries "QBA") at the two imbalance
factors studied (IF ∈ {50, 100}). ``scale="paper"`` reproduces Table I's
split sizes exactly (π₁, n_query, n_db); ``scale="ci"`` shrinks everything
so a full experiment runs in seconds while keeping the class counts, the
Zipf shape, and the relative difficulty ordering of the datasets.

The feature generator parameters encode the paper's qualitative findings:

- ImageNet-100 features are better separated than CIFAR-100's because the
  ResNet-34 backbone was pre-trained on ImageNet (§V-B).
- The text profiles (NC, QBA) carry higher intra-class variance than the
  image profiles (§V-C: "the variance within the NC label is greater than
  that within the Cifar100 label").
- NC has only 10 classes and therefore much higher absolute MAP than QBA's
  25-way fine-grained query matching (Table III).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import RetrievalDataset, Split
from repro.data.longtail import labels_from_sizes, zipf_class_sizes
from repro.data.synthetic import make_feature_model
from repro.rng import make_rng, spawn


@dataclass(frozen=True)
class DatasetProfile:
    """Static description of one benchmark corpus."""

    name: str
    modality: str  # "image" or "text"
    num_classes: int
    # Table I quantities at paper scale.
    paper_head_size: int
    paper_n_query: int
    paper_n_db: dict  # keyed by imbalance factor
    paper_dim: int
    # CI-scale equivalents.
    ci_head_size: int
    ci_n_query: int
    ci_n_db: int
    ci_dim: int
    # Feature-model difficulty knobs.
    separation: float
    intra_sigma: float
    nuisance_dim: int
    nuisance_sigma: float


PROFILES: dict[str, DatasetProfile] = {
    "cifar100": DatasetProfile(
        name="cifar100",
        modality="image",
        num_classes=100,
        paper_head_size=500,
        paper_n_query=10_000,
        paper_n_db={50: 50_000, 100: 50_000},
        paper_dim=512,
        ci_head_size=150,
        ci_n_query=300,
        ci_n_db=1_500,
        ci_dim=32,
        separation=2.2,
        intra_sigma=0.5,
        nuisance_dim=4,
        nuisance_sigma=0.25,
    ),
    "imagenet100": DatasetProfile(
        name="imagenet100",
        modality="image",
        num_classes=100,
        paper_head_size=1_300,
        paper_n_query=5_000,
        paper_n_db={50: 130_000, 100: 130_000},
        paper_dim=512,
        ci_head_size=250,
        ci_n_query=300,
        ci_n_db=1_500,
        ci_dim=32,
        separation=3.0,  # ResNet-34 pre-trained on ImageNet => cleaner features
        intra_sigma=0.5,
        nuisance_dim=4,
        nuisance_sigma=0.2,
    ),
    "nc": DatasetProfile(
        name="nc",
        modality="text",
        num_classes=10,
        paper_head_size=29_000,
        paper_n_query=2_000,
        paper_n_db={50: 65_000, 100: 72_000},
        paper_dim=768,
        ci_head_size=400,
        ci_n_query=200,
        ci_n_db=1_200,
        ci_dim=32,
        separation=3.0,
        intra_sigma=0.7,  # §V-C: text classes have high within-class variance
        nuisance_dim=6,
        nuisance_sigma=0.3,
    ),
    "qba": DatasetProfile(
        name="qba",
        modality="text",
        num_classes=25,
        paper_head_size=10_000,
        paper_n_query=5_000,
        paper_n_db={50: 636_000, 100: 642_000},
        paper_dim=768,
        ci_head_size=300,
        ci_n_query=250,
        ci_n_db=2_000,
        ci_dim=32,
        separation=2.6,  # fine-grained query intent matching is the hardest task
        intra_sigma=0.7,
        nuisance_dim=6,
        nuisance_sigma=0.3,
    ),
}

IMAGE_DATASETS = ("cifar100", "imagenet100")
TEXT_DATASETS = ("nc", "qba")
SUPPORTED_IMBALANCE_FACTORS = (50, 100)


def available_datasets() -> list[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(PROFILES)


def load_dataset(
    name: str,
    imbalance_factor: int = 50,
    scale: str = "ci",
    seed: int = 0,
) -> RetrievalDataset:
    """Materialise a named long-tail retrieval dataset.

    Parameters
    ----------
    name:
        One of :func:`available_datasets`.
    imbalance_factor:
        Target ``IF`` of the training split, 50 or 100 as in the paper.
    scale:
        ``"paper"`` for Table I sizes, ``"ci"`` for a fast shrunken variant.
    seed:
        Seed controlling both the feature model and the sampled splits. The
        feature model depends only on ``(name, seed)``, so the IF=50 and
        IF=100 variants of a dataset share class geometry, as in the paper
        where they are subsamples of the same corpus.
    """
    profile = _get_profile(name)
    if imbalance_factor not in SUPPORTED_IMBALANCE_FACTORS:
        raise ValueError(
            f"imbalance_factor must be one of {SUPPORTED_IMBALANCE_FACTORS}, "
            f"got {imbalance_factor}"
        )
    if scale not in ("paper", "ci"):
        raise ValueError(f"scale must be 'paper' or 'ci', got {scale!r}")

    if scale == "paper":
        head_size = profile.paper_head_size
        n_query = profile.paper_n_query
        n_db = profile.paper_n_db[imbalance_factor]
        dim = profile.paper_dim
    else:
        head_size = profile.ci_head_size
        n_query = profile.ci_n_query
        n_db = profile.ci_n_db
        dim = profile.ci_dim

    # The feature model is seeded independently of the split RNGs so that a
    # given (name, seed) pair always describes the same underlying "corpus".
    model_rng, train_rng, query_rng, db_rng, val_rng = spawn(make_rng(seed), 5)
    feature_model = make_feature_model(
        num_classes=profile.num_classes,
        dim=dim,
        separation=profile.separation,
        intra_sigma=profile.intra_sigma,
        rng=model_rng,
        nuisance_dim=profile.nuisance_dim,
        nuisance_sigma=profile.nuisance_sigma,
    )

    train_sizes = zipf_class_sizes(profile.num_classes, head_size, imbalance_factor)
    train_labels = labels_from_sizes(train_sizes, rng=train_rng)
    query_labels = _balanced_labels(profile.num_classes, n_query, query_rng)
    db_labels = _balanced_labels(profile.num_classes, n_db, db_rng)
    # Held-out validation queries for hyper-parameter / soup selection
    # (§V-A4 tunes on a validation set); sized like a fifth of the queries.
    n_val = max(5 * profile.num_classes, n_query // 2)
    val_labels = _balanced_labels(profile.num_classes, n_val, val_rng)

    train = Split(feature_model.sample(train_labels, train_rng), train_labels)
    query = Split(feature_model.sample(query_labels, query_rng), query_labels)
    database = Split(feature_model.sample(db_labels, db_rng), db_labels)
    validation = Split(feature_model.sample(val_labels, val_rng), val_labels)

    return RetrievalDataset(
        name=profile.name,
        num_classes=profile.num_classes,
        target_imbalance_factor=float(imbalance_factor),
        train=train,
        query=query,
        database=database,
        validation=validation,
        metadata={
            "modality": profile.modality,
            "scale": scale,
            "dim": dim,
            "seed": seed,
        },
    )


def _get_profile(name: str) -> DatasetProfile:
    try:
        return PROFILES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        ) from None


def _balanced_labels(num_classes: int, total: int, rng: np.random.Generator) -> np.ndarray:
    """Label vector of length ``total`` spread as evenly as possible."""
    base = total // num_classes
    remainder = total - base * num_classes
    sizes = np.full(num_classes, base, dtype=np.int64)
    if remainder:
        bonus = rng.choice(num_classes, size=remainder, replace=False)
        sizes[bonus] += 1
    return labels_from_sizes(sizes, rng=rng)
