"""``repro.data`` — long-tail dataset substrate.

Implements Definition 1 (Zipf class sizes, imbalance factor), the class
weighting of Eqn. (12), Table I's dataset profiles as seeded synthetic
feature generators, and batch loading utilities.
"""

from repro.data.datasets import RetrievalDataset, Split
from repro.data.loader import BalancedDataLoader, DataLoader
from repro.data.longtail import (
    LongTailSpec,
    StreamStep,
    class_counts,
    class_weights,
    head_tail_split,
    imbalance_factor,
    labels_from_sizes,
    stream_arrivals,
    zipf_class_sizes,
    zipf_exponent,
)
from repro.data.registry import (
    IMAGE_DATASETS,
    PROFILES,
    SUPPORTED_IMBALANCE_FACTORS,
    TEXT_DATASETS,
    available_datasets,
    load_dataset,
)
from repro.data.synthetic import (
    FeatureModel,
    hierarchy_feature_model,
    make_feature_model,
    sample_to_memmap,
)
from repro.data.transforms import Standardizer, add_gaussian_noise, center

__all__ = [
    "BalancedDataLoader",
    "DataLoader",
    "FeatureModel",
    "IMAGE_DATASETS",
    "LongTailSpec",
    "PROFILES",
    "RetrievalDataset",
    "SUPPORTED_IMBALANCE_FACTORS",
    "Split",
    "Standardizer",
    "StreamStep",
    "TEXT_DATASETS",
    "add_gaussian_noise",
    "available_datasets",
    "center",
    "class_counts",
    "class_weights",
    "head_tail_split",
    "hierarchy_feature_model",
    "imbalance_factor",
    "labels_from_sizes",
    "load_dataset",
    "make_feature_model",
    "sample_to_memmap",
    "stream_arrivals",
    "zipf_class_sizes",
    "zipf_exponent",
]
