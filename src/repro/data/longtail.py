"""Long-tail dataset construction per Definition 1 of the paper.

A dataset is *long-tail* when the sorted class sizes follow a power law
``π_i = π_1 · i^{-p}`` (Zipf's law); the imbalance factor is ``IF = π_1/π_C``.
This module computes the class-size profile for a requested ``(C, π_1, IF)``
triple, draws label arrays matching it, and derives the class weights used
by the class-weighted cross-entropy loss of Eqn. (12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.rng import make_rng


def zipf_exponent(num_classes: int, imbalance_factor: float) -> float:
    """Exponent ``p`` such that ``π_C/π_1 = C^{-p} = 1/IF``.

    Follows Definition 1: with ``π_i = π_1 · i^{-p}``, the imbalance factor
    ``π_1/π_C`` equals ``C^{p}``, so ``p = ln(IF)/ln(C)``.
    """
    if num_classes < 2:
        raise ValueError("a long-tail dataset needs at least two classes")
    if imbalance_factor < 1:
        raise ValueError("imbalance factor must be >= 1")
    return math.log(imbalance_factor) / math.log(num_classes)


def zipf_class_sizes(
    num_classes: int,
    head_size: int,
    imbalance_factor: float,
    min_size: int = 1,
) -> np.ndarray:
    """Sorted (descending) class sizes following Zipf's law.

    Parameters
    ----------
    num_classes:
        ``C`` in the paper's notation.
    head_size:
        ``π_1``, the size of the largest class.
    imbalance_factor:
        ``IF = π_1 / π_C``.
    min_size:
        Floor applied after rounding so every class keeps at least one item.
    """
    exponent = zipf_exponent(num_classes, imbalance_factor)
    ranks = np.arange(1, num_classes + 1, dtype=np.float64)
    sizes = np.round(head_size * ranks**-exponent).astype(np.int64)
    return np.maximum(sizes, min_size)


def imbalance_factor(class_sizes: np.ndarray) -> float:
    """Measured ``IF = max/min`` of a class-size vector (Definition 1)."""
    sizes = np.asarray(class_sizes, dtype=np.float64)
    if sizes.size == 0 or (sizes <= 0).any():
        raise ValueError("class sizes must be positive and non-empty")
    return float(sizes.max() / sizes.min())


def labels_from_sizes(class_sizes: np.ndarray, rng: np.random.Generator | int = 0, shuffle: bool = True) -> np.ndarray:
    """Expand a class-size vector into a label array ``(sum(sizes),)``."""
    rng = make_rng(rng)
    labels = np.repeat(np.arange(len(class_sizes)), class_sizes)
    if shuffle:
        rng.shuffle(labels)
    return labels


def class_counts(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Per-class item counts (``π`` vector, unsorted by class id)."""
    return np.bincount(np.asarray(labels), minlength=num_classes)


def class_weights(counts: np.ndarray, gamma: float) -> np.ndarray:
    """Class weights ``(1-γ)/(1-γ^{π_c})`` of Eqn. (12).

    ``γ = 0`` degrades to the standard cross-entropy (all weights 1);
    as ``γ → 1`` the weight of class ``c`` approaches ``1/π_c``, i.e. full
    inverse-frequency re-weighting. Weights are normalised to mean 1 so the
    loss scale stays comparable across γ values.
    """
    if not 0.0 <= gamma < 1.0:
        raise ValueError(f"gamma must lie in [0, 1), got {gamma}")
    counts = np.asarray(counts, dtype=np.float64)
    if (counts < 0).any():
        raise ValueError("class counts must be non-negative")
    if gamma == 0.0:
        weights = np.ones_like(counts)
    else:
        safe_counts = np.maximum(counts, 1.0)
        weights = (1.0 - gamma) / (1.0 - gamma**safe_counts)
    present = counts > 0
    if present.any():
        weights = weights / weights[present].mean()
    return weights


@dataclass(frozen=True)
class LongTailSpec:
    """A ``(C, π_1, IF)`` long-tail profile plus derived sizes."""

    num_classes: int
    head_size: int
    imbalance_factor: float

    def sizes(self) -> np.ndarray:
        return zipf_class_sizes(self.num_classes, self.head_size, self.imbalance_factor)

    @property
    def tail_size(self) -> int:
        """``π_C``, the smallest class size."""
        return int(self.sizes()[-1])

    @property
    def total(self) -> int:
        """Total number of training items across all classes."""
        return int(self.sizes().sum())


@dataclass(frozen=True)
class StreamStep:
    """One arrival batch of a streaming long-tail corpus.

    Attributes
    ----------
    step:
        Position in the schedule (0-based).
    labels:
        Class labels of the items arriving in this batch (shuffled).
    new_classes:
        Class ids making their first appearance in this batch.
    """

    step: int
    labels: np.ndarray
    new_classes: np.ndarray


def stream_arrivals(
    class_sizes: np.ndarray,
    num_steps: int,
    rng: np.random.Generator | int = 0,
    *,
    stagger: float = 1.0,
    shuffle: bool = True,
) -> list[StreamStep]:
    """Schedule a long-tail corpus as a stream of arrival batches.

    The drift scenario behind the mutable index: head classes are present
    from the first batch, while tail classes *arrive over time* — class
    ``c`` (rank-sorted, largest first) first appears around step
    ``stagger · (rank_fraction · num_steps)`` and its items then spread
    evenly over the remaining steps. Early on the corpus is head-dominated;
    by the final step the cumulative class counts equal ``class_sizes``
    exactly, so the stream *grows the tail* rather than replaying a static
    mixture. ``stagger = 0`` degrades to every class trickling in from
    step 0.
    """
    sizes = np.asarray(class_sizes, dtype=np.int64)
    if sizes.size == 0 or (sizes < 0).any():
        raise ValueError("class sizes must be non-negative and non-empty")
    if num_steps < 1:
        raise ValueError("num_steps must be at least 1")
    if not 0.0 <= stagger <= 1.0:
        raise ValueError("stagger must lie in [0, 1]")
    rng = make_rng(rng)
    num_classes = len(sizes)
    # Rank fraction 0 (head) .. 1 (tail) maps to each class's first step.
    rank_fraction = (
        np.arange(num_classes, dtype=np.float64) / max(num_classes - 1, 1)
    )
    first_step = np.minimum(
        (stagger * rank_fraction * num_steps).astype(np.int64), num_steps - 1
    )
    per_step = np.zeros((num_steps, num_classes), dtype=np.int64)
    for cls in range(num_classes):
        active = num_steps - first_step[cls]
        base, extra = divmod(int(sizes[cls]), active)
        counts = np.full(active, base, dtype=np.int64)
        counts[:extra] += 1
        per_step[first_step[cls]:, cls] = counts
    seen = np.zeros(num_classes, dtype=bool)
    steps: list[StreamStep] = []
    for step in range(num_steps):
        counts = per_step[step]
        labels = np.repeat(np.arange(num_classes), counts)
        if shuffle:
            rng.shuffle(labels)
        arriving = (counts > 0) & ~seen
        seen |= counts > 0
        steps.append(
            StreamStep(
                step=step,
                labels=labels,
                new_classes=np.flatnonzero(arriving),
            )
        )
    return steps


def head_tail_split(class_sizes: np.ndarray, head_fraction: float = 0.5) -> tuple[np.ndarray, np.ndarray]:
    """Class ids of head vs tail classes.

    Head classes are the smallest prefix of the sorted classes that holds at
    least ``head_fraction`` of all items — the paper's informal definition of
    "a small number of dominant classes contain the majority of the data".
    """
    sizes = np.asarray(class_sizes, dtype=np.float64)
    order = np.argsort(-sizes)
    cumulative = np.cumsum(sizes[order]) / sizes.sum()
    cutoff = int(np.searchsorted(cumulative, head_fraction) + 1)
    return order[:cutoff], order[cutoff:]
