"""Feature-space transforms shared by models and baselines."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Standardizer:
    """Zero-mean / unit-variance scaling fitted on a training split.

    Shallow baselines (PCAH, ITQ, SDH, ...) are sensitive to feature scale;
    fitting on train and applying to query/database keeps the comparison to
    deep models fair.
    """

    mean: np.ndarray | None = None
    std: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "Standardizer":
        features = np.asarray(features, dtype=np.float64)
        self.mean = features.mean(axis=0)
        self.std = features.std(axis=0)
        self.std = np.where(self.std < 1e-12, 1.0, self.std)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean is None or self.std is None:
            raise RuntimeError("Standardizer must be fitted before transform")
        return (np.asarray(features, dtype=np.float64) - self.mean) / self.std

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)


def center(features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Subtract the column means; returns ``(centered, means)``."""
    features = np.asarray(features, dtype=np.float64)
    means = features.mean(axis=0)
    return features - means, means


def add_gaussian_noise(
    features: np.ndarray, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """Additive isotropic noise; used by robustness tests and augmentations."""
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if sigma == 0:
        return np.array(features, copy=True)
    return features + rng.normal(0.0, sigma, size=features.shape)
