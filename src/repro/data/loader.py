"""Mini-batch iteration over feature/label splits.

With observability enabled (:mod:`repro.obs`), :class:`DataLoader` times
every batch materialisation (``data.batch.fetch_time_s``) — the stall the
training loop experiences waiting for data — and counts batches yielded,
so loader overhead is separable from compute in a trace.
"""

from __future__ import annotations

import time
from typing import Iterator

import numpy as np

from repro.data.datasets import Split
from repro.obs import get_obs
from repro.obs import names as metric_names
from repro.rng import make_rng


class DataLoader:
    """Iterates a :class:`Split` in shuffled mini-batches.

    Each full iteration is one epoch. Shuffling uses the loader's own
    generator so epochs are reproducible given the constructor seed but
    differ from each other.
    """

    def __init__(
        self,
        split: Split,
        batch_size: int,
        rng: np.random.Generator | int = 0,
        shuffle: bool = True,
        drop_last: bool = False,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if len(split) == 0:
            raise ValueError("cannot iterate an empty split")
        self.split = split
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = make_rng(rng)

    def rng_state(self) -> dict:
        """Snapshot of the shuffle generator, for checkpoint/resume.

        The generator advances once per epoch, so restoring this state into
        a fresh loader makes epoch ``k+1`` shuffle identically to an
        uninterrupted run.
        """
        return self._rng.bit_generator.state

    def set_rng_state(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`rng_state`."""
        self._rng.bit_generator.state = state

    def __len__(self) -> int:
        """Number of batches per epoch."""
        full, partial = divmod(len(self.split), self.batch_size)
        if partial and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        indices = np.arange(len(self.split))
        if self.shuffle:
            self._rng.shuffle(indices)
        stop = len(indices)
        if self.drop_last:
            stop = (stop // self.batch_size) * self.batch_size
        obs = get_obs()
        for start in range(0, stop, self.batch_size):
            fetch_start = time.perf_counter() if obs.enabled else 0.0
            batch = indices[start : start + self.batch_size]
            features = self.split.features[batch]
            labels = self.split.labels[batch]
            if obs.enabled:
                obs.registry.histogram(metric_names.DATA_BATCH_FETCH_TIME).observe(
                    time.perf_counter() - fetch_start
                )
                obs.registry.counter(metric_names.DATA_BATCHES_TOTAL).inc()
            yield features, labels


class BalancedDataLoader(DataLoader):
    """Loader that oversamples rare classes to uniform class probability.

    Provided for the sampling-based long-tail mitigation family discussed in
    §II-B; used by ablations to contrast re-weighting (LightLT's choice)
    against re-sampling.
    """

    def __init__(
        self,
        split: Split,
        batch_size: int,
        rng: np.random.Generator | int = 0,
        num_batches: int | None = None,
    ):
        super().__init__(split, batch_size, rng=rng, shuffle=True)
        self.num_batches = num_batches or max(len(split) // batch_size, 1)
        labels = split.labels
        self._classes = np.unique(labels)
        self._index_by_class = {c: np.flatnonzero(labels == c) for c in self._classes}

    def __len__(self) -> int:
        return self.num_batches

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        for _ in range(self.num_batches):
            chosen_classes = self._rng.choice(self._classes, size=self.batch_size)
            rows = np.array(
                [self._rng.choice(self._index_by_class[c]) for c in chosen_classes]
            )
            yield self.split.features[rows], self.split.labels[rows]
