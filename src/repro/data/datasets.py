"""Dataset containers used across training, evaluation, and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.longtail import class_counts, imbalance_factor


@dataclass
class Split:
    """A matched pair of feature matrix and label vector."""

    features: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if len(self.features) != len(self.labels):
            raise ValueError(
                f"features ({len(self.features)}) and labels ({len(self.labels)}) "
                "must have the same length"
            )

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def dim(self) -> int:
        return self.features.shape[1]

    def subset(self, indices: np.ndarray) -> "Split":
        """Row subset preserving the (features, labels) pairing."""
        return Split(self.features[indices], self.labels[indices])


@dataclass
class RetrievalDataset:
    """Train / query / database splits for a retrieval experiment.

    Mirrors the evaluation protocol of §V-A: the model trains on the
    long-tail ``train`` split; retrieval quality is measured by ranking the
    ``database`` split against each item of the ``query`` split, with
    relevance defined by label equality.
    """

    name: str
    num_classes: int
    target_imbalance_factor: float
    train: Split
    query: Split
    database: Split
    validation: Split | None = None  # held-out tuning split (§V-A4)
    metadata: dict = field(default_factory=dict)

    @property
    def dim(self) -> int:
        return self.train.dim

    def train_class_counts(self) -> np.ndarray:
        """Per-class training counts (the ``π`` vector of Definition 1)."""
        return class_counts(self.train.labels, self.num_classes)

    def measured_imbalance_factor(self) -> float:
        """Actual ``IF`` of the generated training split."""
        counts = self.train_class_counts()
        return imbalance_factor(counts[counts > 0])

    def summary(self) -> dict:
        """Row for the Table I reproduction."""
        counts = self.train_class_counts()
        nonzero = counts[counts > 0]
        return {
            "name": self.name,
            "C": self.num_classes,
            "pi_1": int(nonzero.max()),
            "pi_C": int(nonzero.min()),
            "n_train": len(self.train),
            "n_query": len(self.query),
            "n_db": len(self.database),
            "IF_target": self.target_imbalance_factor,
            "IF_measured": round(self.measured_imbalance_factor(), 1),
        }
