"""Synthetic class-structured feature generation.

The paper feeds *pre-trained* continuous embeddings (ResNet-34 for images,
BERT for text) into the quantization model; pixels and tokens never reach
LightLT. Since those pre-trained encoders and the raw corpora are not
available offline, this module provides the substituted substrate: a
Gaussian-mixture generator whose samples play the role of the pre-trained
embeddings. Class separation and intra-class variance are configurable per
dataset profile, letting us mirror the paper's qualitative observations
(ImageNet-100 features are "better" because ResNet-34 was pre-trained on
ImageNet; NC text has higher intra-class variance than CIFAR-100 images).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.rng import make_rng


@dataclass(frozen=True)
class FeatureModel:
    """A fixed Gaussian-mixture model over ``num_classes`` classes.

    Attributes
    ----------
    means:
        ``(C, d)`` class prototype vectors.
    intra_sigma:
        Standard deviation of isotropic within-class noise.
    nuisance:
        ``(d, d_n)`` projection of shared class-independent structure; adds
        correlated noise that all classes share, making the task harder than
        a plain isotropic mixture (mimics generic feature directions in
        pre-trained embeddings).
    nuisance_sigma:
        Scale of the nuisance component.
    """

    means: np.ndarray
    intra_sigma: float
    nuisance: np.ndarray
    nuisance_sigma: float

    @property
    def num_classes(self) -> int:
        return self.means.shape[0]

    @property
    def dim(self) -> int:
        return self.means.shape[1]

    def sample(self, labels: np.ndarray, rng: np.random.Generator | int) -> np.ndarray:
        """Draw one feature vector per entry of ``labels``."""
        rng = make_rng(rng)
        labels = np.asarray(labels)
        if labels.size and (labels.min() < 0 or labels.max() >= self.num_classes):
            raise ValueError("labels out of range for this feature model")
        noise = rng.normal(0.0, self.intra_sigma, size=(labels.size, self.dim))
        features = self.means[labels] + noise
        if self.nuisance.shape[1] > 0:
            shared = rng.normal(0.0, self.nuisance_sigma, size=(labels.size, self.nuisance.shape[1]))
            features = features + shared @ self.nuisance.T
        return features


def make_feature_model(
    num_classes: int,
    dim: int,
    separation: float,
    intra_sigma: float,
    rng: np.random.Generator | int,
    nuisance_dim: int = 0,
    nuisance_sigma: float = 0.0,
) -> FeatureModel:
    """Construct a feature model with prototypes spread on a sphere.

    Prototypes are random Gaussian directions normalised to length
    ``separation``; for ``dim >> log(C)`` they are nearly orthogonal, so
    ``separation / intra_sigma`` controls class overlap directly.
    """
    if dim < 2:
        raise ValueError("feature dimension must be at least 2")
    if separation <= 0 or intra_sigma <= 0:
        raise ValueError("separation and intra_sigma must be positive")
    rng = make_rng(rng)
    raw = rng.normal(size=(num_classes, dim))
    means = separation * raw / np.linalg.norm(raw, axis=1, keepdims=True)
    if nuisance_dim > 0:
        nuisance_raw = rng.normal(size=(dim, nuisance_dim))
        nuisance, _ = np.linalg.qr(nuisance_raw)
    else:
        nuisance = np.zeros((dim, 0))
    return FeatureModel(
        means=means,
        intra_sigma=intra_sigma,
        nuisance=nuisance,
        nuisance_sigma=nuisance_sigma,
    )


def sample_to_memmap(
    model: FeatureModel,
    labels: np.ndarray,
    path: str | os.PathLike,
    rng: np.random.Generator | int,
    chunk_size: int = 65_536,
) -> np.memmap:
    """Stream ``model.sample`` into a float32 memory-mapped file.

    The large-scale benchmark profile (``repro bench --profile ivf-large``)
    indexes corpora of 1e6+ items; materialising them as float64 arrays
    costs gigabytes, so this writes the features chunk-by-chunk to ``path``
    and returns a read-only ``np.memmap`` view of shape ``(len(labels),
    model.dim)``. Peak resident memory is one ``(chunk_size, dim)`` block
    regardless of corpus size.

    The stream is deterministic for a fixed ``(rng seed, chunk_size)``
    pair; ``chunk_size`` is part of the reproducibility contract because
    the generator is consumed chunk-by-chunk.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    rng = make_rng(rng)
    labels = np.asarray(labels)
    n = labels.size
    out = np.memmap(path, dtype=np.float32, mode="w+", shape=(n, model.dim))
    for lo in range(0, n, chunk_size):
        hi = min(lo + chunk_size, n)
        out[lo:hi] = model.sample(labels[lo:hi], rng).astype(np.float32)
    out.flush()
    # Reopen read-only: downstream code treats the corpus as immutable.
    del out
    return np.memmap(path, dtype=np.float32, mode="r", shape=(n, model.dim))


def hierarchy_feature_model(
    num_classes: int,
    dim: int,
    num_superclasses: int,
    separation: float,
    sub_separation: float,
    intra_sigma: float,
    rng: np.random.Generator | int,
) -> FeatureModel:
    """Feature model with two-level class structure.

    Classes are grouped under superclasses whose prototypes are far apart;
    sibling classes sit close together. This mirrors semantic similarity
    between head and tail classes, the regime the LTHNet knowledge-transfer
    mechanism targets, and makes retrieval confusions realistic.
    """
    if num_superclasses < 1 or num_superclasses > num_classes:
        raise ValueError("need 1 <= num_superclasses <= num_classes")
    rng = make_rng(rng)
    super_raw = rng.normal(size=(num_superclasses, dim))
    super_means = separation * super_raw / np.linalg.norm(super_raw, axis=1, keepdims=True)
    assignments = np.arange(num_classes) % num_superclasses
    offsets = rng.normal(size=(num_classes, dim))
    offsets = sub_separation * offsets / np.linalg.norm(offsets, axis=1, keepdims=True)
    means = super_means[assignments] + offsets
    return FeatureModel(
        means=means,
        intra_sigma=intra_sigma,
        nuisance=np.zeros((dim, 0)),
        nuisance_sigma=0.0,
    )
