"""Long-tail image retrieval: LightLT against classic compact-code baselines.

Reproduces a slice of Table II interactively on the CIFAR-100-sim profile:
every method gets the same 32-ish-bit budget and the same (simulated)
pre-trained features; only the learning objective differs.

    python examples/image_retrieval.py
"""

import time

from repro.baselines import ITQ, LSH, PQ, SCDH, evaluate_method
from repro.core import LossConfig, TrainingConfig, evaluate_map, train_lightlt
from repro.data import load_dataset
from repro.experiments import default_model_config, format_table


def main() -> None:
    dataset = load_dataset("cifar100", imbalance_factor=50, scale="ci", seed=0)
    print(
        f"CIFAR-100-sim IF=50: {len(dataset.train)} training images over "
        f"{dataset.num_classes} classes; database {len(dataset.database)}"
    )

    rows = []

    # Classic baselines: random hyperplanes, rotated PCA bits, product
    # quantization, and a supervised shallow hash.
    for method in (LSH(num_bits=32), ITQ(num_bits=32), PQ(4, 64), SCDH(num_bits=32)):
        start = time.perf_counter()
        score = evaluate_method(method, dataset)
        rows.append([method.name, "supervised" if method.supervised else "unsup.", score, time.perf_counter() - start])

    # LightLT (no ensemble, to keep the example quick).
    start = time.perf_counter()
    model, _ = train_lightlt(
        dataset,
        default_model_config(dataset),
        loss_config=LossConfig(alpha=0.01, gamma=0.999),
        training_config=TrainingConfig(epochs=20, schedule="cosine"),
        seed=0,
    )
    rows.append(
        ["LightLT w/o ensemble", "supervised", evaluate_map(model, dataset), time.perf_counter() - start]
    )

    print()
    print(
        format_table(
            ["method", "supervision", "MAP", "seconds"],
            rows,
            title="Long-tail image retrieval at a ~32-bit code budget",
            float_digits=3,
        )
    )
    best_baseline = max(score for name, _, score, _ in rows[:-1])
    print(
        f"\nLightLT beats the best classic baseline by "
        f"{(rows[-1][2] - best_baseline) / best_baseline:+.1%} relative MAP"
    )


if __name__ == "__main__":
    main()
