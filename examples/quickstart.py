"""Quickstart: train LightLT on a long-tail dataset and search with it.

Runs in ~10 seconds on a laptop:

    python examples/quickstart.py

Steps: load the NC-sim long-tail dataset, train LightLT end to end
(Algorithm 1 without the ensemble), quantize and index the database,
search it with ADC lookup tables, and report MAP plus the §IV storage
accounting. Finally the model is saved and reloaded to show persistence.
"""

import os
import tempfile

from repro.core import LightLTConfig, LossConfig, TrainingConfig, evaluate_map, train_lightlt
from repro.data import load_dataset
from repro.nn import load_state, save_state
from repro.retrieval import mean_average_precision, storage_cost


def main() -> None:
    # 1. A long-tail retrieval dataset (synthetic stand-in for Amazon News
    #    BERT features; IF=50 means the head class is 50x the tail class).
    dataset = load_dataset("nc", imbalance_factor=50, scale="ci", seed=0)
    print(f"dataset: {dataset.summary()}")

    # 2. Configure and train LightLT: 4 codebooks x 64 codewords = 24-bit codes.
    model_config = LightLTConfig(
        input_dim=dataset.dim,
        num_classes=dataset.num_classes,
        embed_dim=dataset.dim,
        num_codebooks=4,
        num_codewords=64,
    )
    model, history = train_lightlt(
        dataset,
        model_config,
        # Text regime: discriminative objective, fully-trained backbone.
        loss_config=LossConfig(alpha=0.1, gamma=0.999, beta=0.0),
        training_config=TrainingConfig(
            epochs=15,
            learning_rate=5e-3,
            schedule="linear_warmup",
            backbone_lr_scale=1.0,
            warm_start=False,
        ),
        seed=0,
    )
    print(f"final epoch losses: { {k: round(v, 3) for k, v in history.last().items()} }")

    # 3. Index the database: each item becomes 4 codeword ids + one norm.
    index = model.build_index(dataset.database.features, labels=dataset.database.labels)
    cost = storage_cost(len(index), index.dim, index.num_codebooks, index.num_codewords)
    print(
        f"indexed {len(index)} items | codes shape {index.codes.shape} | "
        f"quantized {cost.quantized_bytes / 1024:.1f} KiB vs "
        f"continuous {cost.continuous_bytes / 1024:.1f} KiB "
        f"(compression {cost.compression_ratio:.1f}x)"
    )

    # 4. Retrieve: queries stay continuous; the database is searched with
    #    per-query lookup tables (Eqn. 24), never touching raw vectors.
    ranked_labels = model.search_ranked_labels(dataset.query.features, index)
    print(f"MAP over full database ranking: "
          f"{mean_average_precision(ranked_labels, dataset.query.labels):.4f}")
    print(f"evaluate_map helper agrees:     {evaluate_map(model, dataset):.4f}")

    top5 = index.search_labels(model.embed(dataset.query.features[:3]), k=5)
    for i, row in enumerate(top5):
        print(f"query {i} (true class {dataset.query.labels[i]}): top-5 labels {row.tolist()}")

    # 5. Persist and reload.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "lightlt.npz")
        save_state(model, path)
        from repro.core import LightLT

        restored = LightLT(model_config, rng=0)
        load_state(restored, path)
        print(f"reloaded model MAP: {evaluate_map(restored, dataset):.4f}")


if __name__ == "__main__":
    main()
