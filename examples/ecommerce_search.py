"""E-commerce query matching on a long-tail intent distribution.

The paper's motivating scenario (§I): billions of candidate items, a few
dominant intents, and a long tail of rare ones. This example uses the
QBA-sim profile (25 query-intent classes, IF=100), trains the full LightLT
pipeline *with* the model ensemble, and then answers the questions an
owner of such a system would ask:

- How much memory does the quantized index save?
- How much faster is ADC search than exhaustive float search?
- How well are tail intents served compared to head intents?

    python examples/ecommerce_search.py
"""

import numpy as np

from repro.core import EnsembleConfig, evaluate_map, train_ensemble
from repro.data import head_tail_split, load_dataset
from repro.experiments import (
    default_loss_config,
    default_model_config,
    default_training_config,
)
from repro.retrieval import (
    measure_search_times,
    per_class_average_precision,
    storage_cost,
    theoretical_speedup,
)


def main() -> None:
    dataset = load_dataset("qba", imbalance_factor=100, scale="ci", seed=0)
    counts = dataset.train_class_counts()
    head_classes, tail_classes = head_tail_split(counts)
    print(
        f"{dataset.num_classes} intents | head intents {len(head_classes)} hold "
        f"{counts[head_classes].sum() / counts.sum():.0%} of training queries | "
        f"IF = {dataset.measured_imbalance_factor():.0f}"
    )

    # Full LightLT: 4-member weight ensemble + DSQ re-alignment (§III-E).
    result = train_ensemble(
        dataset,
        default_model_config(dataset),
        default_loss_config(dataset),
        default_training_config(dataset),
        EnsembleConfig(num_members=4),
        seed=0,
    )
    model = result.model
    print(f"ensemble MAP: {evaluate_map(model, dataset):.4f}")

    # Storage: what the quantized index costs vs raw float32 vectors.
    index = model.build_index(dataset.database.features, labels=dataset.database.labels)
    cost = storage_cost(len(index), index.dim, index.num_codebooks, index.num_codewords)
    print(
        f"index: {len(index)} items -> {cost.quantized_bytes / 1024:.1f} KiB "
        f"({cost.compression_ratio:.1f}x smaller than continuous)"
    )
    paper_scale = storage_cost(642_000, 768, 4, 256)
    print(
        f"at the paper's QBA scale (642k items, d=768, M=4, K=256) the same "
        f"layout gives {paper_scale.compression_ratio:.0f}x compression and a "
        f"theoretical {theoretical_speedup(642_000, 768, 4, 256):.0f}x search speedup"
    )

    # Latency: exhaustive vs ADC on this database.
    queries = model.embed(dataset.query.features)
    database = model.embed(dataset.database.features)
    exhaustive_s, adc_s = measure_search_times(
        queries, database, model.dsq.materialized_codebooks(), index.codes
    )
    print(
        f"measured: exhaustive {exhaustive_s * 1e3:.2f} ms vs ADC {adc_s * 1e3:.2f} ms "
        f"for {len(queries)} queries ({exhaustive_s / adc_s:.1f}x)"
    )

    # Fairness: how tail intents fare relative to head intents.
    ranked = model.search_ranked_labels(dataset.query.features, index)
    per_class = per_class_average_precision(ranked, dataset.query.labels)
    head_map = np.mean([per_class[int(c)] for c in head_classes if int(c) in per_class])
    tail_map = np.mean([per_class[int(c)] for c in tail_classes if int(c) in per_class])
    print(f"head-intent MAP {head_map:.4f} | tail-intent MAP {tail_map:.4f}")
    worst = sorted(per_class.items(), key=lambda kv: kv[1])[:3]
    print("hardest intents:", ", ".join(f"class {c} ({v:.3f})" for c, v in worst))


if __name__ == "__main__":
    main()
