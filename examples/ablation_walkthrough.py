"""Walk through the paper's ablations on one dataset.

Reproduces, at example scale, the three analyses of §V-C/D/F:

1. loss composition (CE vs +center vs +ranking) with cluster-quality
   numbers standing in for Fig. 8's scatter plots,
2. DSQ vs the vanilla residual mechanism (Table IV),
3. the ensemble-size sweep (Fig. 6).

    python examples/ablation_walkthrough.py
"""

from dataclasses import replace

from repro.cluster import silhouette_score
from repro.core import EnsembleConfig, Trainer, evaluate_map, train_ensemble
from repro.data import load_dataset
from repro.experiments import (
    default_loss_config,
    default_model_config,
    default_training_config,
    format_table,
)


def train_variant(dataset, model_config, loss_config, seed=0):
    trainer = Trainer(
        model_config, loss_config, default_training_config(dataset), seed=seed
    )
    model, _, _ = trainer.fit(dataset)
    return model


def main() -> None:
    dataset = load_dataset("nc", imbalance_factor=100, scale="ci", seed=0)
    base_config = default_model_config(dataset)
    base_loss = default_loss_config(dataset)

    # ------------------------------------------------------------------
    # 1. Loss composition (Fig. 5 / Fig. 8).
    # ------------------------------------------------------------------
    variants = {
        "CE only": replace(base_loss, use_center=False, use_ranking=False),
        "CE + center": replace(base_loss, use_ranking=False),
        "CE + center + ranking": base_loss,
    }
    rows = []
    for name, loss_config in variants.items():
        model = train_variant(dataset, base_config, loss_config)
        quantized = model.quantized_embeddings(dataset.database.features)
        rows.append(
            [
                name,
                evaluate_map(model, dataset),
                silhouette_score(quantized, dataset.database.labels),
            ]
        )
    print(format_table(["loss", "MAP", "silhouette"], rows, title="Loss ablation (NC IF=100)"))

    # ------------------------------------------------------------------
    # 2. DSQ vs vanilla residual (Table IV).
    # ------------------------------------------------------------------
    rows = []
    for name, config in {
        "vanilla residual": replace(base_config, use_codebook_skip=False),
        "DSQ (double skip)": base_config,
    }.items():
        model = train_variant(dataset, config, base_loss)
        rows.append([name, evaluate_map(model, dataset)])
    print()
    print(format_table(["quantizer", "MAP"], rows, title="DSQ ablation (NC IF=100)"))

    # ------------------------------------------------------------------
    # 3. Ensemble size (Fig. 6).
    # ------------------------------------------------------------------
    rows = [["1 (no ensemble)", evaluate_map(train_variant(dataset, base_config, base_loss), dataset)]]
    for members in (2, 4):
        result = train_ensemble(
            dataset,
            base_config,
            base_loss,
            default_training_config(dataset),
            EnsembleConfig(num_members=members),
            seed=0,
        )
        rows.append([str(members), evaluate_map(result.model, dataset)])
    print()
    print(format_table(["ensemble members", "MAP"], rows, title="Ensemble sweep (NC IF=100)"))


if __name__ == "__main__":
    main()
