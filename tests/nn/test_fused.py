"""Gradcheck and parity coverage for the fused single-node training ops.

Each fused kernel is validated two ways: numerically (central differences
via :func:`repro.nn.gradcheck.check_gradient`) and against the op-per-op
tape reference it replaces (bit-equal forward values, gradients within
accumulation-order rounding). Edge shapes — a single sample (B=1) and the
minimum codebook width (K=2) — and float32-typed inputs are exercised
explicitly, per the fused-kernel acceptance checklist.
"""

import numpy as np
import pytest

from repro.core.dsq import DSQ
from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.fused import (
    fused_center_loss,
    fused_commitment_loss,
    fused_cross_entropy,
    fused_ranking_loss,
    fused_scaled_sum,
    fused_softmax,
    fused_softmax_ste,
)
from repro.nn.gradcheck import check_gradient


def _rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


class TestFusedCrossEntropyGradcheck:
    @pytest.mark.parametrize("shape", [(5, 4), (1, 4), (5, 2), (1, 2)])
    def test_unweighted(self, shape):
        n, c = shape
        labels = _rng(1).integers(0, c, size=n)
        logits = _rng(2).normal(size=shape)
        ok, err = check_gradient(lambda t: fused_cross_entropy(t, labels), logits)
        assert ok, f"fused CE gradcheck failed at {shape}: {err}"

    @pytest.mark.parametrize("shape", [(6, 5), (1, 5), (4, 2), (1, 2)])
    def test_class_weighted(self, shape):
        n, c = shape
        labels = _rng(3).integers(0, c, size=n)
        weights = _rng(4).uniform(0.2, 3.0, size=c)
        logits = _rng(5).normal(size=shape)
        ok, err = check_gradient(
            lambda t: fused_cross_entropy(t, labels, weights=weights), logits
        )
        assert ok, f"weighted fused CE gradcheck failed at {shape}: {err}"

    @pytest.mark.parametrize("weighted", [False, True])
    def test_matches_reference_bitwise(self, weighted):
        labels = _rng(6).integers(0, 7, size=9)
        weights = _rng(7).uniform(0.5, 2.0, size=7) if weighted else None
        data = _rng(8).normal(size=(9, 7))

        reference = Tensor(data.copy(), requires_grad=True)
        ref_loss = F.cross_entropy(reference, labels, weights=weights)
        ref_loss.backward()

        fused = Tensor(data.copy(), requires_grad=True)
        fused_loss = fused_cross_entropy(fused, labels, weights=weights)
        fused_loss.backward()

        assert fused_loss.data == ref_loss.data  # bit-equal forward
        np.testing.assert_allclose(fused.grad, reference.grad, rtol=0, atol=1e-12)


class TestFusedSoftmaxGradcheck:
    @pytest.mark.parametrize("shape", [(4, 6), (1, 2), (3, 1, 2), (2, 4, 5)])
    @pytest.mark.parametrize("temperature", [1.0, 0.25])
    def test_numerical(self, shape, temperature):
        # Scalarize through a fixed projection so every output entry
        # contributes to the checked gradient. 3-D shapes cover the
        # batched (M, B, K) layout the DSQ kernel feeds.
        proj = _rng(9).normal(size=shape)
        logits = _rng(10).normal(size=shape)
        ok, err = check_gradient(
            lambda t: (fused_softmax(t, temperature=temperature) * Tensor(proj)).sum(),
            logits,
        )
        assert ok, f"fused softmax gradcheck failed at {shape}, t={temperature}: {err}"

    def test_matches_reference_bitwise(self):
        data = _rng(11).normal(size=(5, 8))
        assert np.array_equal(
            fused_softmax(Tensor(data), temperature=0.5).data,
            F.softmax(Tensor(data), temperature=0.5).data,
        )


class TestFusedSoftmaxSTE:
    """The STE forward is an exact one-hot; its gradient is the soft path."""

    @pytest.mark.parametrize("shape", [(6, 4), (1, 2), (3, 5, 7), (2, 1, 2)])
    def test_forward_is_argmax_one_hot(self, shape):
        logits = Tensor(_rng(12).normal(size=shape))
        assignment, codes, soft = fused_softmax_ste(logits, temperature=0.7)
        np.testing.assert_array_equal(codes, logits.data.argmax(axis=-1))
        np.testing.assert_array_equal(assignment.data, F.one_hot(codes, shape[-1]))
        np.testing.assert_allclose(soft.sum(axis=-1), 1.0, rtol=0, atol=1e-12)

    @pytest.mark.parametrize("shape", [(6, 4), (1, 2), (2, 3, 5)])
    def test_gradient_matches_tape_ste_oracle(self, shape):
        # Oracle: softmax + straight_through on the tape, driven by the
        # same upstream gradient. The fused node must route exactly the
        # tempered-softmax Jacobian (Eqn. 6 semantics).
        data = _rng(13).normal(size=shape)
        upstream = _rng(14).normal(size=shape)

        reference = Tensor(data.copy(), requires_grad=True)
        soft_ref = F.softmax(reference, axis=-1, temperature=0.7)
        hard_ref = F.one_hot(soft_ref.data.argmax(axis=-1), shape[-1])
        (F.straight_through(hard_ref, soft_ref) * Tensor(upstream)).sum().backward()

        fused = Tensor(data.copy(), requires_grad=True)
        assignment, _, _ = fused_softmax_ste(fused, temperature=0.7)
        (assignment * Tensor(upstream)).sum().backward()

        np.testing.assert_allclose(fused.grad, reference.grad, rtol=0, atol=1e-12)


class TestFusedLossGradchecks:
    @pytest.mark.parametrize("p", [1, 2])
    @pytest.mark.parametrize("n", [1, 5])
    def test_center_loss_embeddings(self, p, n):
        labels = _rng(15).integers(0, 3, size=n)
        protos = Tensor(_rng(16).normal(size=(3, 4)))
        emb = _rng(17).normal(size=(n, 4))
        ok, err = check_gradient(
            lambda t: fused_center_loss(t, labels, protos, p=p), emb
        )
        assert ok, f"center loss gradcheck (embeddings, p={p}, n={n}): {err}"

    @pytest.mark.parametrize("p", [1, 2])
    def test_center_loss_prototypes(self, p):
        labels = _rng(18).integers(0, 3, size=6)
        emb = Tensor(_rng(19).normal(size=(6, 4)))
        protos = _rng(20).normal(size=(3, 4))
        ok, err = check_gradient(
            lambda t: fused_center_loss(emb, labels, t, p=p), protos
        )
        assert ok, f"center loss gradcheck (prototypes, p={p}): {err}"

    @pytest.mark.parametrize("p", [1, 2])
    @pytest.mark.parametrize("n", [1, 6])
    def test_ranking_loss_both_sides(self, p, n):
        labels = _rng(21).integers(0, 4, size=n)
        emb_data = _rng(22).normal(size=(n, 5))
        proto_data = _rng(23).normal(size=(4, 5))
        protos = Tensor(proto_data)
        ok, err = check_gradient(
            lambda t: fused_ranking_loss(t, labels, protos, tau=0.8, p=p), emb_data
        )
        assert ok, f"ranking loss gradcheck (embeddings, p={p}, n={n}): {err}"
        emb = Tensor(emb_data)
        ok, err = check_gradient(
            lambda t: fused_ranking_loss(emb, labels, t, tau=0.8, p=p), proto_data
        )
        assert ok, f"ranking loss gradcheck (prototypes, p={p}, n={n}): {err}"

    @pytest.mark.parametrize("n", [1, 7])
    def test_commitment_loss_matches_detach_split_tape(self, n):
        # Stop-gradients make central differences see both detached terms,
        # so (as with the STE) the oracle is the tape's detach-split form,
        # not numerical differentiation.
        emb_data = _rng(24).normal(size=(n, 4))
        q_data = _rng(25).normal(size=(n, 4))

        emb_ref = Tensor(emb_data.copy(), requires_grad=True)
        q_ref = Tensor(q_data.copy(), requires_grad=True)
        codebook_diff = emb_ref.detach() - q_ref
        codebook_term = (codebook_diff * codebook_diff).sum(axis=1).mean()
        commit_diff = emb_ref - q_ref.detach()
        commit_term = (commit_diff * commit_diff).sum(axis=1).mean()
        ref_loss = codebook_term + commit_term * 0.25
        ref_loss.backward()

        emb_fused = Tensor(emb_data.copy(), requires_grad=True)
        q_fused = Tensor(q_data.copy(), requires_grad=True)
        fused_loss = fused_commitment_loss(emb_fused, q_fused, commitment=0.25)
        fused_loss.backward()

        assert fused_loss.data == ref_loss.data  # bit-equal forward
        np.testing.assert_allclose(emb_fused.grad, emb_ref.grad, rtol=0, atol=1e-12)
        np.testing.assert_allclose(q_fused.grad, q_ref.grad, rtol=0, atol=1e-12)

    def test_scaled_sum(self):
        fixed = [Tensor(np.asarray(0.7)), Tensor(np.asarray(-1.3))]
        scales = [1.0, 0.5, 0.25]
        ok, err = check_gradient(
            lambda t: fused_scaled_sum([t.sum(), *fixed], scales), _rng(26).normal(size=4)
        )
        assert ok, f"scaled sum gradcheck: {err}"

    def test_scaled_sum_matches_incremental_bitwise(self):
        values = [Tensor(np.asarray(v)) for v in (1.37, -0.251, 0.993)]
        scales = [1.0, 0.37, 2.5]
        incremental = values[0]
        for term, scale in zip(values[1:], scales[1:]):
            incremental = incremental + term * scale
        assert fused_scaled_sum(values, scales).data == incremental.data


class TestFloat32Inputs:
    """float32-typed inputs are coerced to the float64 substrate losslessly."""

    def test_cross_entropy(self):
        labels = _rng(27).integers(0, 4, size=5)
        data64 = _rng(28).normal(size=(5, 4))
        data32 = data64.astype(np.float32)

        t32 = Tensor(data32, requires_grad=True)
        loss32 = fused_cross_entropy(t32, labels)
        loss32.backward()
        t64 = Tensor(data32.astype(np.float64), requires_grad=True)
        loss64 = fused_cross_entropy(t64, labels)
        loss64.backward()

        assert t32.data.dtype == np.float64
        assert loss32.data == loss64.data
        np.testing.assert_array_equal(t32.grad, t64.grad)

    def test_softmax_ste(self):
        data32 = _rng(29).normal(size=(3, 4, 5)).astype(np.float32)
        t32 = Tensor(data32, requires_grad=True)
        assignment, codes, _ = fused_softmax_ste(t32, temperature=0.5)
        assignment.sum().backward()
        assert assignment.data.dtype == np.float64
        np.testing.assert_array_equal(codes, data32.argmax(axis=-1))
        assert t32.grad is not None and t32.grad.dtype == np.float64


class TestBatchedDSQForward:
    """The fused DSQ kernel against the tape oracle across topologies."""

    @pytest.mark.parametrize("topology", ["residual", "independent"])
    @pytest.mark.parametrize("similarity", ["neg_l2", "dot"])
    @pytest.mark.parametrize("batch", [1, 7])
    def test_gradients_match_reference_tape(self, topology, similarity, batch):
        def build():
            return DSQ(
                num_codebooks=3, num_codewords=5, dim=4, rng=0,
                temperature=0.6, similarity=similarity, topology=topology,
            )

        data = _rng(30).normal(size=(batch, 4))
        upstream = _rng(31).normal(size=(batch, 4))

        reference = build()
        x_ref = Tensor(data.copy(), requires_grad=True)
        out_ref = reference(x_ref)
        (out_ref.reconstruction * Tensor(upstream)).sum().backward()

        fused = build()
        fused.fused = True
        x_fused = Tensor(data.copy(), requires_grad=True)
        out_fused = fused(x_fused)
        (out_fused.reconstruction * Tensor(upstream)).sum().backward()

        np.testing.assert_array_equal(out_fused.codes, out_ref.codes)
        np.testing.assert_array_equal(
            out_fused.reconstruction.data, out_ref.reconstruction.data
        )
        np.testing.assert_allclose(x_fused.grad, x_ref.grad, rtol=0, atol=1e-12)
        ref_params = dict(reference.named_parameters())
        for name, param in fused.named_parameters():
            assert param.grad is not None, name
            np.testing.assert_allclose(
                param.grad, ref_params[name].grad, rtol=1e-10, atol=1e-12,
                err_msg=f"gradient mismatch on {name}",
            )

    def test_soft_path_gradcheck_through_chain(self):
        # Numerical anchor for the chain + scoring path: the tempered
        # softmax of the fused kernel over materialized codebooks is
        # differentiable, so gradcheck the *soft* reconstruction the STE
        # gradient routes through, on the tape (the oracle the fused
        # backward is compared against above).
        dsq = DSQ(num_codebooks=2, num_codewords=3, dim=3, rng=1, temperature=0.8)
        data = _rng(32).normal(size=(2, 3))

        def soft_recon(t):
            books = dsq.codebooks.materialize()
            recon = None
            residual = t
            for book in books:
                scores = residual @ book.T * 2.0
                scores = scores - (residual * residual).sum(axis=1, keepdims=True)
                scores = scores - Tensor((book.data * book.data).sum(axis=1))
                soft = F.softmax(scores, temperature=dsq.temperature)
                level = soft @ book
                recon = level if recon is None else recon + level
                residual = residual - level
            return (recon * recon).sum()

        ok, err = check_gradient(soft_recon, data)
        assert ok, f"soft-path DSQ gradcheck failed: {err}"
