"""Unit tests for the autograd tensor: values, shapes, and gradients."""

import numpy as np
import pytest

from repro.nn import Tensor, concat, maximum, no_grad, stack, where
from repro.nn.gradcheck import check_gradient


class TestTensorBasics:
    def test_construction_coerces_to_float64(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64
        assert t.shape == (3,)

    def test_requires_grad_defaults_false(self):
        assert not Tensor([1.0]).requires_grad
        assert Tensor([1.0], requires_grad=True).requires_grad

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_item_on_vector_raises(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 3)))
        assert len(t) == 4
        assert t.size == 12
        assert t.ndim == 2

    def test_detach_breaks_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        detached = a.detach()
        assert not detached.requires_grad
        assert np.array_equal(detached.data, a.data)

    def test_no_grad_context(self):
        with no_grad():
            out = Tensor([1.0], requires_grad=True) * 2.0
        assert not out.requires_grad

    def test_backward_requires_scalar_or_grad(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_on_constant_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(1.0).backward()


class TestArithmetic:
    def test_add_values_and_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = (a + b).sum()
        out.backward()
        assert np.allclose(a.grad, [1.0, 1.0])
        assert np.allclose(b.grad, [1.0, 1.0])

    def test_add_broadcast_unbroadcasts_grad(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0)

    def test_scalar_radd_rsub_rmul_rdiv(self):
        a = Tensor([2.0], requires_grad=True)
        assert np.allclose((1.0 + a).data, [3.0])
        assert np.allclose((5.0 - a).data, [3.0])
        assert np.allclose((3.0 * a).data, [6.0])
        assert np.allclose((8.0 / a).data, [4.0])

    def test_mul_gradient(self):
        ok, err = check_gradient(lambda t: (t * t * 2.0).sum(), np.array([1.0, -2.0, 3.0]))
        assert ok, err

    def test_div_gradient(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0.5, 2.0, size=(3, 2))
        denom = Tensor(rng.uniform(1.0, 2.0, size=(3, 2)))
        ok, err = check_gradient(lambda t: (t / denom).sum(), x)
        assert ok, err

    def test_pow_gradient(self):
        ok, err = check_gradient(lambda t: (t**3).sum(), np.array([1.0, 2.0, -1.5]))
        assert ok, err

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_neg(self):
        a = Tensor([1.0, -2.0], requires_grad=True)
        (-a).sum().backward()
        assert np.allclose(a.grad, [-1.0, -1.0])


class TestMatmul:
    def test_matmul_values(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        b = Tensor(np.arange(12.0).reshape(3, 4))
        assert np.allclose((a @ b).data, a.data @ b.data)

    def test_matmul_gradients(self):
        rng = np.random.default_rng(1)
        b = Tensor(rng.normal(size=(3, 4)))
        ok, err = check_gradient(lambda t: ((t @ b) ** 2).sum(), rng.normal(size=(2, 3)))
        assert ok, err

    def test_matmul_gradient_wrt_rhs(self):
        rng = np.random.default_rng(2)
        a = Tensor(rng.normal(size=(2, 3)))
        ok, err = check_gradient(lambda t: ((a @ t) ** 2).sum(), rng.normal(size=(3, 4)))
        assert ok, err


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = t.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        assert np.allclose(t.grad, np.ones((2, 3)))

    def test_mean_gradient(self):
        ok, err = check_gradient(
            lambda t: (t.mean(axis=0) ** 2).sum(), np.random.default_rng(3).normal(size=(4, 3))
        )
        assert ok, err

    def test_max_splits_ties(self):
        t = Tensor([[1.0, 1.0]], requires_grad=True)
        t.max(axis=1).sum().backward()
        assert np.allclose(t.grad, [[0.5, 0.5]])

    def test_max_gradient(self):
        rng = np.random.default_rng(4)
        ok, err = check_gradient(lambda t: t.max(axis=1).sum(), rng.normal(size=(3, 5)))
        assert ok, err

    def test_min_matches_numpy(self):
        x = np.random.default_rng(5).normal(size=(3, 4))
        assert np.allclose(Tensor(x).min(axis=1).data, x.min(axis=1))

    def test_reshape_roundtrip_grad(self):
        t = Tensor(np.arange(6.0), requires_grad=True)
        t.reshape(2, 3).sum().backward()
        assert t.grad.shape == (6,)

    def test_transpose_grad(self):
        rng = np.random.default_rng(6)
        ok, err = check_gradient(lambda t: (t.T @ t).sum(), rng.normal(size=(3, 2)))
        assert ok, err

    def test_getitem_fancy_index_grad(self):
        t = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        idx = np.array([0, 2, 2])
        t[idx].sum().backward()
        expected = np.zeros((4, 3))
        expected[0] = 1.0
        expected[2] = 2.0  # accumulated twice
        assert np.allclose(t.grad, expected)

    def test_getitem_tuple_index(self):
        t = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        picked = t[np.arange(3), np.array([0, 1, 2])]
        picked.sum().backward()
        assert t.grad.sum() == 3.0


class TestNonlinearities:
    @pytest.mark.parametrize(
        "op",
        ["exp", "tanh", "sigmoid", "relu", "abs", "sqrt"],
    )
    def test_elementwise_gradients(self, op):
        rng = np.random.default_rng(7)
        x = rng.uniform(0.2, 2.0, size=(3, 3))  # positive domain for sqrt
        ok, err = check_gradient(lambda t: getattr(t, op)().sum(), x)
        assert ok, (op, err)

    def test_log_gradient(self):
        rng = np.random.default_rng(8)
        x = rng.uniform(0.5, 3.0, size=(4,))
        ok, err = check_gradient(lambda t: t.log().sum(), x)
        assert ok, err

    def test_clip_gradient_mask(self):
        t = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(t.grad, [0.0, 1.0, 0.0])


class TestCombinators:
    def test_concat_values_and_grads(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.full((3, 2), 2.0), requires_grad=True)
        out = concat([a, b], axis=0)
        assert out.shape == (5, 2)
        (out * 3.0).sum().backward()
        assert np.allclose(a.grad, 3.0)
        assert np.allclose(b.grad, 3.0)

    def test_stack_grads(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        stacked = stack([a, b], axis=0)
        assert stacked.shape == (2, 2)
        stacked.sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])

    def test_where_routes_gradients(self):
        cond = np.array([True, False])
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        where(cond, a, b).sum().backward()
        assert np.allclose(a.grad, [1.0, 0.0])
        assert np.allclose(b.grad, [0.0, 1.0])

    def test_maximum_tie_splitting(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([1.0], requires_grad=True)
        maximum(a, b).sum().backward()
        assert np.allclose(a.grad, [0.5])
        assert np.allclose(b.grad, [0.5])

    def test_maximum_with_scalar(self):
        a = Tensor([-1.0, 2.0], requires_grad=True)
        maximum(a, 0.0).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0])


class TestGraphMechanics:
    def test_grad_accumulates_across_backwards(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        (a * 3).sum().backward()
        assert np.allclose(a.grad, [5.0])

    def test_zero_grad_reuses_buffer_in_place(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        buffer = a.grad
        a.zero_grad()
        assert a.grad is buffer  # same array, zeroed, not reallocated
        assert np.all(a.grad == 0.0)
        (a * 3).sum().backward()
        assert a.grad is buffer  # backward accumulated into the kept buffer
        assert np.allclose(a.grad, [3.0])

    def test_zero_grad_set_to_none(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        a.zero_grad(set_to_none=True)
        assert a.grad is None
        b = Tensor([1.0], requires_grad=True)
        b.zero_grad()  # never-touched grad stays None either way
        assert b.grad is None

    def test_diamond_graph_gradient(self):
        # f(x) = (x*2) + (x*3); grad = 5
        a = Tensor([1.0], requires_grad=True)
        ((a * 2.0) + (a * 3.0)).sum().backward()
        assert np.allclose(a.grad, [5.0])

    def test_reused_node_gradient(self):
        a = Tensor([2.0], requires_grad=True)
        y = a * a  # used once but product of same tensor twice
        y.sum().backward()
        assert np.allclose(a.grad, [4.0])
