"""Tests for the Module system: traversal, state dicts, freezing, modes."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Dropout,
    Linear,
    Module,
    Parameter,
    Sequential,
    Tensor,
    average_state_dicts,
)


def make_mlp(seed: int = 0) -> MLP:
    return MLP([4, 8, 3], np.random.default_rng(seed), dropout=0.5)


class TestTraversal:
    def test_named_parameters_are_unique_and_dotted(self):
        mlp = make_mlp()
        names = [name for name, _ in mlp.named_parameters()]
        assert len(names) == len(set(names))
        assert all("." in name for name in names)

    def test_parameters_count_linear(self):
        linear = Linear(4, 3, np.random.default_rng(0))
        assert len(linear.parameters()) == 2  # weight + bias

    def test_linear_without_bias(self):
        linear = Linear(4, 3, np.random.default_rng(0), bias=False)
        assert len(linear.parameters()) == 1

    def test_parameters_in_lists_are_found(self):
        class Holder(Module):
            def __init__(self):
                super().__init__()
                self.items = [Parameter(np.zeros(2)), Parameter(np.ones(3))]

        assert len(Holder().parameters()) == 2

    def test_modules_iterates_depth(self):
        mlp = make_mlp()
        kinds = {type(m).__name__ for m in mlp.modules()}
        assert {"MLP", "Sequential", "Linear"} <= kinds


class TestStateDict:
    def test_roundtrip(self):
        a, b = make_mlp(0), make_mlp(1)
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_state_dict_is_a_copy(self):
        mlp = make_mlp()
        state = mlp.state_dict()
        key = next(iter(state))
        state[key] += 100.0
        assert not np.array_equal(dict(mlp.named_parameters())[key].data, state[key])

    def test_missing_key_raises(self):
        mlp = make_mlp()
        state = mlp.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            mlp.load_state_dict(state)

    def test_unexpected_key_raises(self):
        mlp = make_mlp()
        state = mlp.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            mlp.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        mlp = make_mlp()
        state = mlp.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            mlp.load_state_dict(state)


class TestAverageStateDicts:
    def test_mean_of_two(self):
        a, b = make_mlp(0), make_mlp(1)
        avg = average_state_dicts([a.state_dict(), b.state_dict()])
        key = next(iter(avg))
        expected = (a.state_dict()[key] + b.state_dict()[key]) / 2.0
        assert np.allclose(avg[key], expected)

    def test_single_state_is_identity(self):
        a = make_mlp(0)
        avg = average_state_dicts([a.state_dict()])
        for key, value in a.state_dict().items():
            assert np.allclose(avg[key], value)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            average_state_dicts([])

    def test_mismatched_keys_raise(self):
        a = make_mlp(0).state_dict()
        b = dict(a)
        b["extra"] = np.zeros(1)
        with pytest.raises(KeyError):
            average_state_dicts([a, b])


class TestModesAndFreezing:
    def test_train_eval_propagates(self):
        mlp = make_mlp()
        mlp.eval()
        assert all(not m.training for m in mlp.modules())
        mlp.train()
        assert all(m.training for m in mlp.modules())

    def test_dropout_respects_mode(self):
        rng = np.random.default_rng(0)
        drop = Dropout(0.9, rng)
        x = Tensor(np.ones((4, 4)))
        drop.eval()
        assert np.array_equal(drop(x).data, x.data)
        drop.train()
        assert not np.array_equal(drop(x).data, x.data)

    def test_freeze_blocks_gradients(self):
        mlp = make_mlp()
        mlp.eval()
        mlp.freeze()
        out = mlp(Tensor(np.ones((2, 4)))).sum()
        assert not out.requires_grad
        mlp.unfreeze()
        out = mlp(Tensor(np.ones((2, 4)))).sum()
        assert out.requires_grad

    def test_zero_grad_clears_all(self):
        mlp = make_mlp()
        mlp.eval()
        mlp(Tensor(np.ones((2, 4)))).sum().backward()
        assert any(p.grad is not None for p in mlp.parameters())
        buffers = [p.grad for p in mlp.parameters()]
        mlp.zero_grad()
        # Buffers are zeroed in place and kept for the next backward pass.
        for param, buffer in zip(mlp.parameters(), buffers):
            if buffer is None:
                assert param.grad is None
            else:
                assert param.grad is buffer
                assert np.all(param.grad == 0.0)
        mlp.zero_grad(set_to_none=True)
        assert all(p.grad is None for p in mlp.parameters())


class TestSequential:
    def test_iteration_and_len(self):
        seq = Sequential(Linear(2, 2, np.random.default_rng(0)))
        assert len(seq) == 1
        assert list(seq)
