"""Tests for composite differentiable functions, incl. property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.gradcheck import check_gradient

finite_matrices = arrays(
    np.float64,
    st.tuples(st.integers(2, 5), st.integers(2, 6)),
    elements=st.floats(-10, 10, allow_nan=False),
)


class TestSoftmax:
    @given(finite_matrices)
    @settings(max_examples=30, deadline=None)
    def test_rows_sum_to_one(self, x):
        probs = F.softmax(Tensor(x), axis=-1).data
        assert np.allclose(probs.sum(axis=-1), 1.0)
        assert (probs >= 0).all()

    def test_temperature_sharpens(self):
        logits = Tensor([[1.0, 2.0, 3.0]])
        hot = F.softmax(logits, temperature=0.1).data
        warm = F.softmax(logits, temperature=10.0).data
        assert hot.max() > warm.max()

    def test_low_temperature_approaches_one_hot(self):
        logits = Tensor([[1.0, 2.0, 5.0]])
        probs = F.softmax(logits, temperature=0.01).data
        assert probs[0, 2] > 0.999

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            F.softmax(Tensor([[1.0]]), temperature=0.0)

    def test_numerical_stability_large_logits(self):
        probs = F.softmax(Tensor([[1e4, 0.0]])).data
        assert np.isfinite(probs).all()

    def test_gradient(self):
        rng = np.random.default_rng(0)
        ok, err = check_gradient(
            lambda t: (F.softmax(t, temperature=0.5) ** 2).sum(),
            rng.normal(size=(3, 4)),
        )
        assert ok, err


class TestLogSoftmaxAndCrossEntropy:
    def test_log_softmax_matches_log_of_softmax(self):
        x = np.random.default_rng(1).normal(size=(4, 5))
        assert np.allclose(
            F.log_softmax(Tensor(x)).data, np.log(F.softmax(Tensor(x)).data)
        )

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[20.0, 0.0], [0.0, 20.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_cross_entropy_uniform_equals_log_c(self):
        logits = Tensor(np.zeros((3, 7)))
        loss = F.cross_entropy(logits, np.array([0, 3, 6]))
        assert np.isclose(loss.item(), np.log(7))

    def test_weighted_cross_entropy_gradient(self):
        rng = np.random.default_rng(2)
        labels = np.array([0, 2, 1])
        weights = np.array([1.0, 2.0, 0.5])
        ok, err = check_gradient(
            lambda t: F.cross_entropy(t, labels, weights=weights),
            rng.normal(size=(3, 3)),
        )
        assert ok, err

    def test_weights_reweight_samples(self):
        logits = Tensor(np.array([[4.0, 0.0], [0.0, 1.0]]))
        labels = np.array([1, 0])  # both wrong, by different margins
        uniform = F.cross_entropy(logits, labels).item()
        upweight_worst = F.cross_entropy(
            logits, labels, weights=np.array([0.5, 2.0])
        ).item()
        # Class-1 sample (the badly-wrong one) carries weight 2 -> loss rises.
        assert upweight_worst > uniform


class TestOneHotAndSTE:
    def test_one_hot_shape_and_values(self):
        encoded = F.one_hot(np.array([0, 2]), 3)
        assert encoded.shape == (2, 3)
        assert np.allclose(encoded, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)

    def test_straight_through_forward_is_hard(self):
        soft = F.softmax(Tensor(np.random.default_rng(3).normal(size=(4, 5)), requires_grad=True))
        hard = F.one_hot(soft.data.argmax(axis=1), 5)
        st_out = F.straight_through(hard, soft)
        assert np.allclose(st_out.data, hard)

    def test_straight_through_backward_is_soft(self):
        logits = Tensor(np.array([[1.0, 2.0]]), requires_grad=True)
        soft = F.softmax(logits)
        hard = F.one_hot(soft.data.argmax(axis=1), 2)
        F.straight_through(hard, soft).sum().backward()
        # Gradient of sum(softmax) wrt logits is 0 (rows sum to 1), so the
        # STE path must produce exactly that, not the (zero-grad) hard path.
        assert logits.grad is not None
        assert np.allclose(logits.grad, 0.0, atol=1e-12)

    def test_straight_through_shape_mismatch(self):
        with pytest.raises(ValueError):
            F.straight_through(np.zeros((2, 3)), Tensor(np.zeros((2, 2))))


class TestDistances:
    def test_pairwise_sq_matches_direct(self):
        rng = np.random.default_rng(4)
        a, b = rng.normal(size=(5, 3)), rng.normal(size=(4, 3))
        direct = ((a[:, None, :] - b[None, :, :]) ** 2).sum(-1)
        assert np.allclose(F.pairwise_sq_distances(Tensor(a), Tensor(b)).data, direct)

    def test_pairwise_distances_non_negative(self):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(6, 4))
        d = F.pairwise_distances(Tensor(a), Tensor(a)).data
        assert (d >= 0).all()
        assert np.allclose(np.diag(d), 0.0, atol=1e-5)

    def test_cosine_similarity_bounds(self):
        rng = np.random.default_rng(6)
        sims = F.cosine_similarity(
            Tensor(rng.normal(size=(5, 4))), Tensor(rng.normal(size=(3, 4)))
        ).data
        assert (sims <= 1.0 + 1e-9).all() and (sims >= -1.0 - 1e-9).all()

    def test_cosine_self_similarity_is_one(self):
        x = np.random.default_rng(7).normal(size=(4, 6))
        sims = F.cosine_similarity(Tensor(x), Tensor(x)).data
        assert np.allclose(np.diag(sims), 1.0)

    def test_l2_normalize(self):
        x = np.random.default_rng(8).normal(size=(5, 3))
        norms = np.linalg.norm(F.l2_normalize(Tensor(x)).data, axis=1)
        assert np.allclose(norms, 1.0)


class TestDropoutAndMSE:
    def test_dropout_eval_is_identity(self):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(9)
        x = Tensor(np.ones((2000, 10)))
        out = F.dropout(x, 0.3, rng, training=True)
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, np.random.default_rng(0), training=True)

    def test_mse_zero_for_identical(self):
        x = Tensor(np.arange(5.0))
        assert F.mse(x, Tensor(np.arange(5.0))).item() == 0.0

    def test_mse_gradient(self):
        target = Tensor(np.array([1.0, 2.0, 3.0]))
        ok, err = check_gradient(lambda t: F.mse(t, target), np.zeros(3))
        assert ok, err
