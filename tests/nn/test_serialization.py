"""Tests for state save/load round trips."""

import numpy as np
import pytest

from repro.nn import MLP, Tensor, load_state, save_state
from repro.resilience.errors import CorruptArtifactError, IncompatibleStateError
from repro.resilience.faults import flip_bytes, truncate_file


def test_save_load_roundtrip(tmp_path):
    source = MLP([4, 6, 2], np.random.default_rng(0))
    target = MLP([4, 6, 2], np.random.default_rng(1))
    path = str(tmp_path / "model.npz")
    save_state(source, path)
    load_state(target, path)
    x = Tensor(np.random.default_rng(2).normal(size=(3, 4)))
    source.eval()
    target.eval()
    assert np.allclose(source(x).data, target(x).data)


def test_load_missing_file(tmp_path):
    model = MLP([2, 2], np.random.default_rng(0))
    with pytest.raises(FileNotFoundError):
        load_state(model, str(tmp_path / "nope.npz"))


def test_save_creates_directories(tmp_path):
    model = MLP([2, 2], np.random.default_rng(0))
    nested = str(tmp_path / "a" / "b" / "model.npz")
    save_state(model, nested)
    load_state(model, nested)


class TestLoadValidation:
    """Archives that do not fit the target module are refused up front."""

    def test_wrong_architecture_missing_and_unexpected_keys(self, tmp_path):
        path = str(tmp_path / "model.npz")
        save_state(MLP([4, 6, 2], np.random.default_rng(0)), path)
        other = MLP([4, 2], np.random.default_rng(1))  # fewer layers
        with pytest.raises(IncompatibleStateError, match="missing keys|unexpected keys"):
            load_state(other, path)

    def test_shape_mismatch_is_descriptive(self, tmp_path):
        path = str(tmp_path / "model.npz")
        save_state(MLP([4, 6, 2], np.random.default_rng(0)), path)
        other = MLP([4, 8, 2], np.random.default_rng(1))  # same keys, other widths
        with pytest.raises(IncompatibleStateError, match="shape"):
            load_state(other, path)

    def test_failed_load_leaves_module_untouched(self, tmp_path):
        path = str(tmp_path / "model.npz")
        save_state(MLP([4, 6, 2], np.random.default_rng(0)), path)
        target = MLP([4, 8, 2], np.random.default_rng(1))
        before = target.state_dict()
        with pytest.raises(IncompatibleStateError):
            load_state(target, path)
        after = target.state_dict()
        assert all(np.array_equal(before[key], after[key]) for key in before)

    def test_legacy_archive_still_loads(self, tmp_path):
        # Archives written by the pre-manifest format (bare savez) load fine.
        source = MLP([3, 5, 2], np.random.default_rng(0))
        path = str(tmp_path / "legacy.npz")
        np.savez_compressed(path, **source.state_dict())
        target = MLP([3, 5, 2], np.random.default_rng(1))
        load_state(target, path)
        x = Tensor(np.random.default_rng(2).normal(size=(2, 3)))
        source.eval(), target.eval()
        assert np.allclose(source(x).data, target(x).data)


class TestCorruptionDetection:
    def test_truncated_archive(self, tmp_path):
        path = str(tmp_path / "model.npz")
        save_state(MLP([6, 8, 4], np.random.default_rng(0)), path)
        truncate_file(path, fraction=0.5)
        with pytest.raises(CorruptArtifactError):
            load_state(MLP([6, 8, 4], np.random.default_rng(1)), path)

    def test_bit_flipped_archive(self, tmp_path):
        path = str(tmp_path / "model.npz")
        save_state(MLP([6, 8, 4], np.random.default_rng(0)), path)
        flip_bytes(path, count=4, seed=0)
        with pytest.raises(CorruptArtifactError):
            load_state(MLP([6, 8, 4], np.random.default_rng(1)), path)
