"""Tests for state save/load round trips."""

import numpy as np
import pytest

from repro.nn import MLP, Tensor, load_state, save_state


def test_save_load_roundtrip(tmp_path):
    source = MLP([4, 6, 2], np.random.default_rng(0))
    target = MLP([4, 6, 2], np.random.default_rng(1))
    path = str(tmp_path / "model.npz")
    save_state(source, path)
    load_state(target, path)
    x = Tensor(np.random.default_rng(2).normal(size=(3, 4)))
    source.eval()
    target.eval()
    assert np.allclose(source(x).data, target(x).data)


def test_load_missing_file(tmp_path):
    model = MLP([2, 2], np.random.default_rng(0))
    with pytest.raises(FileNotFoundError):
        load_state(model, str(tmp_path / "nope.npz"))


def test_save_creates_directories(tmp_path):
    model = MLP([2, 2], np.random.default_rng(0))
    nested = str(tmp_path / "a" / "b" / "model.npz")
    save_state(model, nested)
    load_state(model, nested)
