"""Tests for learning-rate schedules."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    ConstantLR,
    CosineAnnealingLR,
    LinearWarmupLR,
    Parameter,
    StepLR,
    WarmupCosineLR,
)


def make_optimizer(lr: float = 1.0) -> SGD:
    return SGD([Parameter(np.zeros(1))], lr=lr)


class TestConstantAndStep:
    def test_constant_never_changes(self):
        sched = ConstantLR(make_optimizer(0.5), total_steps=10)
        assert all(sched.step() == 0.5 for _ in range(10))

    def test_step_lr_decays_at_boundaries(self):
        opt = make_optimizer(1.0)
        sched = StepLR(opt, total_steps=10, step_size=3, gamma=0.1)
        lrs = [sched.step() for _ in range(7)]
        assert lrs[0] == 1.0 and lrs[2] == pytest.approx(0.1)
        assert lrs[5] == pytest.approx(0.01)

    def test_step_lr_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(make_optimizer(), total_steps=10, step_size=0)


class TestCosine:
    def test_starts_near_base_and_ends_at_min(self):
        opt = make_optimizer(1.0)
        sched = CosineAnnealingLR(opt, total_steps=100, min_lr_ratio=0.1)
        first = sched.step()
        lrs = [sched.step() for _ in range(99)]
        assert first > 0.99 * np.cos(np.pi / 100)  # near base
        assert lrs[-1] == pytest.approx(0.1, rel=1e-6)

    def test_monotone_decay(self):
        sched = CosineAnnealingLR(make_optimizer(1.0), total_steps=50)
        lrs = [sched.step() for _ in range(50)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_clamps_past_horizon(self):
        sched = CosineAnnealingLR(make_optimizer(1.0), total_steps=5)
        for _ in range(5):
            sched.step()
        assert sched.step() == pytest.approx(0.0, abs=1e-12)


class TestWarmupSchedules:
    def test_linear_warmup_peaks_at_warmup_end(self):
        sched = LinearWarmupLR(make_optimizer(1.0), total_steps=10, warmup_steps=5)
        lrs = [sched.step() for _ in range(10)]
        assert lrs.index(max(lrs)) == 4  # step 5 = end of warmup
        assert lrs[-1] == pytest.approx(0.0)

    def test_linear_warmup_ramps_linearly(self):
        sched = LinearWarmupLR(make_optimizer(1.0), total_steps=100, warmup_steps=10)
        lrs = [sched.step() for _ in range(4)]
        assert np.allclose(np.diff(lrs), 0.1)

    def test_warmup_cosine_shape(self):
        sched = WarmupCosineLR(make_optimizer(1.0), total_steps=20, warmup_steps=4)
        lrs = [sched.step() for _ in range(20)]
        assert lrs[3] == pytest.approx(1.0)  # warmup peak
        assert all(a >= b - 1e-12 for a, b in zip(lrs[3:], lrs[4:]))  # decay after

    def test_invalid_warmup(self):
        with pytest.raises(ValueError):
            LinearWarmupLR(make_optimizer(), total_steps=5, warmup_steps=9)

    def test_invalid_total_steps(self):
        with pytest.raises(ValueError):
            ConstantLR(make_optimizer(), total_steps=0)

    def test_scheduler_updates_optimizer(self):
        opt = make_optimizer(1.0)
        sched = CosineAnnealingLR(opt, total_steps=4)
        sched.step()
        sched.step()
        assert opt.lr < 1.0
