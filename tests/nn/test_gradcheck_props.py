"""Hypothesis-driven gradient checks over composed operations.

Random compositions of differentiable ops are verified against central
finite differences — the strongest single guarantee we have that the
autograd substrate computes exact gradients for whatever expression the
models build.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, l2_normalize, log_softmax, softmax
from repro.nn.gradcheck import check_gradient, numerical_gradient

# Smooth unary ops (and domains where they are smooth).
UNARY_OPS = {
    "exp": lambda t: t.exp(),
    "tanh": lambda t: t.tanh(),
    "sigmoid": lambda t: t.sigmoid(),
    "square": lambda t: t * t,
    "scale": lambda t: t * 3.5 - 1.25,
    "softmax": lambda t: softmax(t, axis=-1),
    "log_softmax": lambda t: log_softmax(t, axis=-1),
    "normalize": lambda t: l2_normalize(t, axis=-1),
}

REDUCTIONS = {
    "sum": lambda t: t.sum(),
    "mean": lambda t: t.mean(),
    "sq_sum": lambda t: (t * t).sum(),
    "row_mean_sq": lambda t: (t.mean(axis=0) ** 2).sum(),
}


@st.composite
def matrices(draw):
    rows = draw(st.integers(2, 4))
    cols = draw(st.integers(2, 5))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    # Keep magnitudes moderate so finite differences stay well-conditioned.
    return rng.uniform(-2.0, 2.0, size=(rows, cols))


@given(
    matrices(),
    st.lists(st.sampled_from(sorted(UNARY_OPS)), min_size=1, max_size=3).filter(
        # exp∘exp already overflows float64 on |x| ~ 2; allow it once only.
        lambda names: names.count("exp") <= 1
    ),
    st.sampled_from(sorted(REDUCTIONS)),
)
@settings(max_examples=60, deadline=None)
def test_random_compositions_match_numerical_gradient(x, op_names, reduction_name):
    ops = [UNARY_OPS[name] for name in op_names]
    reduction = REDUCTIONS[reduction_name]

    def fn(t: Tensor) -> Tensor:
        for op in ops:
            t = op(t)
        return reduction(t)

    # Central differences lose ~|f|·eps_mach/eps absolute accuracy, so huge
    # outputs (e.g. scale→square→exp reaching e^64) are ill-conditioned by
    # construction, not evidence of a wrong gradient — restrict the property
    # to the regime where finite differences are trustworthy.
    value = float(fn(Tensor(x)).data)
    assume(math.isfinite(value) and abs(value) < 1e5)

    ok, err = check_gradient(fn, x, eps=1e-6, atol=2e-4, rtol=1e-3)
    assert ok, (op_names, reduction_name, err)


@given(matrices(), matrices())
@settings(max_examples=30, deadline=None)
def test_bilinear_forms_match_numerical_gradient(a, b):
    # f(X) = sum((X @ W)^2) for a random W of compatible shape.
    w = b[: a.shape[1]] if b.shape[0] >= a.shape[1] else np.resize(b, (a.shape[1], b.shape[1]))
    w_t = Tensor(w)

    def fn(t: Tensor) -> Tensor:
        return ((t @ w_t) ** 2).sum()

    ok, err = check_gradient(fn, a, atol=1e-4, rtol=1e-3)
    assert ok, err


@given(st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_numerical_gradient_of_linear_map_is_exact(seed):
    rng = np.random.default_rng(seed)
    weights = rng.normal(size=(3, 4))

    def fn(t: Tensor) -> Tensor:
        return (t * Tensor(weights)).sum()

    grad = numerical_gradient(fn, np.zeros((3, 4)))
    assert np.allclose(grad, weights, atol=1e-6)


class TestGradcheckUtility:
    def test_rejects_vector_valued_functions(self):
        with pytest.raises(ValueError):
            check_gradient(lambda t: t * 2.0, np.ones(3))

    def test_detects_wrong_gradient(self):
        # detach() severs the graph, so autograd reports zero gradient while
        # numerical differentiation sees the true slope -> mismatch.
        def broken(t: Tensor) -> Tensor:
            return (t.detach() * 2.0).sum() + t.sum() * 0.0

        ok, _ = check_gradient(broken, np.ones(3))
        assert not ok
