"""Tests for SGD / Adam / AdamW, including parameter groups."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, AdamW, Parameter, Tensor


def quadratic_loss(param: Parameter) -> Tensor:
    return (param * param).sum()


def run_steps(optimizer, param: Parameter, steps: int = 50):
    for _ in range(steps):
        optimizer.zero_grad()
        quadratic_loss(param).backward()
        optimizer.step()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        run_steps(SGD([p], lr=0.1), p)
        assert np.abs(p.data).max() < 1e-3

    def test_momentum_accelerates(self):
        slow = Parameter(np.array([5.0]))
        fast = Parameter(np.array([5.0]))
        run_steps(SGD([slow], lr=0.01), slow, steps=20)
        run_steps(SGD([fast], lr=0.01, momentum=0.9), fast, steps=20)
        assert abs(fast.data[0]) < abs(slow.data[0])

    def test_weight_decay_shrinks_without_gradient_signal(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        for _ in range(10):
            opt.zero_grad()
            (p * 0.0).sum().backward()
            opt.step()
        assert abs(p.data[0]) < 1.0

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()  # no backward happened
        assert p.data[0] == 1.0


class TestAdamFamily:
    def test_adam_converges(self):
        p = Parameter(np.array([4.0, -4.0]))
        run_steps(Adam([p], lr=0.2), p, steps=300)
        assert np.abs(p.data).max() < 0.05

    def test_adamw_converges(self):
        p = Parameter(np.array([4.0, -4.0]))
        run_steps(AdamW([p], lr=0.2, weight_decay=1e-3), p, steps=300)
        assert np.abs(p.data).max() < 0.05

    def test_adamw_decoupled_decay_acts_without_gradients(self):
        p = Parameter(np.array([2.0]))
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (p * 0.0).sum().backward()  # zero gradient
        opt.step()
        assert p.data[0] < 2.0  # decay still applied

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_empty_params(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)


class TestParameterGroups:
    def test_lr_scale_slows_group(self):
        fast = Parameter(np.array([1.0]))
        slow = Parameter(np.array([1.0]))
        opt = SGD(
            [
                {"params": [fast], "lr_scale": 1.0},
                {"params": [slow], "lr_scale": 0.01},
            ],
            lr=0.1,
        )
        for _ in range(5):
            opt.zero_grad()
            (quadratic_loss(fast) + quadratic_loss(slow)).backward()
            opt.step()
        assert abs(fast.data[0]) < abs(slow.data[0])

    def test_zero_scale_freezes_group(self):
        frozen = Parameter(np.array([1.0]))
        opt = AdamW([{"params": [frozen], "lr_scale": 0.0}], lr=0.1, weight_decay=0.1)
        opt.zero_grad()
        quadratic_loss(frozen).backward()
        opt.step()
        assert frozen.data[0] == 1.0

    def test_mixed_flat_and_group_entries(self):
        a = Parameter(np.array([1.0]))
        b = Parameter(np.array([1.0]))
        opt = SGD([a, {"params": [b], "lr_scale": 2.0}], lr=0.1)
        opt.zero_grad()
        (quadratic_loss(a) + quadratic_loss(b)).backward()
        opt.step()
        assert abs(b.data[0] - 1.0) > abs(a.data[0] - 1.0) - 1e-12
