"""Tests for SGD / Adam / AdamW, including parameter groups."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, AdamW, Parameter, Tensor


def quadratic_loss(param: Parameter) -> Tensor:
    return (param * param).sum()


def run_steps(optimizer, param: Parameter, steps: int = 50):
    for _ in range(steps):
        optimizer.zero_grad()
        quadratic_loss(param).backward()
        optimizer.step()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        run_steps(SGD([p], lr=0.1), p)
        assert np.abs(p.data).max() < 1e-3

    def test_momentum_accelerates(self):
        slow = Parameter(np.array([5.0]))
        fast = Parameter(np.array([5.0]))
        run_steps(SGD([slow], lr=0.01), slow, steps=20)
        run_steps(SGD([fast], lr=0.01, momentum=0.9), fast, steps=20)
        assert abs(fast.data[0]) < abs(slow.data[0])

    def test_weight_decay_shrinks_without_gradient_signal(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        for _ in range(10):
            opt.zero_grad()
            (p * 0.0).sum().backward()
            opt.step()
        assert abs(p.data[0]) < 1.0

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()  # no backward happened
        assert p.data[0] == 1.0


class TestAdamFamily:
    def test_adam_converges(self):
        p = Parameter(np.array([4.0, -4.0]))
        run_steps(Adam([p], lr=0.2), p, steps=300)
        assert np.abs(p.data).max() < 0.05

    def test_adamw_converges(self):
        p = Parameter(np.array([4.0, -4.0]))
        run_steps(AdamW([p], lr=0.2, weight_decay=1e-3), p, steps=300)
        assert np.abs(p.data).max() < 0.05

    def test_adamw_decoupled_decay_acts_without_gradients(self):
        p = Parameter(np.array([2.0]))
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (p * 0.0).sum().backward()  # zero gradient
        opt.step()
        assert p.data[0] < 2.0  # decay still applied

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_empty_params(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)


class TestParameterGroups:
    def test_lr_scale_slows_group(self):
        fast = Parameter(np.array([1.0]))
        slow = Parameter(np.array([1.0]))
        opt = SGD(
            [
                {"params": [fast], "lr_scale": 1.0},
                {"params": [slow], "lr_scale": 0.01},
            ],
            lr=0.1,
        )
        for _ in range(5):
            opt.zero_grad()
            (quadratic_loss(fast) + quadratic_loss(slow)).backward()
            opt.step()
        assert abs(fast.data[0]) < abs(slow.data[0])

    def test_zero_scale_freezes_group(self):
        frozen = Parameter(np.array([1.0]))
        opt = AdamW([{"params": [frozen], "lr_scale": 0.0}], lr=0.1, weight_decay=0.1)
        opt.zero_grad()
        quadratic_loss(frozen).backward()
        opt.step()
        assert frozen.data[0] == 1.0

    def test_mixed_flat_and_group_entries(self):
        a = Parameter(np.array([1.0]))
        b = Parameter(np.array([1.0]))
        opt = SGD([a, {"params": [b], "lr_scale": 2.0}], lr=0.1)
        opt.zero_grad()
        (quadratic_loss(a) + quadratic_loss(b)).backward()
        opt.step()
        assert abs(b.data[0] - 1.0) > abs(a.data[0] - 1.0) - 1e-12


def make_param_set(seed: int = 0) -> list[Parameter]:
    rng = np.random.default_rng(seed)
    return [
        Parameter(rng.normal(size=(4, 3))),
        Parameter(rng.normal(size=(3,))),
        Parameter(rng.normal(size=(1,))),
    ]


def toy_loss(params: list[Parameter]) -> Tensor:
    total = (params[0] * params[0]).sum()
    for p in params[1:]:
        total = total + (p * p * 0.5).sum()
    return total


class TestFusedAdamW:
    def test_matches_reference_bit_for_bit(self):
        reference = make_param_set(seed=1)
        fused = make_param_set(seed=1)
        ref_opt = AdamW(reference, lr=0.05, weight_decay=0.01)
        fused_opt = AdamW(fused, lr=0.05, weight_decay=0.01, fused=True)
        for _ in range(25):
            for opt, params in ((ref_opt, reference), (fused_opt, fused)):
                opt.zero_grad()
                toy_loss(params).backward()
                opt.step()
        for ref_p, fused_p in zip(reference, fused):
            # The arena step mirrors the reference op grouping exactly, so
            # trajectories are bit-identical, not merely close.
            np.testing.assert_array_equal(fused_p.data, ref_p.data)

    def test_grads_live_in_arena_and_buffers_are_reused(self):
        params = make_param_set(seed=2)
        opt = AdamW(params, lr=0.05, fused=True)
        opt.zero_grad()
        toy_loss(params).backward()
        opt.step()
        grad_buffers = [p.grad for p in params]
        data_buffers = [p.data for p in params]
        for _ in range(5):
            opt.zero_grad()
            toy_loss(params).backward()
            opt.step()
        # No per-step reallocation: every gradient and parameter array is
        # the same object (an arena view) on every subsequent step.
        for p, grad_buf, data_buf in zip(params, grad_buffers, data_buffers):
            assert p.grad is grad_buf
            assert p.data is data_buf
            assert np.shares_memory(p.grad, opt._flat_grad)
            assert np.shares_memory(p.data, opt._flat_data)

    def test_state_dict_round_trip_resumes_exactly(self):
        steady = make_param_set(seed=3)
        steady_opt = AdamW(steady, lr=0.05, weight_decay=0.01, fused=True)
        resumed = make_param_set(seed=3)
        resumed_opt = AdamW(resumed, lr=0.05, weight_decay=0.01, fused=True)

        def advance(opt, params, steps):
            for _ in range(steps):
                opt.zero_grad()
                toy_loss(params).backward()
                opt.step()

        advance(steady_opt, steady, 10)
        advance(resumed_opt, resumed, 6)

        state = resumed_opt.state_dict()
        fresh = make_param_set(seed=3)
        for fresh_p, resumed_p in zip(fresh, resumed):
            fresh_p.data[...] = resumed_p.data
        fresh_opt = AdamW(fresh, lr=0.05, weight_decay=0.01, fused=True)
        fresh_opt.load_state_dict(state)
        advance(fresh_opt, fresh, 4)

        for steady_p, fresh_p in zip(steady, fresh):
            np.testing.assert_array_equal(fresh_p.data, steady_p.data)

    def test_out_of_band_rebind_is_readopted(self):
        # Code outside the optimiser may replace param.data wholesale
        # (e.g. warm-start codebook injection); the fused step must adopt
        # the new values instead of stepping a stale arena copy.
        params = make_param_set(seed=4)
        opt = AdamW(params, lr=0.05, fused=True)
        params[0].data = np.full((4, 3), 2.0)
        opt.zero_grad()
        toy_loss(params).backward()
        opt.step()
        assert np.all(params[0].data < 2.0)  # stepped from the new values
        assert np.shares_memory(params[0].data, opt._flat_data)
