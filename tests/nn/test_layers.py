"""Tests for the layer zoo."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Embedding,
    FeedForward,
    Identity,
    LayerNorm,
    Linear,
    ResidualMLP,
    Tensor,
)
from repro.nn.gradcheck import check_gradient


class TestLinear:
    def test_output_shape(self):
        layer = Linear(5, 3, np.random.default_rng(0))
        assert layer(Tensor(np.zeros((7, 5)))).shape == (7, 3)

    def test_affine_values(self):
        layer = Linear(2, 2, np.random.default_rng(0))
        x = np.array([[1.0, 2.0]])
        expected = x @ layer.weight.data + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected)

    def test_gradcheck_through_layer(self):
        layer = Linear(3, 2, np.random.default_rng(1))
        ok, err = check_gradient(
            lambda t: (layer(t) ** 2).sum(), np.random.default_rng(2).normal(size=(4, 3))
        )
        assert ok, err


class TestLayerNorm:
    def test_normalises_rows(self):
        layer = LayerNorm(6)
        x = np.random.default_rng(3).normal(2.0, 5.0, size=(4, 6))
        out = layer(Tensor(x)).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gradient(self):
        layer = LayerNorm(4)
        ok, err = check_gradient(
            lambda t: (layer(t) ** 2).sum(),
            np.random.default_rng(4).normal(size=(3, 4)),
        )
        assert ok, err


class TestMLP:
    def test_needs_two_dims(self):
        with pytest.raises(ValueError):
            MLP([4], np.random.default_rng(0))

    def test_forward_shape(self):
        mlp = MLP([4, 8, 8, 2], np.random.default_rng(0))
        assert mlp(Tensor(np.zeros((5, 4)))).shape == (5, 2)

    def test_final_activation_flag(self):
        mlp = MLP([2, 2], np.random.default_rng(0), final_activation=True)
        out = mlp(Tensor(np.random.default_rng(1).normal(size=(20, 2)))).data
        assert (out >= 0).all()  # ReLU applied at the output


class TestResidualMLP:
    def test_identity_at_init(self):
        layer = ResidualMLP(6, [12], np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(5, 6))
        assert np.allclose(layer(Tensor(x)).data, x)

    def test_gate_opens(self):
        layer = ResidualMLP(4, [8], np.random.default_rng(0))
        layer.gate.data[:] = 1.0
        x = np.random.default_rng(2).normal(size=(3, 4))
        assert not np.allclose(layer(Tensor(x)).data, x)

    def test_gradient_reaches_inner_weights(self):
        layer = ResidualMLP(4, [8], np.random.default_rng(0))
        layer.gate.data[:] = 0.5
        out = layer(Tensor(np.random.default_rng(3).normal(size=(2, 4)))).sum()
        out.backward()
        inner_weight = layer.inner.parameters()[0]
        assert inner_weight.grad is not None
        assert np.abs(inner_weight.grad).sum() > 0


class TestFeedForwardEmbeddingIdentity:
    def test_ffn_shape_preserved(self):
        ffn = FeedForward(5, 9, np.random.default_rng(0))
        assert ffn(Tensor(np.zeros((3, 5)))).shape == (3, 5)

    def test_embedding_lookup(self):
        emb = Embedding(10, 4, np.random.default_rng(0))
        out = emb(np.array([1, 1, 7]))
        assert out.shape == (3, 4)
        assert np.allclose(out.data[0], out.data[1])

    def test_embedding_gradient_accumulates_for_repeats(self):
        emb = Embedding(5, 3, np.random.default_rng(0))
        emb(np.array([2, 2])).sum().backward()
        assert np.allclose(emb.weight.grad[2], 2.0)

    def test_identity(self):
        x = Tensor(np.arange(4.0))
        assert Identity()(x) is x


class TestFusedStackParity:
    """MLP / ResidualMLP single-node fast path against the tape stack."""

    def test_mlp_fused_matches_reference(self):
        reference = MLP([4, 8, 8, 3], np.random.default_rng(5))
        fused = MLP([4, 8, 8, 3], np.random.default_rng(5))
        fused.fused = True
        x = np.random.default_rng(6).normal(size=(7, 4))

        x_ref = Tensor(x.copy(), requires_grad=True)
        reference(x_ref).sum().backward()
        x_fused = Tensor(x.copy(), requires_grad=True)
        out = fused(x_fused)
        out.sum().backward()

        assert np.array_equal(out.data, reference(Tensor(x)).data)
        np.testing.assert_allclose(x_fused.grad, x_ref.grad, rtol=0, atol=1e-12)
        for ref_p, fused_p in zip(reference.parameters(), fused.parameters()):
            np.testing.assert_allclose(
                fused_p.grad, ref_p.grad, rtol=1e-12, atol=1e-14
            )

    def test_mlp_with_dropout_keeps_reference_path(self):
        # Dropout draws from the module RNG; fusing it would change the
        # draw order contract, so the fused flag must be a no-op here.
        mlp = MLP([4, 8, 2], np.random.default_rng(7), dropout=0.5,
                  final_activation=True)
        mlp.fused = True
        assert not mlp._stack_fusable
        out = mlp(Tensor(np.random.default_rng(8).normal(size=(5, 4))))
        assert out.shape == (5, 2)

    def test_residual_mlp_fused_matches_reference(self):
        reference = ResidualMLP(5, [10], np.random.default_rng(9))
        fused = ResidualMLP(5, [10], np.random.default_rng(9))
        for layer in (reference, fused):
            layer.gate.data[:] = 0.7
        fused.fused = True
        x = np.random.default_rng(10).normal(size=(6, 5))

        x_ref = Tensor(x.copy(), requires_grad=True)
        reference(x_ref).sum().backward()
        x_fused = Tensor(x.copy(), requires_grad=True)
        out = fused(x_fused)
        out.sum().backward()

        assert np.array_equal(out.data, reference(Tensor(x)).data)
        np.testing.assert_allclose(x_fused.grad, x_ref.grad, rtol=0, atol=1e-12)
        np.testing.assert_allclose(
            fused.gate.grad, reference.gate.grad, rtol=1e-12, atol=1e-14
        )
        for ref_p, fused_p in zip(
            reference.inner.parameters(), fused.inner.parameters()
        ):
            np.testing.assert_allclose(
                fused_p.grad, ref_p.grad, rtol=1e-12, atol=1e-14
            )

    def test_fused_gradcheck(self):
        mlp = MLP([3, 6, 2], np.random.default_rng(11))
        mlp.fused = True
        x = np.random.default_rng(12).normal(size=(4, 3))
        ok, err = check_gradient(lambda t: (mlp(t) * mlp(t)).sum(), x)
        assert ok, f"fused MLP gradcheck failed: {err}"
