"""Tests for the mutable segmented index.

The load-bearing property: **any** interleaving of ``add`` / ``remove`` /
``compact`` leaves the index answering bit-identically to a from-scratch
:class:`QuantizedIndex` rebuilt over the surviving vectors with the same
codebooks. The parity suite drives seeded random interleavings against
that oracle; the unit tests pin the lifecycle, validation, drift gauge,
auto-compaction, and persistence behaviour around it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience.errors import IncompatibleStateError
from repro.retrieval import (
    MutableIndex,
    MutationRequest,
    MutationResult,
    QuantizedIndex,
    SearchRequest,
    Segment,
)
from repro.retrieval.persistence import (
    load_mutable_index,
    save_index,
    save_mutable_index,
)


def make_mutable(seed=0, n_base=80, dim=8, m=3, k_words=16, **kwargs):
    """(mutable index, id -> vector dict, queries, rng) over a tiny corpus."""
    rng = np.random.default_rng(seed)
    codebooks = rng.normal(size=(m, k_words, dim))
    base = rng.normal(size=(n_base, dim))
    index = MutableIndex.from_index(
        QuantizedIndex.build(codebooks, base), **kwargs
    )
    vectors = {i: base[i] for i in range(n_base)}
    return index, vectors, rng.normal(size=(6, dim)), rng


def oracle_search(codebooks, vectors, queries, k):
    """From-scratch rebuild over the survivors, as external ids."""
    ids = np.array(sorted(vectors), dtype=np.int64)
    if len(ids) == 0:
        return np.empty((len(queries), 0), dtype=np.int64)
    rebuilt = QuantizedIndex.build(codebooks, np.stack([vectors[i] for i in ids]))
    return ids[rebuilt.search(queries, k=k)]


def assert_parity(index, vectors, queries, k=10):
    got = index.search(queries, k=k)
    want = oracle_search(index.codebooks, vectors, queries, k)
    assert np.array_equal(got, want), (
        f"mutable search diverged from rebuild "
        f"({index.num_segments} segments, {index.tombstone_count} tombstones)"
    )


class TestMutationRequest:
    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError, match="op"):
            MutationRequest(op="merge")

    def test_add_requires_vectors(self):
        with pytest.raises(ValueError, match="vectors"):
            MutationRequest(op="add")

    def test_remove_requires_ids(self):
        with pytest.raises(ValueError, match="ids"):
            MutationRequest(op="remove")

    def test_apply_dispatches(self):
        index, vectors, queries, rng = make_mutable()
        result = index.apply(
            MutationRequest(op="add", vectors=rng.normal(size=(5, 8)))
        )
        assert isinstance(result, MutationResult)
        assert result.op == "add" and result.added == 5
        result = index.apply(MutationRequest(op="remove", ids=[0, 1]))
        assert result.removed == 2 and result.tombstones == 2
        result = index.apply(MutationRequest(op="compact"))
        assert result.op == "compact"
        assert result.segments == 1 and result.tombstones == 0
        index.close()


class TestLifecycle:
    def test_from_index_adopts_rows(self):
        index, vectors, queries, _ = make_mutable()
        assert len(index) == 80 and index.n_db == 80
        assert index.generation == 1 and index.num_segments == 1
        assert index.live_ids().tolist() == list(range(80))
        assert_parity(index, vectors, queries)
        index.close()

    def test_add_assigns_monotone_ids(self):
        index, vectors, queries, rng = make_mutable()
        first = index.add(rng.normal(size=(7, 8)))
        assert first.added == 7 and first.live == 87
        assert index.live_ids()[-7:].tolist() == list(range(80, 87))
        assert index.id_bound == 87
        index.close()

    def test_add_then_search_sees_new_rows(self):
        index, vectors, queries, rng = make_mutable()
        new = rng.normal(size=(10, 8))
        index.add(new)
        for row in range(10):
            vectors[80 + row] = new[row]
        assert_parity(index, vectors, queries)
        # A query sitting on a new row finds it first.
        hit = index.search(new[:1], k=1)
        assert hit[0, 0] == 80
        index.close()

    def test_remove_hides_rows_immediately(self):
        index, vectors, queries, _ = make_mutable()
        doomed = index.search(queries[:1], k=3)[0]
        result = index.remove(doomed)
        assert result.removed == 3 and result.tombstones == 3
        for ext in doomed:
            del vectors[int(ext)]
        survivors = index.search(queries[:1], k=10)[0]
        assert not set(survivors.tolist()) & set(doomed.tolist())
        assert_parity(index, vectors, queries)
        index.close()

    def test_compact_is_invisible_to_queries(self):
        index, vectors, queries, rng = make_mutable()
        index.add(rng.normal(size=(15, 8)))
        index.remove(index.live_ids()[::7])
        before = index.search(queries, k=10)
        generation = index.generation
        result = index.compact()
        assert result.generation > generation
        assert index.num_segments == 1 and index.tombstone_count == 0
        assert np.array_equal(index.search(queries, k=10), before)
        index.close()

    def test_id_reuse_after_remove(self):
        index, vectors, queries, rng = make_mutable()
        index.remove([3])
        replacement = rng.normal(size=(1, 8))
        result = index.add(replacement, ids=[3])
        assert result.added == 1
        vectors[3] = replacement[0]
        assert_parity(index, vectors, queries)
        index.close()

    def test_empty_add_is_a_noop(self):
        index, _, _, _ = make_mutable()
        generation = index.generation
        result = index.add(np.empty((0, 8)))
        assert result.added == 0
        assert index.generation == generation
        index.close()

    def test_close_is_idempotent_and_context_managed(self):
        index, _, _, _ = make_mutable(engine_kwargs={})
        with index:
            pass
        index.close()


class TestValidation:
    def test_add_rejects_wrong_dim(self):
        index, _, _, rng = make_mutable()
        with pytest.raises(ValueError, match="vectors must be"):
            index.add(rng.normal(size=(3, 5)))
        index.close()

    def test_add_rejects_live_id_clash(self):
        index, _, _, rng = make_mutable()
        with pytest.raises(ValueError, match="live"):
            index.add(rng.normal(size=(1, 8)), ids=[0])
        index.close()

    def test_add_rejects_duplicate_ids_in_batch(self):
        index, _, _, rng = make_mutable()
        with pytest.raises(ValueError, match="duplicate"):
            index.add(rng.normal(size=(2, 8)), ids=[200, 200])
        index.close()

    def test_remove_rejects_unknown_id(self):
        index, _, _, _ = make_mutable()
        with pytest.raises(ValueError, match="not live"):
            index.remove([9999])
        index.close()

    def test_labels_required_is_enforced(self):
        rng = np.random.default_rng(5)
        codebooks = rng.normal(size=(2, 8, 6))
        base = rng.normal(size=(20, 6))
        labelled = QuantizedIndex.build(
            codebooks, base, labels=np.zeros(20, dtype=np.int64)
        )
        index = MutableIndex.from_index(labelled)
        assert index.labels_required
        with pytest.raises(ValueError, match="labels"):
            index.add(rng.normal(size=(2, 6)))
        index.add(rng.normal(size=(2, 6)), labels=[1, 1])
        index.close()

    def test_nprobe_without_ivf_raises(self):
        index, _, queries, _ = make_mutable()
        with pytest.raises(ValueError, match="IVF"):
            index.search_with_distances(queries, k=5, nprobe=4)
        with pytest.raises(ValueError, match="IVF"):
            index.serve(SearchRequest(queries=queries, k=5, nprobe=4))
        index.close()

    def test_engine_hint_rejected(self):
        index, _, queries, _ = make_mutable()
        with pytest.raises(ValueError, match="engine"):
            index.serve(SearchRequest(queries=queries, k=5, engine=object()))
        index.close()


class TestParityInterleavings:
    """Satellite 4: seeded random interleavings against the rebuild oracle."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_interleaving_matches_rebuild(self, seed):
        index, vectors, queries, rng = make_mutable(
            seed=100 + seed, n_base=50
        )
        next_id = 50
        ops = rng.choice(
            ["add", "remove", "compact"], size=14, p=[0.5, 0.35, 0.15]
        )
        for op in ops:
            if op == "add":
                n = int(rng.integers(1, 12))
                new = rng.normal(size=(n, 8))
                ids = np.arange(next_id, next_id + n)
                index.add(new, ids=ids)
                for row, ext in enumerate(ids):
                    vectors[int(ext)] = new[row]
                next_id += n
            elif op == "remove" and vectors:
                live = np.array(sorted(vectors))
                n = int(rng.integers(1, max(2, len(live) // 4)))
                doomed = rng.choice(live, size=min(n, len(live)), replace=False)
                index.remove(doomed)
                for ext in doomed:
                    del vectors[int(ext)]
            elif op == "compact":
                index.compact()
            assert_parity(index, vectors, queries)
        assert len(index) == len(vectors)
        index.close()

    def test_all_rows_tombstoned(self):
        index, vectors, queries, rng = make_mutable(n_base=20)
        index.remove(index.live_ids())
        assert len(index) == 0
        result = index.search(queries, k=5)
        assert result.shape == (len(queries), 0)
        # Compacting the empty index and growing it again both work.
        compacted = index.compact()
        assert compacted.live == 0
        new = rng.normal(size=(4, 8))
        added = index.add(new)
        assert added.live == 4
        fresh = {index.id_bound - 4 + row: new[row] for row in range(4)}
        assert_parity(index, fresh, queries)
        index.close()

    def test_k_exceeding_live_count_truncates(self):
        index, vectors, queries, _ = make_mutable(n_base=12)
        index.remove(index.live_ids()[:5])
        result = index.search(queries, k=50)
        assert result.shape == (len(queries), 7)
        index.close()

    @pytest.mark.parametrize(
        "engine_kwargs", [{}, {"ivf": 6, "nprobe": 6}], ids=["engine", "ivf"]
    )
    def test_engine_and_ivf_base_match_plain_scan(self, engine_kwargs):
        plain, vectors, queries, rng = make_mutable(seed=9, n_base=60)
        backed, _, _, _ = make_mutable(seed=9, n_base=60, engine_kwargs=engine_kwargs)
        for index in (plain, backed):
            adds = np.random.default_rng(42).normal(size=(20, 8))
            index.add(adds)
            index.remove(index.live_ids()[::5])
        assert np.array_equal(
            plain.search(queries, k=10), backed.search(queries, k=10)
        )
        # Compaction rebuilds the engine layout; parity must survive it.
        backed.compact()
        plain.compact()
        assert np.array_equal(
            plain.search(queries, k=10), backed.search(queries, k=10)
        )
        if "ivf" in engine_kwargs:
            assert backed.ivf is not None
        plain.close()
        backed.close()


class TestSearchAPISurface:
    def test_serve_returns_mutable_source(self):
        index, vectors, queries, _ = make_mutable()
        result = index.serve(SearchRequest(queries=queries, k=5))
        assert result.source == "mutable"
        assert result.width == 5
        assert np.array_equal(result.indices, index.search(queries, k=5))
        index.close()

    def test_request_and_k_together_is_an_error(self):
        index, _, queries, _ = make_mutable()
        with pytest.raises(TypeError, match="SearchRequest"):
            index.search(SearchRequest(queries=queries, k=5), k=5)
        index.close()


class TestDriftGauge:
    def test_shifted_adds_flag_refresh(self):
        index, _, _, rng = make_mutable(drift_threshold=2.0)
        index.set_drift_baseline(rng.normal(size=(40, 8)))
        index.add(rng.normal(size=(10, 8)))
        assert not index.refresh_recommended
        index.add(rng.normal(size=(10, 8)) + 25.0)  # far off-distribution
        assert index.drift_ratio > 2.0
        assert index.refresh_recommended
        # The flag latches even if later batches drift back.
        index.add(rng.normal(size=(10, 8)))
        assert index.refresh_recommended
        index.close()


class TestAutoCompaction:
    def test_segment_count_trigger(self):
        index, _, _, rng = make_mutable(auto_compact_segments=2)
        index.add(rng.normal(size=(4, 8)))
        assert index.num_segments <= 2
        index.add(rng.normal(size=(4, 8)))
        index.add(rng.normal(size=(4, 8)))
        assert index.num_segments <= 2
        index.close()

    def test_dead_fraction_trigger(self):
        index, _, _, _ = make_mutable(
            n_base=40, auto_compact_dead_fraction=0.25
        )
        index.remove(index.live_ids()[:15])
        assert index.tombstone_count == 0  # compaction swept them
        assert index.num_segments == 1
        index.close()


class TestPersistence:
    def test_round_trip_preserves_everything(self, tmp_path):
        index, vectors, queries, rng = make_mutable()
        index.add(rng.normal(size=(12, 8)))
        index.remove(index.live_ids()[::6])
        path = str(tmp_path / "mutable.npz")
        save_mutable_index(index, path)
        loaded = load_mutable_index(path)
        assert loaded.generation == index.generation
        assert loaded.id_bound == index.id_bound
        assert loaded.tombstone_count == index.tombstone_count
        assert loaded.num_segments == index.num_segments
        assert np.array_equal(
            loaded.search(queries, k=10), index.search(queries, k=10)
        )
        # The loaded index is still mutable.
        result = loaded.add(rng.normal(size=(3, 8)))
        assert result.added == 3
        index.close()
        loaded.close()

    def test_wrong_kind_is_rejected(self, tmp_path):
        rng = np.random.default_rng(0)
        codebooks = rng.normal(size=(2, 8, 6))
        immutable = QuantizedIndex.build(codebooks, rng.normal(size=(10, 6)))
        path = str(tmp_path / "index.npz")
        save_index(immutable, path)
        with pytest.raises(IncompatibleStateError):
            load_mutable_index(path)


class TestSegmentInternals:
    def test_seal_sorts_by_id(self):
        rng = np.random.default_rng(1)
        codes = rng.integers(0, 4, size=(5, 2))
        norms = rng.random(5)
        ids = np.array([30, 10, 50, 20, 40])
        segment = Segment.seal(codes, norms, ids, labels=None)
        assert segment.ids.tolist() == [10, 20, 30, 40, 50]
        assert segment.n_live == 5 and segment.n_dead == 0

    def test_with_dead_masks_scan_norms(self):
        rng = np.random.default_rng(2)
        segment = Segment.seal(
            rng.integers(0, 4, size=(4, 2)),
            rng.random(4),
            np.arange(4),
            labels=None,
        )
        dead = segment.with_dead(np.array([1, 3]))
        assert dead.n_dead == 2 and dead.n_live == 2
        assert np.isinf(dead.scan_norms[[1, 3]]).all()
        assert np.isfinite(dead.scan_norms[[0, 2]]).all()
        # Copy-on-write: the original segment is untouched.
        assert segment.n_dead == 0
