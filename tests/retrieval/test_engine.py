"""Tests for the sharded parallel ADC query engine."""

import numpy as np
import pytest

from repro.retrieval.adc import adc_distances
from repro.retrieval.engine import (
    QueryEngine,
    ShardedIndex,
    compact_code_dtype,
    merge_topk,
    shard_bounds,
    topk_tie_stable,
)
from repro.retrieval.index import QuantizedIndex
from repro.retrieval.search import rank_by_distance


def make_index(seed=0, n_db=120, m=3, k_words=16, dim=6):
    rng = np.random.default_rng(seed)
    codebooks = rng.normal(size=(m, k_words, dim))
    codes = rng.integers(0, k_words, size=(n_db, m))
    index = QuantizedIndex.build(
        codebooks, rng.normal(size=(n_db, dim)), codes=codes
    )
    return index, rng.normal(size=(17, dim))


def serial_topk(index, queries, k):
    distances = adc_distances(
        queries, index.codes, index.codebooks, db_sq_norms=index.db_sq_norms
    )
    return rank_by_distance(distances, k=k)


class TestCompactDtype:
    def test_thresholds(self):
        assert compact_code_dtype(2) == np.uint8
        assert compact_code_dtype(256) == np.uint8
        assert compact_code_dtype(257) == np.uint16
        assert compact_code_dtype(2**16) == np.uint16
        assert compact_code_dtype(2**16 + 1) == np.uint32

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            compact_code_dtype(0)


class TestShardBounds:
    def test_partition_is_exact_and_even(self):
        bounds = shard_bounds(10, 3)
        assert bounds[0][0] == 0 and bounds[-1][1] == 10
        sizes = [hi - lo for lo, hi in bounds]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo

    def test_clamps_to_items(self):
        assert len(shard_bounds(2, 8)) == 2

    def test_empty_database(self):
        assert shard_bounds(0, 4) == [(0, 0)]


class TestTieStableTopk:
    def test_duplicate_distances_resolve_to_lower_index(self):
        d = np.array([[3.0, 1.0, 1.0, 1.0, 2.0]])
        idx, vals = topk_tie_stable(d, 2)
        assert idx.tolist() == [[1, 2]]
        assert vals.tolist() == [[1.0, 1.0]]

    def test_matches_stable_argsort_prefix(self):
        rng = np.random.default_rng(3)
        # Quantized distances force heavy ties.
        d = rng.integers(0, 4, size=(20, 30)).astype(np.float64)
        for k in (1, 5, 29, 30):
            idx, vals = topk_tie_stable(d, k)
            full = np.argsort(d, axis=1, kind="stable")[:, :k]
            assert np.array_equal(idx, full)
            rows = np.arange(d.shape[0])[:, None]
            assert np.array_equal(vals, d[rows, full])

    def test_k_zero(self):
        idx, vals = topk_tie_stable(np.ones((4, 6)), 0)
        assert idx.shape == vals.shape == (4, 0)


class TestMergeTopk:
    def test_merges_across_shards_with_duplicate_distances(self):
        # Two shards whose candidate lists interleave and tie: global index
        # order must break the 1.0 ties (db item 2 before 5 before 9).
        d1 = np.array([[1.0, 3.0]])
        i1 = np.array([[5, 0]])
        d2 = np.array([[1.0, 1.0, 2.0]])
        i2 = np.array([[2, 9, 7]])
        idx, vals = merge_topk([d1, d2], [i1, i2], 4)
        assert idx.tolist() == [[2, 5, 9, 7]]
        assert vals.tolist() == [[1.0, 1.0, 1.0, 2.0]]

    def test_k_wider_than_candidates(self):
        idx, vals = merge_topk([np.array([[1.0]])], [np.array([[4]])], 10)
        assert idx.tolist() == [[4]]


class TestShardedIndex:
    def test_codes_compact_and_transposed(self):
        index, _ = make_index(k_words=16)
        sharded = ShardedIndex(index, num_shards=4)
        assert sharded.codes_t.dtype == np.uint8
        assert sharded.codes_t.shape == (index.num_codebooks, len(index))
        assert np.array_equal(sharded.codes_t.T, index.codes)

    def test_matches_geometry(self):
        index, _ = make_index()
        other, _ = make_index(seed=1, n_db=50)
        sharded = ShardedIndex(index, num_shards=2)
        assert sharded.matches(index)
        assert not sharded.matches(other)


class TestEngineParity:
    @pytest.mark.parametrize("num_shards", [1, 2, 5])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_matches_serial_across_shards_and_dtypes(self, num_shards, dtype):
        index, queries = make_index()
        want = serial_topk(index, queries, 10)
        with QueryEngine(index, num_shards=num_shards, dtype=dtype) as engine:
            assert np.array_equal(engine.search(queries, k=10), want)

    @pytest.mark.parametrize("seed", range(5))
    def test_property_random_indexes(self, seed):
        index, queries = make_index(seed=seed, n_db=90, m=4, k_words=8)
        with QueryEngine(index, num_shards=3) as engine:
            for k in (1, 7, None):
                assert np.array_equal(
                    engine.search(queries, k=k), serial_topk(index, queries, k)
                )

    def test_wide_codebook_uses_uint16(self):
        index, queries = make_index(seed=2, n_db=80, m=2, k_words=300)
        assert ShardedIndex(index, num_shards=2).codes_t.dtype == np.uint16
        with QueryEngine(index, num_shards=2) as engine:
            assert np.array_equal(
                engine.search(queries, k=5), serial_topk(index, queries, 5)
            )

    def test_k_edges(self):
        index, queries = make_index()
        n_db = len(index)
        with QueryEngine(index, num_shards=3) as engine:
            for k in (1, n_db, n_db + 50, None):
                got = engine.search(queries, k=k)
                assert got.shape[1] == min(k, n_db) if k is not None else n_db
                assert np.array_equal(got, serial_topk(index, queries, k))

    def test_empty_query_batch(self):
        index, _ = make_index()
        with QueryEngine(index, num_shards=2) as engine:
            out = engine.search(np.empty((0, index.dim)), k=5)
            assert out.shape == (0, 5)
            assert out.dtype == np.int64

    def test_float64_distances_bitwise_equal_serial(self):
        index, queries = make_index(seed=4)
        reference = adc_distances(
            queries, index.codes, index.codebooks, db_sq_norms=index.db_sq_norms
        )
        with QueryEngine(index, num_shards=3, dtype=np.float64,
                         rerank=False) as engine:
            idx, vals = engine.search_with_distances(queries, k=len(index))
            rows = np.arange(len(queries))[:, None]
            assert np.array_equal(vals, reference[rows, idx])

    def test_rejects_bad_query_shape(self):
        index, _ = make_index()
        with QueryEngine(index) as engine:
            with pytest.raises(ValueError, match="queries"):
                engine.search(np.zeros((3, index.dim + 1)))
            with pytest.raises(ValueError, match="k must be"):
                engine.search(np.zeros((3, index.dim)), k=-1)


class TestEngineDispatch:
    def test_auto_keeps_small_batches_in_process(self):
        index, queries = make_index()
        with QueryEngine(index, workers=2, num_shards=2) as engine:
            engine.search(queries, k=5)
            assert engine.last_dispatch == "in-process"

    def test_forced_pool_matches_serial(self):
        index, queries = make_index()
        want = serial_topk(index, queries, 10)
        with QueryEngine(index, workers=2, num_shards=4,
                         parallel="force") as engine:
            got = engine.search(queries, k=10)
            assert engine.last_dispatch == "process-pool"
            assert np.array_equal(got, want)
            # Second batch reuses the warm pool.
            assert np.array_equal(engine.search(queries, k=3),
                                  serial_topk(index, queries, 3))

    def test_never_pins_in_process(self):
        index, queries = make_index()
        with QueryEngine(index, workers=2, num_shards=2, parallel="never",
                         min_parallel_codes=0) as engine:
            engine.search(queries, k=5)
            assert engine.last_dispatch == "in-process"

    def test_rejects_unknown_parallel_mode(self):
        index, _ = make_index()
        with pytest.raises(ValueError, match="parallel"):
            QueryEngine(index, parallel="sometimes")


class TestIndexDelegation:
    def test_search_with_engine_matches_serial(self):
        index, queries = make_index()
        want = index.search(queries, k=10)
        with QueryEngine(index, num_shards=3) as engine:
            assert np.array_equal(index.search(queries, k=10, engine=engine), want)

    def test_search_labels_through_engine(self):
        rng = np.random.default_rng(5)
        index, queries = make_index(seed=5)
        index.labels = rng.integers(0, 4, size=len(index))
        with QueryEngine(index, num_shards=2) as engine:
            assert np.array_equal(
                index.search_labels(queries, k=5, engine=engine),
                index.search_labels(queries, k=5),
            )

    def test_geometry_mismatch_raises(self):
        index, queries = make_index()
        other, _ = make_index(seed=1, n_db=60)
        with QueryEngine(other) as engine:
            with pytest.raises(ValueError, match="geometry"):
                index.search(queries, k=5, engine=engine)


def _hang_scan_shard(args):
    """Stand-in pool worker that never answers (dead/hung worker)."""
    import time as _time

    _time.sleep(60)


def _crash_scan_shard(args):
    """Stand-in pool worker that dies mid-dispatch."""
    raise RuntimeError("simulated worker crash")


class TestEnginePoolFallback:
    def test_hung_workers_fall_back_to_serial_scan(self, monkeypatch):
        import repro.retrieval.engine as engine_mod

        index, queries = make_index()
        want = serial_topk(index, queries, 5)
        with QueryEngine(index, workers=2, num_shards=4, parallel="force",
                         task_timeout_s=0.3) as engine:
            with monkeypatch.context() as patched:
                # Fork start method: patching the parent's module function
                # before the pool is created propagates to the children.
                patched.setattr(engine_mod, "_pool_scan_shard", _hang_scan_shard)
                got = engine.search(queries, k=5)
            assert engine.last_dispatch == "in-process-fallback"
            assert np.array_equal(got, want)
            assert engine._pool is None  # the hung pool was terminated
            # The engine recovers: the next dispatch rebuilds a healthy
            # pool over the same shared-memory buffers.
            again = engine.search(queries, k=5)
            assert engine.last_dispatch == "process-pool"
            assert np.array_equal(again, want)

    def test_worker_exception_mid_dispatch_falls_back(self, monkeypatch):
        import repro.retrieval.engine as engine_mod

        index, queries = make_index(seed=2)
        want = serial_topk(index, queries, 7)
        with QueryEngine(index, workers=2, num_shards=4,
                         parallel="force") as engine:
            with monkeypatch.context() as patched:
                patched.setattr(engine_mod, "_pool_scan_shard", _crash_scan_shard)
                got = engine.search(queries, k=7)
            assert engine.last_dispatch == "in-process-fallback"
            assert np.array_equal(got, want)
            assert engine._pool is None

    def test_fallback_increments_obs_counter(self, monkeypatch):
        import repro.obs as obs
        from repro.obs import names as metric_names
        import repro.retrieval.engine as engine_mod

        index, queries = make_index(seed=3)
        handle = obs.enable_observability()
        try:
            with QueryEngine(index, workers=2, num_shards=2, parallel="force",
                             task_timeout_s=0.3) as engine:
                with monkeypatch.context() as patched:
                    patched.setattr(
                        engine_mod, "_pool_scan_shard", _crash_scan_shard
                    )
                    engine.search(queries, k=5)
            counter = handle.registry.counter(metric_names.ENGINE_POOL_FALLBACKS)
            assert counter.value == 1
        finally:
            obs.disable_observability()

    def test_task_timeout_validation(self):
        index, _ = make_index()
        with pytest.raises(ValueError, match="task_timeout_s"):
            QueryEngine(index, task_timeout_s=0.0)
        engine = QueryEngine(index, task_timeout_s=None)  # None disables it
        engine.close()


class TestRerankOverride:
    def test_per_call_override_matches_constructor_setting(self):
        index, queries = make_index(seed=4)
        with QueryEngine(index, rerank=True) as on, \
                QueryEngine(index, rerank=False) as off:
            for k in (1, 5, 20):
                got_i, got_d = on.search_with_distances(
                    queries, k=k, rerank=False
                )
                want_i, want_d = off.search_with_distances(queries, k=k)
                assert np.array_equal(got_i, want_i)
                assert np.array_equal(got_d, want_d)
                got_i, got_d = off.search_with_distances(
                    queries, k=k, rerank=True
                )
                want_i, want_d = on.search_with_distances(queries, k=k)
                assert np.array_equal(got_i, want_i)
                assert np.array_equal(got_d, want_d)

    def test_override_none_keeps_engine_default(self):
        index, queries = make_index(seed=6)
        with QueryEngine(index, rerank=True) as engine:
            base = engine.search(queries, k=10)
            assert np.array_equal(engine.search(queries, k=10, rerank=None), base)
