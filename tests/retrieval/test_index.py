"""Tests for the QuantizedIndex."""

import numpy as np
import pytest

from repro.retrieval.adc import encode_nearest
from repro.retrieval.index import QuantizedIndex
from repro.retrieval.search import exhaustive_search


def build_index(seed: int = 0, n: int = 60, with_labels: bool = True):
    rng = np.random.default_rng(seed)
    codebooks = rng.normal(size=(3, 16, 8))
    database = rng.normal(size=(n, 8))
    labels = rng.integers(0, 4, size=n) if with_labels else None
    return QuantizedIndex.build(codebooks, database, labels=labels), database


class TestConstruction:
    def test_build_encodes_database(self):
        index, database = build_index()
        assert len(index) == len(database)
        assert index.codes.shape == (60, 3)
        assert index.num_codebooks == 3
        assert index.num_codewords == 16
        assert index.dim == 8

    def test_norms_match_reconstructions(self):
        index, _ = build_index()
        recon = index.reconstructions()
        assert np.allclose(index.db_sq_norms, (recon**2).sum(axis=1))

    def test_invalid_shapes(self):
        rng = np.random.default_rng(1)
        codebooks = rng.normal(size=(2, 4, 3))
        with pytest.raises(ValueError):
            QuantizedIndex(codebooks, np.zeros((5, 2), dtype=int), np.zeros(4))
        with pytest.raises(ValueError):
            QuantizedIndex(
                codebooks,
                np.zeros((5, 2), dtype=int),
                np.zeros(5),
                labels=np.zeros(4, dtype=int),
            )
        with pytest.raises(ValueError):
            QuantizedIndex(np.zeros((4, 3)), np.zeros((5, 2), dtype=int), np.zeros(5))


class TestSearch:
    def test_search_matches_exhaustive_over_reconstructions(self):
        index, _ = build_index()
        rng = np.random.default_rng(2)
        queries = rng.normal(size=(9, 8))
        via_index = index.search(queries)
        via_exact = exhaustive_search(queries, index.reconstructions())
        assert np.array_equal(via_index, via_exact)

    def test_topk_shape(self):
        index, _ = build_index()
        result = index.search(np.zeros((4, 8)), k=5)
        assert result.shape == (4, 5)

    def test_search_labels(self):
        index, _ = build_index()
        labels = index.search_labels(np.zeros((2, 8)), k=3)
        assert labels.shape == (2, 3)

    def test_search_labels_without_labels_raises(self):
        index, _ = build_index(with_labels=False)
        with pytest.raises(RuntimeError):
            index.search_labels(np.zeros((1, 8)))

    def test_explicit_codes_are_respected(self):
        rng = np.random.default_rng(3)
        codebooks = rng.normal(size=(2, 8, 4))
        database = rng.normal(size=(10, 4))
        codes = encode_nearest(database, codebooks)
        built = QuantizedIndex.build(codebooks, database, codes=codes)
        assert np.array_equal(built.codes, codes)


class TestBuildObservability:
    def test_encode_time_observed_only_when_encoding(self):
        # Regression: build() used to observe index.encode.time_s even when
        # codes were supplied, polluting the histogram with near-zero
        # samples that dragged its percentiles down.
        from repro import obs
        from repro.obs import names as metric_names

        rng = np.random.default_rng(4)
        codebooks = rng.normal(size=(2, 8, 4))
        database = rng.normal(size=(10, 4))
        codes = encode_nearest(database, codebooks)
        try:
            with obs.observed() as handle:
                QuantizedIndex.build(codebooks, database, codes=codes)
                encode_hist = handle.registry.histogram(
                    metric_names.INDEX_ENCODE_TIME
                )
                build_hist = handle.registry.histogram(
                    metric_names.INDEX_BUILD_TIME
                )
                assert encode_hist.count == 0
                assert build_hist.count == 1
                QuantizedIndex.build(codebooks, database)
                assert encode_hist.count == 1
                assert build_hist.count == 2
        finally:
            obs.disable_observability()
