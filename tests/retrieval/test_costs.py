"""Tests for the §IV space/inference cost model."""

import numpy as np
import pytest

from repro.retrieval.costs import (
    asymptotic_compression_ratio,
    efficiency_sweep,
    storage_cost,
    theoretical_speedup,
)


class TestStorageCost:
    def test_formula_components(self):
        cost = storage_cost(n_db=1000, dim=64, num_codebooks=4, num_codewords=256)
        assert cost.codebook_bytes == 4 * 256 * 4 * 64
        assert cost.code_bytes == 1000 * 4 * 8 / 8  # log2(256) = 8 bits
        assert cost.norm_bytes == 4 * 1000
        assert cost.continuous_bytes == 4 * 1000 * 64

    def test_paper_scale_compression_ratio(self):
        # QBA full database: §V-E reports a 240x compression ratio.
        cost = storage_cost(n_db=642_000, dim=768, num_codebooks=4, num_codewords=256)
        assert cost.compression_ratio == pytest.approx(240, rel=0.05)

    def test_tiny_database_may_not_compress(self):
        # 1/1000 of QBA (~642 rows): codebooks dominate; ratio < 1 (§V-E).
        cost = storage_cost(n_db=642, dim=768, num_codebooks=4, num_codewords=256)
        assert cost.compression_ratio < 1.0

    def test_asymptotic_limit_bounds_finite_ratio(self):
        limit = asymptotic_compression_ratio(768, 4, 256)
        finite = storage_cost(10**7, 768, 4, 256).compression_ratio
        assert finite < limit
        assert finite == pytest.approx(limit, rel=0.05)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            storage_cost(0, 10, 4, 16)


class TestSpeedup:
    def test_grows_with_database(self):
        small = theoretical_speedup(1_000, 768, 4, 256)
        large = theoretical_speedup(1_000_000, 768, 4, 256)
        assert large > small

    def test_tiny_database_no_speedup(self):
        assert theoretical_speedup(642, 768, 4, 256) < 1.0

    def test_saturates_at_d_over_m(self):
        # As n -> inf, speedup -> d / M.
        huge = theoretical_speedup(10**9, 768, 4, 256)
        assert huge == pytest.approx(768 / 4, rel=0.01)


class TestEfficiencySweep:
    def test_sweep_shapes_and_monotonicity(self):
        rng = np.random.default_rng(0)
        codebooks = rng.normal(size=(4, 16, 16))
        database = rng.normal(size=(2000, 16))
        queries = rng.normal(size=(20, 16))
        measurements = efficiency_sweep(
            queries, database, codebooks, fractions=(0.01, 0.1, 1.0), repeats=1
        )
        assert [m.fraction for m in measurements] == [0.01, 0.1, 1.0]
        compressions = [m.measured_compression for m in measurements]
        assert compressions[0] < compressions[1] < compressions[2]
        theory = [m.theoretical_speedup for m in measurements]
        assert theory[0] < theory[1] < theory[2]
        assert all(m.measured_speedup > 0 for m in measurements)
