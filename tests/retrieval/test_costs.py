"""Tests for the §IV space/inference cost model."""

import numpy as np
import pytest

from repro.retrieval.costs import (
    COST_FEATURE_NAMES,
    CostModel,
    SearchConfig,
    asymptotic_compression_ratio,
    cost_features,
    efficiency_sweep,
    serving_memory_bytes,
    storage_cost,
    stored_code_bytes_per_item,
    theoretical_speedup,
)


class TestStorageCost:
    def test_formula_components(self):
        cost = storage_cost(n_db=1000, dim=64, num_codebooks=4, num_codewords=256)
        assert cost.codebook_bytes == 4 * 256 * 4 * 64
        assert cost.code_bytes == 1000 * 4 * 8 / 8  # log2(256) = 8 bits
        assert cost.norm_bytes == 4 * 1000
        assert cost.continuous_bytes == 4 * 1000 * 64

    def test_paper_scale_compression_ratio(self):
        # QBA full database: §V-E reports a 240x compression ratio.
        cost = storage_cost(n_db=642_000, dim=768, num_codebooks=4, num_codewords=256)
        assert cost.compression_ratio == pytest.approx(240, rel=0.05)

    def test_tiny_database_may_not_compress(self):
        # 1/1000 of QBA (~642 rows): codebooks dominate; ratio < 1 (§V-E).
        cost = storage_cost(n_db=642, dim=768, num_codebooks=4, num_codewords=256)
        assert cost.compression_ratio < 1.0

    def test_asymptotic_limit_bounds_finite_ratio(self):
        limit = asymptotic_compression_ratio(768, 4, 256)
        finite = storage_cost(10**7, 768, 4, 256).compression_ratio
        assert finite < limit
        assert finite == pytest.approx(limit, rel=0.05)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            storage_cost(0, 10, 4, 16)


class TestSpeedup:
    def test_grows_with_database(self):
        small = theoretical_speedup(1_000, 768, 4, 256)
        large = theoretical_speedup(1_000_000, 768, 4, 256)
        assert large > small

    def test_tiny_database_no_speedup(self):
        assert theoretical_speedup(642, 768, 4, 256) < 1.0

    def test_saturates_at_d_over_m(self):
        # As n -> inf, speedup -> d / M.
        huge = theoretical_speedup(10**9, 768, 4, 256)
        assert huge == pytest.approx(768 / 4, rel=0.01)


class TestEfficiencySweep:
    def test_sweep_shapes_and_monotonicity(self):
        rng = np.random.default_rng(0)
        codebooks = rng.normal(size=(4, 16, 16))
        database = rng.normal(size=(2000, 16))
        queries = rng.normal(size=(20, 16))
        measurements = efficiency_sweep(
            queries, database, codebooks, fractions=(0.01, 0.1, 1.0), repeats=1
        )
        assert [m.fraction for m in measurements] == [0.01, 0.1, 1.0]
        compressions = [m.measured_compression for m in measurements]
        assert compressions[0] < compressions[1] < compressions[2]
        theory = [m.theoretical_speedup for m in measurements]
        assert theory[0] < theory[1] < theory[2]
        assert all(m.measured_speedup > 0 for m in measurements)


class TestStoredByteAccounting:
    def test_power_of_256_matches_ideal(self):
        """K=256 packs exactly 8 bits per code: ideal == as-stored."""
        cost = storage_cost(1000, 32, 8, 256)
        assert cost.code_bytes == cost.code_bytes_stored
        assert cost.compression_ratio == pytest.approx(
            cost.compression_ratio_stored
        )

    def test_non_power_of_256_ideal_undercounts(self):
        """K=512 stores 9-bit ids in uint16 lanes: the fractional-bit
        accounting undercounts what the engine allocates."""
        cost = storage_cost(1000, 32, 8, 512)
        assert stored_code_bytes_per_item(8, 512) == 16  # 8 x uint16
        assert cost.code_bytes == pytest.approx(1000 * 8 * 9 / 8)
        assert cost.code_bytes_stored == 1000 * 16
        assert cost.code_bytes < cost.code_bytes_stored
        assert cost.compression_ratio > cost.compression_ratio_stored

    def test_asymptotic_ratio_stored_flag(self):
        ideal = asymptotic_compression_ratio(32, 8, 512)
        stored = asymptotic_compression_ratio(32, 8, 512, stored=True)
        assert stored < ideal
        assert stored == pytest.approx(4 * 32 / (16 + 4))
        # At a power of 256 the two accountings agree.
        assert asymptotic_compression_ratio(32, 8, 256) == pytest.approx(
            asymptotic_compression_ratio(32, 8, 256, stored=True)
        )


class TestSearchConfig:
    def _config(self, **overrides):
        defaults = dict(n_db=10_000, dim=32, num_codebooks=8,
                        num_codewords=256)
        defaults.update(overrides)
        return SearchConfig(**defaults)

    def test_validation(self):
        with pytest.raises(ValueError):
            self._config(n_db=0)
        with pytest.raises(ValueError):
            self._config(k=0)
        with pytest.raises(ValueError):
            self._config(workers=0)
        with pytest.raises(ValueError):
            self._config(nprobe=-1)
        with pytest.raises(ValueError):
            self._config(lut_dtype="float16")

    def test_candidates_prune_with_nprobe(self):
        exhaustive = self._config()
        assert not exhaustive.uses_ivf
        assert exhaustive.candidates == 10_000
        ivf = self._config(num_cells=100, nprobe=10)
        assert ivf.uses_ivf
        assert ivf.candidates == pytest.approx(1_000)
        # nprobe beyond the cell count cannot probe more than everything.
        assert self._config(num_cells=4, nprobe=100).candidates == 10_000

    def test_code_dtype_follows_k(self):
        assert self._config(num_codewords=256).code_dtype == "uint8"
        assert self._config(num_codewords=512).code_dtype == "uint16"

    def test_effective_workers_mirror_engine_rules(self, monkeypatch):
        import repro.retrieval.costs as costs

        monkeypatch.setattr(costs.os, "cpu_count", lambda: 8)
        # Below the parallel work threshold the pool is not engaged.
        small = self._config(workers=4, num_shards=8)
        assert small.effective_workers(1) == 1
        # Enough scan work: capped by shards and the worker request.
        big = self._config(n_db=500_000, workers=2, num_shards=8)
        assert big.effective_workers(4) == 2
        # Fewer cores than requested workers: the machine caps the pool.
        monkeypatch.setattr(costs.os, "cpu_count", lambda: 1)
        assert big.effective_workers(4) == 1
        # The IVF path always scans in-process.
        ivf = self._config(n_db=500_000, workers=4, num_shards=8,
                           num_cells=64, nprobe=8)
        assert ivf.effective_workers(64) == 1


class TestCostModelFit:
    def _grid(self):
        configs = []
        for m, k_words in ((4, 64), (8, 256), (4, 512)):
            for workers, shards in ((1, 1), (4, 8)):
                configs.append(SearchConfig(
                    n_db=200_000, dim=32, num_codebooks=m,
                    num_codewords=k_words, workers=workers,
                    num_shards=shards,
                ))
            for nprobe in (1, 4, 16):
                for lut in ("float32", "uint8"):
                    configs.append(SearchConfig(
                        n_db=200_000, dim=32, num_codebooks=m,
                        num_codewords=k_words, num_cells=64,
                        nprobe=nprobe, lut_dtype=lut,
                    ))
            for encoder in ("light", "full"):
                configs.append(SearchConfig(
                    n_db=200_000, dim=32, num_codebooks=m,
                    num_codewords=k_words, query_encoder=encoder,
                ))
        return configs

    def _latencies(self, configs, rng, noise=0.05):
        true = np.array([2e-5, 3e-9, 1.5e-9, 4e-7, 2.5e-9, 1.2e-9,
                         6e-8, 8e-9, 2e-9, 5e-9])
        assert len(true) == len(COST_FEATURE_NAMES)
        clean = np.array([cost_features(c) @ true for c in configs])
        return clean * rng.uniform(1 - noise, 1 + noise, size=len(clean))

    def test_fit_residuals_bounded_on_seeded_grid(self):
        """With 5% multiplicative noise the relative-least-squares fit
        recovers the model well inside the tuner's 25% acceptance bound,
        on the fitted points and on the held-out split alike."""
        configs = self._grid()
        latencies = self._latencies(configs, np.random.default_rng(7))
        model, report = CostModel.fit(
            configs, latencies, holdout_fraction=0.25, seed=7
        )
        assert report.n_points == len(configs)
        assert report.mean_rel_error < 0.05
        assert report.max_rel_error < 0.15
        assert report.holdout_n == round(0.25 * len(configs))
        assert report.holdout_mean_rel_error < 0.10
        assert report.holdout_max_rel_error < 0.25

    def test_fit_is_deterministic_for_fixed_inputs(self):
        configs = self._grid()
        latencies = self._latencies(configs, np.random.default_rng(3))
        first = CostModel.fit(configs, latencies, holdout_fraction=0.2,
                              seed=5)[1]
        second = CostModel.fit(configs, latencies, holdout_fraction=0.2,
                               seed=5)[1]
        assert first == second

    def test_predict_interpolates_unmeasured_config(self):
        """The point of the calibration: a config absent from the grid is
        priced within the acceptance bound."""
        configs = self._grid()
        rng = np.random.default_rng(11)
        latencies = self._latencies(configs, rng)
        model, _ = CostModel.fit(configs, latencies)
        unseen = SearchConfig(
            n_db=200_000, dim=32, num_codebooks=8, num_codewords=256,
            num_cells=64, nprobe=8,  # nprobe never measured
        )
        true = np.array([2e-5, 3e-9, 1.5e-9, 4e-7, 2.5e-9, 1.2e-9,
                         6e-8, 8e-9, 2e-9, 5e-9])
        want = float(cost_features(unseen) @ true)
        assert abs(model.predict(unseen) - want) / want < 0.25

    def test_fit_validation(self):
        configs = self._grid()[:4]
        with pytest.raises(ValueError, match="one latency per config"):
            CostModel.fit(configs, [1e-3] * 3)
        with pytest.raises(ValueError, match="at least 2"):
            CostModel.fit(configs[:1], [1e-3])
        with pytest.raises(ValueError, match="positive"):
            CostModel.fit(configs, [1e-3, 0.0, 1e-3, 1e-3])
        with pytest.raises(ValueError, match="holdout_fraction"):
            CostModel.fit(configs, [1e-3] * 4, holdout_fraction=1.0)


class TestServingMemory:
    def test_exhaustive_is_stored_quantized_bytes(self):
        config = SearchConfig(n_db=1000, dim=32, num_codebooks=8,
                              num_codewords=512)
        assert serving_memory_bytes(config) == storage_cost(
            1000, 32, 8, 512
        ).quantized_bytes_stored

    def test_ivf_adds_reordered_codes_ids_norms_centroids(self):
        base = SearchConfig(n_db=1000, dim=32, num_codebooks=8,
                            num_codewords=256)
        ivf = SearchConfig(n_db=1000, dim=32, num_codebooks=8,
                           num_codewords=256, num_cells=16, nprobe=4)
        extra = serving_memory_bytes(ivf) - serving_memory_bytes(base)
        codes = 1000 * stored_code_bytes_per_item(8, 256)
        assert extra == codes + 8 * 1000 + 4 * 1000 + 8 * 16 * 32
