"""Tests for index persistence."""

import numpy as np
import pytest

from repro.retrieval.index import QuantizedIndex
from repro.retrieval.persistence import index_file_size, load_index, save_index


def build_index(seed: int = 0, k: int = 16, with_labels: bool = True):
    rng = np.random.default_rng(seed)
    codebooks = rng.normal(size=(3, k, 8))
    database = rng.normal(size=(50, 8))
    labels = rng.integers(0, 5, size=50) if with_labels else None
    return QuantizedIndex.build(codebooks, database, labels=labels)


class TestRoundTrip:
    def test_search_results_survive(self, tmp_path):
        index = build_index()
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        restored = load_index(path)
        queries = np.random.default_rng(1).normal(size=(7, 8))
        assert np.array_equal(index.search(queries), restored.search(queries))
        assert np.array_equal(index.labels, restored.labels)

    def test_float32_storage_tolerance(self, tmp_path):
        # Codebooks are stored in float32 (the paper's 4-byte budget);
        # distances change by at most float32 epsilon effects.
        index = build_index()
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        restored = load_index(path)
        assert np.allclose(index.codebooks, restored.codebooks, atol=1e-6)

    def test_without_labels(self, tmp_path):
        index = build_index(with_labels=False)
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        assert load_index(path).labels is None

    def test_code_dtype_matches_codebook_size(self, tmp_path):
        small = build_index(k=16)
        path = str(tmp_path / "small.npz")
        save_index(small, path)
        with np.load(path) as archive:
            assert archive["codes"].dtype == np.uint8

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(str(tmp_path / "absent.npz"))

    def test_file_size_reported(self, tmp_path):
        index = build_index()
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        assert index_file_size(path) > 0

    def test_version_check(self, tmp_path):
        index = build_index()
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload["version"] = np.array([99])
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_index(path)
