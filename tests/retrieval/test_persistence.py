"""Tests for index persistence."""

import numpy as np
import pytest

from repro.resilience.errors import CorruptArtifactError, IncompatibleStateError
from repro.resilience.faults import flip_bytes, truncate_file
from repro.retrieval.index import QuantizedIndex
from repro.retrieval.persistence import index_file_size, load_index, save_index


def build_index(seed: int = 0, k: int = 16, with_labels: bool = True):
    rng = np.random.default_rng(seed)
    codebooks = rng.normal(size=(3, k, 8))
    database = rng.normal(size=(50, 8))
    labels = rng.integers(0, 5, size=50) if with_labels else None
    return QuantizedIndex.build(codebooks, database, labels=labels)


def synthetic_index(k: int, with_labels: bool = True, seed: int = 0):
    """Directly-constructed index, cheap even at very large codebook sizes."""
    rng = np.random.default_rng(seed)
    codebooks = rng.normal(size=(2, k, 2))
    codes = rng.integers(0, k, size=(12, 2))
    labels = rng.integers(0, 4, size=12) if with_labels else None
    return QuantizedIndex(
        codebooks=codebooks,
        codes=codes,
        db_sq_norms=rng.uniform(0.1, 2.0, size=12),
        labels=labels,
    )


class TestRoundTrip:
    def test_search_results_survive(self, tmp_path):
        index = build_index()
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        restored = load_index(path)
        queries = np.random.default_rng(1).normal(size=(7, 8))
        assert np.array_equal(index.search(queries), restored.search(queries))
        assert np.array_equal(index.labels, restored.labels)

    def test_float32_storage_tolerance(self, tmp_path):
        # Codebooks are stored in float32 (the paper's 4-byte budget);
        # distances change by at most float32 epsilon effects.
        index = build_index()
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        restored = load_index(path)
        assert np.allclose(index.codebooks, restored.codebooks, atol=1e-6)

    def test_without_labels(self, tmp_path):
        index = build_index(with_labels=False)
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        assert load_index(path).labels is None

    def test_code_dtype_matches_codebook_size(self, tmp_path):
        small = build_index(k=16)
        path = str(tmp_path / "small.npz")
        save_index(small, path)
        with np.load(path) as archive:
            assert archive["codes"].dtype == np.uint8

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(str(tmp_path / "absent.npz"))

    def test_file_size_reported(self, tmp_path):
        index = build_index()
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        assert index_file_size(path) > 0

    def test_version_check(self, tmp_path):
        index = build_index()
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload["version"] = np.array([99])
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_index(path)


class TestCodeDtypeBoundaries:
    """Round trips at every storage dtype the K-boundaries select."""

    @pytest.mark.parametrize(
        "k,expected_dtype",
        [
            (256, np.uint8),  # largest K that fits one byte
            (257, np.uint16),  # first K requiring two
            (65536, np.uint16),  # largest two-byte K
            (65537, np.uint32),  # first K requiring four
        ],
    )
    @pytest.mark.parametrize("with_labels", [True, False])
    def test_roundtrip_at_boundary(self, tmp_path, k, expected_dtype, with_labels):
        index = synthetic_index(k, with_labels=with_labels)
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        with np.load(path) as archive:
            assert archive["codes"].dtype == expected_dtype
        restored = load_index(path)
        assert np.array_equal(restored.codes, index.codes)
        assert restored.num_codewords == k
        if with_labels:
            assert np.array_equal(restored.labels, index.labels)
        else:
            assert restored.labels is None


class TestCorruptionAndValidation:
    def save(self, tmp_path, index=None) -> str:
        path = str(tmp_path / "index.npz")
        save_index(index if index is not None else build_index(), path)
        return path

    def test_truncated_archive_rejected(self, tmp_path):
        path = self.save(tmp_path)
        truncate_file(path, fraction=0.5)
        with pytest.raises(CorruptArtifactError):
            load_index(path)

    def test_bit_flipped_archive_rejected(self, tmp_path):
        path = self.save(tmp_path)
        flip_bytes(path, count=4, seed=2)
        with pytest.raises(CorruptArtifactError):
            load_index(path)

    def _repack(self, path, **overrides):
        """Rewrite the archive (legacy-style, no manifest) with fields altered."""
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload.pop("__manifest__", None)
        payload.pop("__meta__", None)
        payload.update(overrides)
        np.savez_compressed(path, **payload)

    def test_codes_codebooks_disagreement_rejected(self, tmp_path):
        path = self.save(tmp_path)
        # 4 code columns for 3 codebooks.
        self._repack(path, codes=np.zeros((50, 4), dtype=np.uint8))
        with pytest.raises(CorruptArtifactError, match="codes"):
            load_index(path)

    def test_norms_length_disagreement_rejected(self, tmp_path):
        path = self.save(tmp_path)
        self._repack(path, db_sq_norms=np.zeros(7, dtype=np.float32))
        with pytest.raises(CorruptArtifactError, match="db_sq_norms"):
            load_index(path)

    def test_labels_length_disagreement_rejected(self, tmp_path):
        path = self.save(tmp_path)
        self._repack(path, labels=np.zeros(3, dtype=np.int64))
        with pytest.raises(CorruptArtifactError, match="labels"):
            load_index(path)

    def test_out_of_range_codes_rejected(self, tmp_path):
        path = self.save(tmp_path)
        # Codeword id 200 with only 16 codewords per book.
        self._repack(path, codes=np.full((50, 3), 200, dtype=np.uint8))
        with pytest.raises(CorruptArtifactError, match="codewords"):
            load_index(path)

    def test_missing_member_rejected(self, tmp_path):
        path = self.save(tmp_path)
        with np.load(path) as archive:
            payload = {
                key: archive[key]
                for key in archive.files
                if key not in ("db_sq_norms", "__manifest__", "__meta__")
            }
        np.savez_compressed(path, **payload)
        with pytest.raises(CorruptArtifactError, match="missing"):
            load_index(path)

    def test_model_archive_is_not_an_index(self, tmp_path):
        from repro.nn import MLP, save_state

        path = str(tmp_path / "model.npz")
        save_state(MLP([4, 4], np.random.default_rng(0)), path)
        with pytest.raises(IncompatibleStateError, match="kind"):
            load_index(path)
